"""Setup shim for environments without PEP 660 editable-install support.

The canonical metadata lives in ``pyproject.toml``; this file only exists so
``python setup.py develop`` keeps working on machines where the ``wheel``
package is unavailable (offline build environments).
"""

from setuptools import setup

setup()
