"""Setup shim: extension build plus PEP 660 fallback.

The canonical metadata lives in ``pyproject.toml``; this file declares the
optional native-kernel extension (``repro._kernels._native``) and keeps
``python setup.py develop`` working on machines where the ``wheel`` package
is unavailable (offline build environments).

The extension is ``optional``: a missing compiler or failed build must not
fail the install — the engine falls back to the pure-Python kernels in
``repro._kernels._pure`` (see docs/native-kernels.md).
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro._kernels._native",
            sources=["src/repro/_kernels/_native.c"],
            optional=True,
        )
    ]
)
