"""Repository tooling (documentation checker, static analyzers).

This package marker makes ``python -m tools.gqbecheck`` work from the
repository root and lets the test suite import the analyzer framework.
Nothing in here is shipped with the installed ``gqbe-repro`` package.
"""
