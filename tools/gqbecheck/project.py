"""Project model: parsed source files, contracts and the scan walker.

The framework runs two kinds of passes (see
:mod:`tools.gqbecheck.analyzers`): per-file AST walks over each
:class:`SourceFile`, and project passes over the whole :class:`Project`
(cross-file state such as lock-acquisition order or config/doc
coverage).

Contracts gate which rules apply where.  A file acquires a contract
either from its path (the table below mirrors the repo's architecture)
or from an explicit ``# gqbe: contract[...]`` pragma — the latter is how
fixture tests and relocated modules opt in.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding, Rule
from .suppressions import is_suppressed, scan_pragmas

#: Path fragments (posix, root-relative) that imply a contract.  The
#: ``deterministic`` set is exactly the equivalence-pinned surface: the
#: modules whose ranked output must stay byte-identical across the
#: string/interned/columnar engines, v1/v2/v3 snapshots and
#: inline/pooled execution (including the NESS and breadth-first
#: reference baselines).
CONTRACT_PATHS: dict[str, tuple[str, ...]] = {
    "deterministic": (
        "repro/lattice/",
        "repro/storage/join.py",
        "repro/storage/batch.py",
        "repro/baselines/",
    ),
    "concurrent": ("repro/serving/",),
    "snapshot-io": ("repro/storage/",),
}


def contracts_for_path(rel_path: str) -> frozenset[str]:
    """Contracts implied by a root-relative posix path."""
    matched = {
        contract
        for contract, fragments in CONTRACT_PATHS.items()
        if any(fragment in rel_path for fragment in fragments)
    }
    return frozenset(matched)


@dataclass
class SourceFile:
    """One parsed Python file plus its pragmas and contracts."""

    path: Path
    rel_path: str
    text: str
    tree: ast.Module
    suppressions: dict[int, set[str]]
    contracts: frozenset[str]
    lines: list[str] = field(default_factory=list, repr=False)

    @classmethod
    def parse(cls, path: Path, root: Path) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        rel_path = _relative_posix(path, root)
        suppressions, pragma_contracts = scan_pragmas(text)
        return cls(
            path=path,
            rel_path=rel_path,
            text=text,
            tree=tree,
            suppressions=suppressions,
            contracts=contracts_for_path(rel_path) | pragma_contracts,
            lines=text.splitlines(),
        )

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def finding(
        self, rule: Rule, node: ast.AST | int, message: str
    ) -> Finding:
        """Build a finding for ``rule`` anchored at ``node`` (or a line)."""
        if isinstance(node, int):
            line, column = node, 0
        else:
            line = getattr(node, "lineno", 1)
            column = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=rule.rule_id,
            severity=rule.severity,
            path=self.rel_path,
            line=line,
            column=column,
            message=message,
            source_line=self.line_text(line),
        )


def _relative_posix(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


#: Synthetic rule for files the scanner cannot parse — not one of the
#: contract analyzers, but a broken file must fail the check loudly.
PARSE_RULE = Rule(
    rule_id="PARSE001",
    title="file does not parse",
    severity="error",
    contract=None,
    rationale="an unparseable file silently escapes every other check",
)


@dataclass
class Project:
    """Every scanned file plus scan-level problems."""

    root: Path
    files: list[SourceFile]
    parse_failures: list[Finding]

    @classmethod
    def scan(cls, paths: list[Path], root: Path) -> "Project":
        files: list[SourceFile] = []
        failures: list[Finding] = []
        for path in iter_python_files(paths):
            try:
                files.append(SourceFile.parse(path, root))
            except (SyntaxError, ValueError, UnicodeDecodeError) as error:
                failures.append(
                    Finding(
                        rule_id=PARSE_RULE.rule_id,
                        severity=PARSE_RULE.severity,
                        path=_relative_posix(path, root),
                        line=getattr(error, "lineno", 1) or 1,
                        column=0,
                        message=f"cannot parse file: {error}",
                    )
                )
        return cls(root=root, files=files, parse_failures=failures)

    def filter_suppressed(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Split ``findings`` into ``(kept, suppressed)`` via pragmas."""
        by_path = {source.rel_path: source for source in self.files}
        kept: list[Finding] = []
        suppressed: list[Finding] = []
        for finding in findings:
            source = by_path.get(finding.path)
            if source is not None and is_suppressed(
                source.suppressions, finding.line, finding.rule_id
            ):
                suppressed.append(finding)
            else:
                kept.append(finding)
        return kept, suppressed


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files or directories), sorted.

    Hidden directories and ``__pycache__`` are skipped; duplicates (a
    file reachable through two arguments) collapse to one entry.
    """
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                seen.setdefault(path.resolve(), None)
            continue
        if not path.is_dir():
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.relative_to(path).parts
            if any(
                part.startswith(".") or part == "__pycache__"
                for part in parts
            ):
                continue
            seen.setdefault(candidate.resolve(), None)
    return sorted(seen)
