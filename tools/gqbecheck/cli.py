"""Command line front end: ``python -m tools.gqbecheck`` / ``gqbe check``.

Exit codes: ``0`` clean (every finding suppressed or baselined), ``1``
new findings, ``2`` usage or environment error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .analyzers import ALL_ANALYZERS, iter_rules
from .baseline import (
    load_baseline,
    merge_for_update,
    save_baseline,
    split_by_baseline,
)
from .findings import Finding
from .project import Project

DEFAULT_PATHS = ("src", "benchmarks", "tools")
DEFAULT_BASELINE = "tools/gqbecheck/baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gqbecheck",
        description=(
            "AST-based invariant analyzer for the GQBE reproduction: "
            "determinism, mapped-write safety, concurrency hygiene, "
            "exception discipline and config/doc coverage."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to scan (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root for relative paths and the baseline (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file; report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to cover current findings, then exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github", "json"),
        default="text",
        help="output format (github emits workflow annotations)",
    )
    parser.add_argument(
        "--json-report",
        default=None,
        metavar="PATH",
        help="also write a JSON findings report to PATH (for CI artifacts)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to report (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with severity and rationale, then exit",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings silenced by inline pragmas",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            contract = rule.contract or "all files"
            print(f"{rule.rule_id}  [{rule.severity:7}]  ({contract})  {rule.title}")
            print(f"         {rule.rationale}")
        return 0

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"error: --root {args.root} is not a directory", file=sys.stderr)
        return 2
    raw_paths = args.paths or [
        str(root / piece) for piece in DEFAULT_PATHS if (root / piece).is_dir()
    ]
    paths = [Path(piece) for piece in raw_paths]
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    project = Project.scan(paths, root)
    findings: list[Finding] = list(project.parse_failures)
    for analyzer in ALL_ANALYZERS:
        for source in project.files:
            findings.extend(analyzer.check_file(source))
        findings.extend(analyzer.check_project(project))

    if args.select:
        selected = {piece.strip() for piece in args.select.split(",") if piece.strip()}
        unknown = selected - {rule.rule_id for rule in iter_rules()} - {"PARSE001"}
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
        findings = [f for f in findings if f.rule_id in selected]

    findings, suppressed = project.filter_suppressed(findings)
    findings.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)

    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    if args.update_baseline:
        entries = load_baseline(baseline_path) if baseline_path.exists() else []
        save_baseline(baseline_path, merge_for_update(findings, entries))
        print(
            f"baseline updated: {len(findings)} finding(s) recorded in "
            f"{baseline_path}"
        )
        return 0

    if args.no_baseline:
        new, baselined = findings, []
    else:
        try:
            entries = load_baseline(baseline_path)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        new, baselined = split_by_baseline(findings, entries)

    _emit(args, project, new, baselined, suppressed)
    if args.json_report:
        _write_report(Path(args.json_report), new, baselined, suppressed)
    return 1 if new else 0


def _emit(
    args: argparse.Namespace,
    project: Project,
    new: list[Finding],
    baselined: list[Finding],
    suppressed: list[Finding],
) -> None:
    if args.format == "json":
        print(json.dumps(_report_document(new, baselined, suppressed), indent=2))
        return
    if args.format == "github":
        for finding in new:
            level = "error" if finding.severity == "error" else "warning"
            # GitHub annotation format; commas/newlines in messages would
            # break the property list, so normalize them away.
            message = finding.message.replace("\n", " ")
            print(
                f"::{level} file={finding.path},line={finding.line},"
                f"title={finding.rule_id}::{message}"
            )
    else:
        for finding in new:
            print(
                f"{finding.path}:{finding.line}:{finding.column + 1}: "
                f"{finding.rule_id} [{finding.severity}] {finding.message}"
            )
        if args.show_suppressed:
            for finding in suppressed:
                print(
                    f"{finding.path}:{finding.line}: {finding.rule_id} "
                    "suppressed by pragma"
                )
    scanned = len(project.files)
    summary = (
        f"gqbecheck: {scanned} file(s) scanned, {len(new)} new finding(s), "
        f"{len(baselined)} baselined, {len(suppressed)} suppressed"
    )
    print(summary if args.format != "github" else f"::notice::{summary}")


def _report_document(
    new: list[Finding],
    baselined: list[Finding],
    suppressed: list[Finding],
) -> dict:
    return {
        "version": 1,
        "new": [finding.to_json() for finding in new],
        "baselined": [finding.to_json() for finding in baselined],
        "suppressed": [finding.to_json() for finding in suppressed],
    }


def _write_report(
    path: Path,
    new: list[Finding],
    baselined: list[Finding],
    suppressed: list[Finding],
) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(_report_document(new, baselined, suppressed), indent=2)
        + "\n",
        encoding="utf-8",
    )


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
