"""Findings model: rules, severities, findings and stable fingerprints.

A :class:`Rule` is a statically registered contract check with a stable
id (``DET001``, ``MAP002``, ...) that suppression comments and the
baseline file refer to.  A :class:`Finding` is one concrete violation at
a source location.

Fingerprints identify a finding across unrelated edits: they hash the
rule id, the file path and the *normalized source line text* — not the
line number — so inserting code above a grandfathered finding does not
orphan its baseline entry, while editing the offending line itself
(presumably to fix it) retires the entry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

#: Finding severities, in decreasing order of importance.  Both fail the
#: check; the distinction drives CI annotation levels and triage order.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Rule:
    """One statically registered contract check."""

    rule_id: str
    title: str
    severity: str
    #: Contract gating which files the rule applies to (``None`` = every
    #: scanned file).  See :data:`tools.gqbecheck.project.CONTRACT_PATHS`.
    contract: str | None
    #: Which runtime guarantee the rule protects (shown by --list-rules
    #: and documented in docs/static-analysis.md).
    rationale: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"rule {self.rule_id}: severity must be one of {SEVERITIES}, "
                f"got {self.severity!r}"
            )


@dataclass
class Finding:
    """One concrete rule violation at a source location."""

    rule_id: str
    severity: str
    path: str  # root-relative posix path
    line: int
    column: int
    message: str
    source_line: str = field(default="", repr=False)

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used for baseline matching."""
        normalized = " ".join(self.source_line.split())
        payload = f"{self.rule_id}::{self.path}::{normalized}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.column, self.rule_id)

    def to_json(self) -> dict:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
