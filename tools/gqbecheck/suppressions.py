"""Pragma comments: inline suppressions and file-level contract opt-ins.

Two comment pragmas drive the analyzer:

``# gqbe: ignore[DET001]`` / ``# gqbe: ignore[DET001,EXC001] -- why``
    Suppress the named rule(s) on the same line.  A pragma on a line of
    its own suppresses the next code line instead, so long justifications
    fit above the construct they excuse.  ``ignore[*]`` suppresses every
    rule.  Text after the bracket is the (strongly encouraged)
    justification; it is not parsed, only humans read it.

``# gqbe: contract[deterministic]``
    Opt the whole file into a contract beyond what its path implies —
    used by fixture tests and by modules that move without wanting to
    lose their checks.  Contracts: ``deterministic``, ``concurrent``,
    ``snapshot-io``.

Comments are found with :mod:`tokenize`, so pragma-looking text inside
string literals is never misread as a pragma.
"""

from __future__ import annotations

import io
import re
import tokenize

_IGNORE = re.compile(r"gqbe:\s*ignore\[([A-Za-z0-9_*,\s]+)\]")
_CONTRACT = re.compile(r"gqbe:\s*contract\[([A-Za-z0-9_,\s-]+)\]")


def scan_pragmas(text: str) -> tuple[dict[int, set[str]], frozenset[str]]:
    """Extract ``(suppressions, contracts)`` from one file's source text.

    ``suppressions`` maps line numbers (1-based) to the set of suppressed
    rule ids (``"*"`` meaning all) effective on that line.
    """
    suppressions: dict[int, set[str]] = {}
    contracts: set[str] = set()
    standalone: list[tuple[int, set[str]]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The caller only scans files that already parsed with ast, so
        # this is unreachable in practice; fail open (no pragmas).
        return {}, frozenset()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        contract_match = _CONTRACT.search(token.string)
        if contract_match:
            contracts.update(
                piece.strip()
                for piece in contract_match.group(1).split(",")
                if piece.strip()
            )
        ignore_match = _IGNORE.search(token.string)
        if not ignore_match:
            continue
        rules = {
            piece.strip()
            for piece in ignore_match.group(1).split(",")
            if piece.strip()
        }
        line = token.start[0]
        before_comment = token.line[: token.start[1]]
        if before_comment.strip():
            suppressions.setdefault(line, set()).update(rules)
        else:
            # Comment-only line: the suppression targets the next code line.
            standalone.append((line, rules))
    if standalone:
        lines = text.splitlines()
        for comment_line, rules in standalone:
            target = _next_code_line(lines, comment_line)
            if target is not None:
                suppressions.setdefault(target, set()).update(rules)
    return suppressions, frozenset(contracts)


def _next_code_line(lines: list[str], after: int) -> int | None:
    """The first non-blank, non-comment line after 1-based line ``after``."""
    for index in range(after, len(lines)):
        stripped = lines[index].strip()
        if stripped and not stripped.startswith("#"):
            return index + 1
    return None


def is_suppressed(
    suppressions: dict[int, set[str]], line: int, rule_id: str
) -> bool:
    """Whether ``rule_id`` is suppressed on ``line``."""
    rules = suppressions.get(line)
    if not rules:
        return False
    return "*" in rules or rule_id in rules
