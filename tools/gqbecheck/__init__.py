"""gqbecheck: AST-based invariant analyzers for the GQBE reproduction.

Zero-dependency static analysis over the repo's own contracts:
determinism of the equivalence-pinned query path (``DET*``),
mapped-memory write safety (``MAP*``), concurrency/fork hygiene
(``CON*``), exception discipline (``EXC*``) and config/doc coverage
(``CFG*``).  See ``docs/static-analysis.md`` for the rule catalog, the
``# gqbe: ignore[...]`` suppression syntax and the baseline workflow.

Run it as ``python -m tools.gqbecheck`` or ``gqbe check``.
"""

from __future__ import annotations

from pathlib import Path

from .analyzers import ALL_ANALYZERS, iter_rules
from .findings import Finding, Rule
from .project import Project

__all__ = [
    "ALL_ANALYZERS",
    "Finding",
    "Project",
    "Rule",
    "check_paths",
    "iter_rules",
]


def check_paths(paths: list[Path], root: Path) -> list[Finding]:
    """Scan ``paths`` and return kept (non-suppressed) findings, sorted.

    The library-level equivalent of the CLI with no baseline applied —
    tests and tools build on this to inspect raw analyzer output.
    """
    project = Project.scan(paths, root)
    findings: list[Finding] = list(project.parse_failures)
    for analyzer in ALL_ANALYZERS:
        for source in project.files:
            findings.extend(analyzer.check_file(source))
        findings.extend(analyzer.check_project(project))
    kept, _ = project.filter_suppressed(findings)
    kept.sort(key=Finding.sort_key)
    return kept
