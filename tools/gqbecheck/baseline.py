"""Baseline file: grandfathered findings that do not fail the check.

The baseline is a committed JSON document listing findings that predate
a rule (or are individually justified) so the analyzer can be turned on
strictly for *new* code without first fixing the world.  Entries match
findings by ``(rule, path, fingerprint)`` — the fingerprint hashes the
normalized source line, so unrelated edits elsewhere in the file do not
orphan an entry, while editing the offending line retires it.

Workflow::

    python -m tools.gqbecheck --update-baseline   # grandfather current findings
    # edit tools/gqbecheck/baseline.json: replace the placeholder
    # justification of every new entry with a real reason
    python -m tools.gqbecheck                     # now exits 0

An entry whose finding disappears is dropped on the next
``--update-baseline`` run; CI never requires a pruned baseline, so a
stale entry is tidy-up, not breakage.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from .findings import Finding

BASELINE_VERSION = 1
#: Justification --update-baseline writes for entries it grandfathers;
#: humans are expected to replace it before committing.
PLACEHOLDER_JUSTIFICATION = "TODO: justify or fix"


def load_baseline(path: Path) -> list[dict]:
    """The baseline entries at ``path`` (empty when the file is absent)."""
    if not path.exists():
        return []
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as error:
        raise ValueError(f"baseline {path} is not valid JSON: {error}") from error
    if (
        not isinstance(document, dict)
        or document.get("version") != BASELINE_VERSION
        or not isinstance(document.get("findings"), list)
    ):
        raise ValueError(
            f"baseline {path} is not a version-{BASELINE_VERSION} gqbecheck "
            "baseline document"
        )
    return document["findings"]


def save_baseline(path: Path, entries: list[dict]) -> None:
    """Write ``entries`` as a baseline document (sorted, stable output)."""
    document = {
        "version": BASELINE_VERSION,
        "findings": sorted(
            entries,
            key=lambda entry: (
                entry.get("path", ""),
                entry.get("rule", ""),
                entry.get("fingerprint", ""),
            ),
        ),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def split_by_baseline(
    findings: list[Finding], entries: list[dict]
) -> tuple[list[Finding], list[Finding]]:
    """Split ``findings`` into ``(new, baselined)`` against ``entries``.

    Identical lines produce identical fingerprints; a multiset match
    makes N baseline entries excuse at most N occurrences, so adding one
    more copy of a grandfathered pattern still fails.
    """
    budget = Counter(
        (entry.get("rule"), entry.get("path"), entry.get("fingerprint"))
        for entry in entries
    )
    new: list[Finding] = []
    baselined: list[Finding] = []
    for finding in findings:
        key = (finding.rule_id, finding.path, finding.fingerprint)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined


def merge_for_update(
    findings: list[Finding], entries: list[dict]
) -> list[dict]:
    """Baseline entries covering exactly the current ``findings``.

    Existing entries keep their justification; findings without one get
    the :data:`PLACEHOLDER_JUSTIFICATION` for a human to replace.
    """
    justifications: dict[tuple, list[str]] = {}
    for entry in entries:
        key = (entry.get("rule"), entry.get("path"), entry.get("fingerprint"))
        justifications.setdefault(key, []).append(
            entry.get("justification", PLACEHOLDER_JUSTIFICATION)
        )
    merged: list[dict] = []
    for finding in findings:
        key = (finding.rule_id, finding.path, finding.fingerprint)
        kept = justifications.get(key)
        justification = (
            kept.pop(0) if kept else PLACEHOLDER_JUSTIFICATION
        )
        merged.append(
            {
                "rule": finding.rule_id,
                "path": finding.path,
                "line": finding.line,
                "fingerprint": finding.fingerprint,
                "justification": justification,
            }
        )
    return merged
