"""Analyzer base class and shared AST helpers."""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable

from ..findings import Finding, Rule
from ..project import Project, SourceFile


class Analyzer:
    """One contract analyzer: a per-file pass, a project pass, or both.

    ``check_file`` runs once per scanned file; ``check_project`` runs
    once with the whole :class:`~tools.gqbecheck.project.Project` (for
    cross-file state).  Analyzers gate themselves on file contracts —
    the framework calls every analyzer on every file.
    """

    name: str = "analyzer"
    rules: tuple[Rule, ...] = ()

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """The dotted name a call targets, else ``None`` for dynamic calls."""
    return dotted_name(node.func)


def imported_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted names they import.

    ``import random`` maps ``random -> random``; ``import numpy as np``
    maps ``np -> numpy``; ``from time import time as now`` maps
    ``now -> time.time``.  Used to resolve calls back to their defining
    module even through aliases.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def resolve_call(name: str, aliases: dict[str, str]) -> str:
    """Expand the leading segment of ``name`` through import aliases."""
    head, _, rest = name.partition(".")
    expanded = aliases.get(head, head)
    return f"{expanded}.{rest}" if rest else expanded


_LOCKISH = re.compile(r"lock|condition|mutex|semaphore|rlock", re.IGNORECASE)


def is_lockish(node: ast.expr) -> bool:
    """Whether a ``with`` context expression looks like a lock.

    Matches names/attributes containing ``lock``/``condition``/... —
    e.g. ``self._counter_lock``, ``self._condition``, ``_STATE_LOCK`` —
    including ``lock.acquire()``-style calls on such names.
    """
    if isinstance(node, ast.Call):
        return is_lockish(node.func)
    name = dotted_name(node)
    if name is None:
        return False
    return bool(_LOCKISH.search(name))


def lock_names_of_with(node: ast.With) -> list[str]:
    """The lock-ish context names a ``with`` statement acquires."""
    names = []
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
        name = dotted_name(expr)
        if name is not None and _LOCKISH.search(name):
            names.append(name.split(".")[-1])
    return names


def iter_function_defs(
    tree: ast.AST,
) -> Iterable[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def exception_type_names(handler: ast.ExceptHandler) -> list[str]:
    """The dotted names a handler catches (empty for a bare ``except:``)."""
    node = handler.type
    if node is None:
        return []
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for expr in exprs:
        name = dotted_name(expr)
        if name is not None:
            names.append(name)
    return names
