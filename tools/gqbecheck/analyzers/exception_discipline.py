"""Exception-discipline rules.

``EXC001`` applies everywhere; ``EXC002`` is gated on the
``snapshot-io`` contract and ``EXC003`` on ``concurrent`` (the serving
layer).

Rules
-----
``EXC001`` (warning)
    A bare ``except:`` or ``except Exception:``/``except BaseException:``
    handler.  Broad handlers hide real bugs (typos become "snapshot
    corrupt"); catch the failures you expect, or suppress with a
    justification where last-resort catching is the point (top-level
    request handlers, worker forwarding loops).
``EXC002``
    A handler in a snapshot-io module catches ``OSError`` or
    ``struct.error`` but neither raises :class:`SnapshotError` (the
    documented storage failure type) nor re-raises.  Callers are
    promised SnapshotError; a naked OSError escaping ``storage/``
    breaks every caller that catches the documented type.
``EXC003``
    A broad handler in the serving layer interpolates the caught
    exception into a response (``str(error)`` / f-string into a body
    or send call).  Exception text leaks file system paths and internal
    state to HTTP clients; log it server-side, send a generic message.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..findings import Finding, Rule
from ..project import SourceFile
from .base import Analyzer, exception_type_names

EXC001 = Rule(
    rule_id="EXC001",
    title="bare or broad exception handler",
    severity="warning",
    contract=None,
    rationale=(
        "except Exception turns typos and logic bugs into handled "
        "conditions; catch specific failures, justify last-resort nets"
    ),
)
EXC002 = Rule(
    rule_id="EXC002",
    title="storage I/O error escapes without SnapshotError wrapping",
    severity="error",
    contract="snapshot-io",
    rationale=(
        "storage promises SnapshotError for corrupt/missing snapshots; "
        "a naked OSError escaping breaks callers that catch the "
        "documented type"
    ),
)
EXC003 = Rule(
    rule_id="EXC003",
    title="exception text interpolated into an HTTP response",
    severity="error",
    contract="concurrent",
    rationale=(
        "str(error) in a response leaks paths and internal state to "
        "clients; log server-side and send a generic message"
    ),
)

_BROAD = {"Exception", "BaseException"}
_IO_ERRORS = {"OSError", "IOError", "struct.error"}
#: Response-sending call names in the serving layer (http.server API
#: plus the repo's own helpers).
_RESPONSE_SINKS = {
    "send_error",
    "_send_json",
    "_send_text",
    "wfile.write",
    "write",
}


class ExceptionDisciplineAnalyzer(Analyzer):
    name = "exception-discipline"
    rules = (EXC001, EXC002, EXC003)

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        findings: list[Finding] = []
        for handler in _handlers(source.tree):
            names = exception_type_names(handler)
            broad = not names or any(name in _BROAD for name in names)
            if broad:
                caught = names[0] if names else "everything (bare except)"
                findings.append(
                    source.finding(
                        EXC001,
                        handler,
                        f"handler catches {caught}; catch the specific "
                        "failures this block expects, or justify a "
                        "last-resort net with a suppression",
                    )
                )
            if "snapshot-io" in source.contracts and any(
                name in _IO_ERRORS for name in names
            ):
                if not _wraps_or_reraises(handler):
                    findings.append(
                        source.finding(
                            EXC002,
                            handler,
                            "OSError/struct.error handled without raising "
                            "SnapshotError or re-raising; storage callers "
                            "are promised SnapshotError",
                        )
                    )
            if "concurrent" in source.contracts and broad:
                for node in _exception_leaks(handler):
                    findings.append(
                        source.finding(
                            EXC003,
                            node,
                            "caught exception interpolated into the HTTP "
                            "response; log it server-side and send a "
                            "generic message instead",
                        )
                    )
        return findings


def _handlers(tree: ast.Module) -> Iterable[ast.ExceptHandler]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler):
            yield node


def _wraps_or_reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler raises SnapshotError (or anything) or returns
    a sentinel after an explicit decision.

    Accepted as disciplined: any ``raise`` statement in the handler body
    (bare re-raise, ``raise SnapshotError(...) from error``, or raising
    some other typed error — the point is the failure does not silently
    dissolve).
    """
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


def _exception_leaks(handler: ast.ExceptHandler) -> Iterable[ast.AST]:
    """Response-sink calls inside ``handler`` whose arguments mention the
    caught exception name."""
    caught = handler.name
    if caught is None:
        return
    for node in ast.walk(handler):
        if not isinstance(node, ast.Call):
            continue
        sink = _sink_name(node)
        if sink is None:
            continue
        for argument in list(node.args) + [kw.value for kw in node.keywords]:
            if _mentions_name(argument, caught):
                yield node
                break


def _sink_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr in ("send_error",) or func.attr.startswith("_send"):
            return func.attr
        if (
            func.attr == "write"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "wfile"
        ):
            return "wfile.write"
    return None


def _mentions_name(node: ast.expr, name: str) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == name:
            return True
    return False
