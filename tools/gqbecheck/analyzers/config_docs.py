"""Config/documentation coverage rules (project pass).

``GQBEConfig`` is the single knob surface of the engine; an
undocumented field is a knob nobody can discover, and an untested field
is a knob that silently stops working.  This pass finds the
``GQBEConfig`` dataclass in the scanned tree and cross-references every
field against ``docs/configuration.md`` and ``tests/*.py`` under the
project root.

Rules
-----
``CFG001``
    A ``GQBEConfig`` field is not mentioned in
    ``docs/configuration.md``.
``CFG002``
    A ``GQBEConfig`` field is not referenced by any test module.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable

from ..findings import Finding, Rule
from ..project import Project, SourceFile
from .base import Analyzer

CONFIG_CLASS = "GQBEConfig"
DOC_PATH = "docs/configuration.md"
TESTS_DIR = "tests"

CFG001 = Rule(
    rule_id="CFG001",
    title="config field missing from docs/configuration.md",
    severity="error",
    contract=None,
    rationale=(
        "an undocumented GQBEConfig field is a knob nobody can discover; "
        "every field needs a documented meaning and default"
    ),
)
CFG002 = Rule(
    rule_id="CFG002",
    title="config field not exercised by any test",
    severity="error",
    contract=None,
    rationale=(
        "a field no test references can silently stop doing anything; "
        "every field needs at least one test touching it"
    ),
)


class ConfigDocsAnalyzer(Analyzer):
    name = "config-docs"
    rules = (CFG001, CFG002)

    def check_project(self, project: Project) -> Iterable[Finding]:
        located = _find_config_class(project)
        if located is None:
            return []
        source, class_def = located
        fields = _dataclass_fields(class_def)
        if not fields:
            return []

        findings: list[Finding] = []
        doc_path = project.root / DOC_PATH
        doc_text = (
            doc_path.read_text(encoding="utf-8") if doc_path.exists() else ""
        )
        tests_text = _tests_corpus(project)
        for name, line in fields:
            pattern = re.compile(rf"\b{re.escape(name)}\b")
            if not pattern.search(doc_text):
                findings.append(
                    source.finding(
                        CFG001,
                        line,
                        f"GQBEConfig.{name} is not documented in "
                        f"{DOC_PATH}; add it to the field table",
                    )
                )
            if not pattern.search(tests_text):
                findings.append(
                    source.finding(
                        CFG002,
                        line,
                        f"GQBEConfig.{name} is not referenced by any module "
                        f"under {TESTS_DIR}/; add a test that sets or "
                        "asserts on it",
                    )
                )
        return findings


def _find_config_class(
    project: Project,
) -> tuple[SourceFile, ast.ClassDef] | None:
    for source in project.files:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and node.name == CONFIG_CLASS:
                return source, node
    return None


def _dataclass_fields(class_def: ast.ClassDef) -> list[tuple[str, int]]:
    """``(name, line)`` for every annotated field of the dataclass."""
    fields: list[tuple[str, int]] = []
    for statement in class_def.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            name = statement.target.id
            if not name.startswith("_"):
                fields.append((name, statement.lineno))
    return fields


def _tests_corpus(project: Project) -> str:
    """The concatenated text of every test module under the root."""
    tests_dir = project.root / TESTS_DIR
    if not tests_dir.is_dir():
        return ""
    pieces: list[str] = []
    for path in sorted(tests_dir.rglob("*.py")):
        try:
            pieces.append(path.read_text(encoding="utf-8"))
        except OSError:
            continue
    return "\n".join(pieces)
