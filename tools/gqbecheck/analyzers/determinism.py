"""Determinism rules (contract ``deterministic``).

The equivalence-pinned modules — lattice exploration/scoring,
``storage/join.py``, ``storage/batch.py`` and the NESS/breadth-first
baselines — carry the repo's headline guarantee: ranked answers are
byte-identical across the string/interned/columnar engines, v1/v2/v3
snapshots and inline/pooled execution.  That guarantee dies quietly the
moment answer-feeding code iterates an unordered collection, consults a
clock or RNG, or plucks "the first" element of a set.  CPython's set
iteration order depends on insertion history *and* on hash
randomization for str keys, so such a bug can pass every local run and
only break under a different ``PYTHONHASHSEED``.

Rules
-----
``DET001``
    A ``for`` loop or comprehension iterates directly over a
    set-typed expression.  Wrap the iterable in ``sorted(...)`` or keep
    an order-carrying structure (list, dict) alongside the set.
``DET002``
    A nondeterministic call: anything in ``random``/``secrets``,
    wall-clock reads (``time.time``/``time_ns``, ``datetime.now``...),
    ``uuid.uuid1``/``uuid4``, ``os.urandom``.  Monotonic timing reads
    (``time.perf_counter``, ``time.monotonic``) are allowed — they feed
    reported timing metadata, never ranked answers.
``DET003``
    Order-dependent extraction from an unordered collection:
    ``some_set.pop()`` or ``next(iter(some_set))``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..findings import Finding, Rule
from ..project import SourceFile
from .base import Analyzer, call_name, imported_aliases, resolve_call

CONTRACT = "deterministic"

DET001 = Rule(
    rule_id="DET001",
    title="iteration over an unordered collection",
    severity="error",
    contract=CONTRACT,
    rationale=(
        "set iteration order varies with insertion history and str hash "
        "randomization; any answer-feeding loop over it breaks the "
        "byte-identical equivalence guarantee"
    ),
)
DET002 = Rule(
    rule_id="DET002",
    title="nondeterministic call in an equivalence-pinned module",
    severity="error",
    contract=CONTRACT,
    rationale=(
        "clocks, RNGs and uuids make reruns differ; pinned modules may "
        "only read monotonic timers for reported timing metadata"
    ),
)
DET003 = Rule(
    rule_id="DET003",
    title="order-dependent extraction from an unordered collection",
    severity="error",
    contract=CONTRACT,
    rationale=(
        "set.pop() / next(iter(s)) pick a hash-order-dependent element; "
        "the chosen element can differ across processes and runs"
    ),
)

#: Fully-resolved call names that are nondeterministic by definition.
_NONDETERMINISTIC_EXACT = {
    "time.time",
    "time.time_ns",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}
#: Module prefixes where *every* call is nondeterministic.
_NONDETERMINISTIC_PREFIXES = ("random.", "secrets.")

#: Methods whose return value is a set (receiver type irrelevant) plus
#: repo-specific set-returning accessors on tables/relations.
_SET_RETURNING_METHODS = {
    "intersection",
    "union",
    "difference",
    "symmetric_difference",
    "subjects",
    "objects",
    "row_set",
    "_dedup_set",
    "distinct_rows",
}


class DeterminismAnalyzer(Analyzer):
    name = "determinism"
    rules = (DET001, DET002, DET003)

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        if CONTRACT not in source.contracts:
            return []
        findings: list[Finding] = []
        aliases = imported_aliases(source.tree)
        for scope in _scopes(source.tree):
            set_vars = _infer_set_variables(scope)
            for node in _scope_nodes(scope):
                findings.extend(
                    _check_node(source, node, set_vars, aliases)
                )
        return findings


def _scopes(tree: ast.Module) -> list[ast.AST]:
    """The module plus every function/lambda-free function scope."""
    scopes: list[ast.AST] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node)
    return scopes


def _scope_nodes(scope: ast.AST) -> Iterable[ast.AST]:
    """Nodes belonging to ``scope`` but not to a nested function scope."""
    for child in ast.iter_child_nodes(scope):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield child
        yield from _scope_nodes(child)


def _infer_set_variables(scope: ast.AST) -> set[str]:
    """Names bound to set-typed expressions within ``scope``.

    A forward approximation: a name assigned a set expression anywhere
    in the scope counts as set-typed, unless it is *also* assigned a
    clearly non-set expression (then it is ambiguous and dropped —
    better a false negative than noise).
    """
    set_names: set[str] = set()
    other_names: set[str] = set()
    for node in _scope_nodes(scope):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = node.value
            if value is None:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if _is_set_expr(value, set_names):
                    set_names.add(target.id)
                elif not isinstance(node, ast.AugAssign):
                    other_names.add(target.id)
    return set_names - other_names


def _is_set_expr(node: ast.expr, set_vars: set[str]) -> bool:
    """Whether ``node`` is (syntactically) a set-typed expression."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_vars
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left, set_vars) or _is_set_expr(
            node.right, set_vars
        )
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute):
            return node.func.attr in _SET_RETURNING_METHODS
    return False


def _check_node(
    source: SourceFile,
    node: ast.AST,
    set_vars: set[str],
    aliases: dict[str, str],
) -> Iterable[Finding]:
    # DET001 — iteration over an unordered expression.
    if isinstance(node, ast.For) and _is_set_expr(node.iter, set_vars):
        yield source.finding(
            DET001,
            node.iter,
            "for-loop iterates an unordered set; wrap the iterable in "
            "sorted(...) or iterate an order-carrying structure",
        )
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        for generator in node.generators:
            if _is_set_expr(generator.iter, set_vars):
                # A comprehension that *builds* a set (or feeds sorted/
                # min/max/sum/any/all) is order-free; flagging every
                # generator would bury the real signal.  Only list/
                # generator comprehensions leak order.
                if isinstance(node, (ast.SetComp, ast.DictComp)):
                    continue
                yield source.finding(
                    DET001,
                    generator.iter,
                    "comprehension iterates an unordered set; wrap the "
                    "iterable in sorted(...) if element order can reach "
                    "an answer",
                )
    if isinstance(node, ast.Call):
        name = call_name(node)
        # DET001 — ordered materialization of an unordered expression.
        if (
            name in ("list", "tuple")
            and len(node.args) == 1
            and not node.keywords
            and _is_set_expr(node.args[0], set_vars)
        ):
            yield source.finding(
                DET001,
                node,
                f"{name}(...) materializes an unordered set in hash order; "
                "use sorted(...) instead",
            )
        # DET002 — nondeterministic calls.
        if name is not None:
            resolved = resolve_call(name, aliases)
            if resolved in _NONDETERMINISTIC_EXACT or resolved.startswith(
                _NONDETERMINISTIC_PREFIXES
            ):
                yield source.finding(
                    DET002,
                    node,
                    f"call to nondeterministic {resolved}(); pinned modules "
                    "must be a pure function of their inputs (monotonic "
                    "timers for timing metadata are the only exception)",
                )
        # DET003 — set.pop() on a set-typed receiver.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            and not node.args
            and not node.keywords
            and _is_set_expr(node.func.value, set_vars)
        ):
            yield source.finding(
                DET003,
                node,
                "set.pop() removes a hash-order-dependent element; pop "
                "from a sorted list or use min/max with an explicit key",
            )
        # DET003 — next(iter(set)).
        if (
            name == "next"
            and node.args
            and isinstance(node.args[0], ast.Call)
            and call_name(node.args[0]) == "iter"
            and node.args[0].args
            and _is_set_expr(node.args[0].args[0], set_vars)
        ):
            yield source.finding(
                DET003,
                node,
                "next(iter(set)) picks a hash-order-dependent element; "
                "use min(...)/max(...) with an explicit key",
            )
