"""Analyzer registry: all contract analyzers in a stable order."""

from __future__ import annotations

from collections.abc import Iterable

from ..findings import Rule
from .base import Analyzer
from .concurrency import ConcurrencyAnalyzer
from .config_docs import ConfigDocsAnalyzer
from .determinism import DeterminismAnalyzer
from .exception_discipline import ExceptionDisciplineAnalyzer
from .mapped_memory import MappedMemoryAnalyzer

ALL_ANALYZERS: tuple[Analyzer, ...] = (
    DeterminismAnalyzer(),
    MappedMemoryAnalyzer(),
    ConcurrencyAnalyzer(),
    ExceptionDisciplineAnalyzer(),
    ConfigDocsAnalyzer(),
)


def iter_rules() -> Iterable[Rule]:
    """Every rule of every registered analyzer, in registry order."""
    for analyzer in ALL_ANALYZERS:
        yield from analyzer.rules
