"""Concurrency and fork-hygiene rules (contract ``concurrent``).

The serving layer mixes a threading HTTP server, a query batcher with
handler threads parked on a condition variable, and a forkserver-based
process pool.  The invariants these rules police:

- shared mutable state (module globals, ``self`` attributes read by
  other threads) is only read-modify-written under a lock;
- nested lock acquisitions happen in one global order (lock-order
  inversion is the classic path to deadlock);
- no threads are spawned at import time (threads + later ``fork`` is
  undefined behavior; the pool must be created before any threads).

Rules
-----
``CON001``
    Read-modify-write of a module-level global (``x += 1`` or
    ``x = x + 1`` where ``x`` is declared ``global``) outside a
    lock-ish ``with`` block.
``CON002``
    Read-modify-write of a ``self`` attribute outside a lock-ish
    ``with`` block, in a class that owns at least one lock attribute.
    Classes with no lock are assumed externally synchronized.
``CON003``
    Inconsistent nested lock order across the project: lock B acquired
    inside lock A somewhere, and lock A inside lock B elsewhere.
``CON004``
    ``threading.Thread(...)`` created (or ``.start()`` called) at
    module scope — import-time threads break fork-based pools.
``CON005``
    Event-loop confinement violation: in a lock-free class with
    ``async def`` methods, the same attribute is read-modify-written
    both from a coroutine (serialized by the event loop) and from a
    plain synchronous method (callable from any thread).  Loop-confined
    state is only safe while *every* mutation happens on the loop
    thread; the sync-side mutation is the hazard and anchors the
    finding.  Classes that own a lock are policed by ``CON002``
    instead.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..findings import Finding, Rule
from ..project import Project, SourceFile
from .base import (
    Analyzer,
    call_name,
    dotted_name,
    imported_aliases,
    is_lockish,
    iter_function_defs,
    lock_names_of_with,
    resolve_call,
)

CONTRACT = "concurrent"

CON001 = Rule(
    rule_id="CON001",
    title="unlocked read-modify-write of a module global",
    severity="error",
    contract=CONTRACT,
    rationale=(
        "+= on a global is load/add/store — two handler threads "
        "interleave and drop updates; hold a lock for the whole RMW"
    ),
)
CON002 = Rule(
    rule_id="CON002",
    title="unlocked read-modify-write of shared instance state",
    severity="error",
    contract=CONTRACT,
    rationale=(
        "an object that owns a lock advertises cross-thread use; "
        "mutating its counters outside that lock races with readers"
    ),
)
CON003 = Rule(
    rule_id="CON003",
    title="inconsistent nested lock acquisition order",
    severity="error",
    contract=CONTRACT,
    rationale=(
        "acquiring A-then-B in one path and B-then-A in another "
        "deadlocks under contention; pick one global order"
    ),
)
CON004 = Rule(
    rule_id="CON004",
    title="thread created at import time",
    severity="error",
    contract=CONTRACT,
    rationale=(
        "a thread alive before the process pool forks leaves the child "
        "with inconsistent lock state; spawn threads from main() or "
        "object constructors instead"
    ),
)
CON005 = Rule(
    rule_id="CON005",
    title="loop-confined state mutated from a synchronous context",
    severity="error",
    contract=CONTRACT,
    rationale=(
        "an async class without locks relies on the event loop to "
        "serialize access; mutating the same attribute from a plain "
        "sync method reachable from other threads races with the loop"
    ),
)


class ConcurrencyAnalyzer(Analyzer):
    name = "concurrency"
    rules = (CON001, CON002, CON003, CON004, CON005)

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        if CONTRACT not in source.contracts:
            return []
        findings: list[Finding] = []
        findings.extend(_check_global_rmw(source))
        findings.extend(_check_self_rmw(source))
        findings.extend(_check_module_threads(source))
        findings.extend(_check_loop_confinement(source))
        return findings

    def check_project(self, project: Project) -> Iterable[Finding]:
        return _check_lock_order(project)


# --------------------------------------------------------------------------
# CON001 — module-global read-modify-write


def _check_global_rmw(source: SourceFile) -> Iterable[Finding]:
    module_globals = {
        target.id
        for node in source.tree.body
        if isinstance(node, ast.Assign)
        for target in node.targets
        if isinstance(target, ast.Name)
    }
    for function in iter_function_defs(source.tree):
        declared = {
            name
            for node in ast.walk(function)
            if isinstance(node, ast.Global)
            for name in node.names
        }
        shared = declared & module_globals
        if not shared:
            continue
        for statement, under_lock in _statements_with_lock_state(function):
            if under_lock:
                continue
            name = _rmw_target_name(statement)
            if name in shared:
                yield source.finding(
                    CON001,
                    statement,
                    f"read-modify-write of module global {name!r} outside "
                    "a lock; two threads can interleave and lose updates",
                )


def _rmw_target_name(node: ast.AST) -> str | None:
    """The plain name a statement read-modify-writes, else None."""
    if isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
        return node.target.id
    if (
        isinstance(node, ast.Assign)
        and len(node.targets) == 1
        and isinstance(node.targets[0], ast.Name)
    ):
        # x = x + 1 / x = x | y: the target also appears in the value.
        target = node.targets[0].id
        for sub in ast.walk(node.value):
            if isinstance(sub, ast.Name) and sub.id == target:
                return target
    return None


def _statements_with_lock_state(
    function: ast.AST,
) -> Iterable[tuple[ast.stmt, bool]]:
    """Every statement in ``function`` with whether a lock is held there."""

    def walk(body: list[ast.stmt], under_lock: bool) -> Iterable[tuple[ast.stmt, bool]]:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            held = under_lock
            if isinstance(statement, ast.With) and any(
                is_lockish(item.context_expr) for item in statement.items
            ):
                held = True
            yield statement, under_lock
            for field_name in ("body", "orelse", "finalbody", "handlers"):
                children = getattr(statement, field_name, None)
                if not children:
                    continue
                for child in children:
                    if isinstance(child, ast.ExceptHandler):
                        yield from walk(child.body, held)
                    elif isinstance(child, ast.stmt):
                        yield from walk([child], held)

    yield from walk(getattr(function, "body", []), False)


# --------------------------------------------------------------------------
# CON002 — self-attribute read-modify-write in lock-owning classes


def _check_self_rmw(source: SourceFile) -> Iterable[Finding]:
    for class_def in ast.walk(source.tree):
        if not isinstance(class_def, ast.ClassDef):
            continue
        if not _class_owns_lock(class_def):
            continue
        for function in class_def.body:
            if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if function.name == "__init__":
                # Construction happens-before publication; races there
                # are a lifecycle bug, not a locking one.
                continue
            for statement, under_lock in _statements_with_lock_state(function):
                if under_lock:
                    continue
                attribute = _self_rmw_attribute(statement)
                if attribute is not None:
                    yield source.finding(
                        CON002,
                        statement,
                        f"read-modify-write of self.{attribute} outside the "
                        "object's lock; handler threads reading stats can "
                        "observe torn updates and drop increments",
                    )


def _class_owns_lock(class_def: ast.ClassDef) -> bool:
    for node in ast.walk(class_def):
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and is_lockish_name(target.attr)
                for target in node.targets
            )
        ):
            return True
    return False


def is_lockish_name(name: str) -> bool:
    lowered = name.lower()
    return any(
        piece in lowered
        for piece in ("lock", "condition", "mutex", "semaphore")
    )


def _self_rmw_attribute(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.AugAssign)
        and isinstance(node.target, ast.Attribute)
        and isinstance(node.target.value, ast.Name)
        and node.target.value.id == "self"
    ):
        return node.target.attr
    if (
        isinstance(node, ast.Assign)
        and len(node.targets) == 1
        and isinstance(node.targets[0], ast.Attribute)
        and isinstance(node.targets[0].value, ast.Name)
        and node.targets[0].value.id == "self"
    ):
        attribute = node.targets[0].attr
        # self.x = max(self.x, v) and friends: target read in the value.
        for sub in ast.walk(node.value):
            if (
                isinstance(sub, ast.Attribute)
                and sub.attr == attribute
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
            ):
                return attribute
    return None


# --------------------------------------------------------------------------
# CON005 — loop-confined state mutated from a synchronous context


def _check_loop_confinement(source: SourceFile) -> Iterable[Finding]:
    for class_def in ast.walk(source.tree):
        if not isinstance(class_def, ast.ClassDef):
            continue
        if _class_owns_lock(class_def):
            continue  # CON002 territory: the lock is the discipline
        async_rmw: set[str] = set()
        sync_rmw: list[tuple[str, ast.stmt]] = []
        for function in class_def.body:
            if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if function.name == "__init__":
                # Construction happens-before publication; races there
                # are a lifecycle bug, not a confinement one.
                continue
            is_async = isinstance(function, ast.AsyncFunctionDef)
            for statement, under_lock in _statements_with_lock_state(function):
                if under_lock:
                    continue
                attribute = _self_rmw_attribute(statement)
                if attribute is None:
                    continue
                if is_async:
                    async_rmw.add(attribute)
                else:
                    sync_rmw.append((attribute, statement))
        if not async_rmw:
            continue
        for attribute, statement in sync_rmw:
            if attribute in async_rmw:
                yield source.finding(
                    CON005,
                    statement,
                    f"self.{attribute} is mutated from coroutines (loop-"
                    "confined) and from this synchronous method; a caller "
                    "on another thread races with the event loop — move "
                    "the mutation onto the loop (call_soon_threadsafe) or "
                    "guard it with a lock",
                )


# --------------------------------------------------------------------------
# CON003 — project-wide nested lock order


def _check_lock_order(project: Project) -> Iterable[Finding]:
    # pair -> first (source, node) that acquired outer-then-inner.
    order: dict[tuple[str, str], tuple[SourceFile, ast.With]] = {}
    reported: set[frozenset[str]] = set()
    for source in project.files:
        if CONTRACT not in source.contracts:
            continue
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.With):
                continue
            outer_names = lock_names_of_with(node)
            if not outer_names:
                continue
            for inner in ast.walk(node):
                if inner is node or not isinstance(inner, ast.With):
                    continue
                for outer_name in outer_names:
                    for inner_name in lock_names_of_with(inner):
                        if inner_name == outer_name:
                            continue
                        pair = (outer_name, inner_name)
                        inverse = (inner_name, outer_name)
                        if inverse in order:
                            key = frozenset(pair)
                            if key in reported:
                                continue
                            reported.add(key)
                            first_source, _ = order[inverse]
                            yield source.finding(
                                CON003,
                                inner,
                                f"acquires {outer_name!r} then {inner_name!r}"
                                f" but {first_source.rel_path} acquires them "
                                "in the opposite order; pick one global "
                                "lock order",
                            )
                        else:
                            order.setdefault(pair, (source, node))


# --------------------------------------------------------------------------
# CON004 — import-time threads


def _check_module_threads(source: SourceFile) -> Iterable[Finding]:
    aliases = imported_aliases(source.tree)
    for statement in source.tree.body:
        if isinstance(
            statement,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.If),
        ):
            # ``if __name__ == "__main__"`` blocks run as a script's
            # main, not at import; skip conditional bodies wholesale.
            continue
        for node in ast.walk(statement):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            resolved = resolve_call(name, aliases)
            if resolved in ("threading.Thread", "threading.Timer"):
                yield source.finding(
                    CON004,
                    node,
                    f"{resolved}(...) at module scope starts thread "
                    "machinery at import time; create threads from main() "
                    "or a constructor so the process pool can fork first",
                )
