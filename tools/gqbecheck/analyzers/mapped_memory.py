"""Mapped-write safety rules (contract ``snapshot-io``).

Snapshot shards are served as zero-copy ``np.frombuffer`` views over
``mmap`` regions; ``TripleTable.from_mapped`` wraps those views and
every accessor (``subject_ids``, ``object_ids``, ...) hands them out
read-only by convention.  Writing through such a view either raises
(read-only buffer) or — worse, with a writable mapping — silently edits
the snapshot file on disk for every process sharing it.  The sanctioned
path is the copy-on-write promotion API (``_promote_to_owned``), which
materializes a private copy before any mutation.

Rules
-----
``MAP001``
    Subscript or augmented assignment into an array that originates
    from a mapped accessor (``np.frombuffer``, ``from_mapped``,
    ``subject_ids``/``object_ids``, ``load_table``/``load_vocabulary``/
    ``load_graph``).  Taint propagates through plain-name aliases and
    subscript views of tainted names.
``MAP002``
    Calling an in-place-mutating ndarray method (``sort``, ``fill``,
    ``put``, ``partition``, ...) on a tainted array, or passing one as
    a function's ``out=`` argument.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..findings import Finding, Rule
from ..project import SourceFile
from .base import Analyzer, call_name, imported_aliases, resolve_call

CONTRACT = "snapshot-io"

MAP001 = Rule(
    rule_id="MAP001",
    title="in-place write into a mapped array",
    severity="error",
    contract=CONTRACT,
    rationale=(
        "arrays from frombuffer/from_mapped alias the snapshot file; "
        "writes raise on read-only buffers or corrupt the shared mapping "
        "— promote to an owned copy first"
    ),
)
MAP002 = Rule(
    rule_id="MAP002",
    title="mutating ndarray method on a mapped array",
    severity="error",
    contract=CONTRACT,
    rationale=(
        "sort/fill/put/... mutate their receiver; on a mapped view that "
        "is a write into the snapshot — promote to an owned copy first"
    ),
)

#: Call names (post alias-resolution suffix match) whose result is a
#: view over mapped memory.
_MAPPED_SOURCE_CALLS = {
    "frombuffer",
    "from_mapped",
    "load_table",
    "load_vocabulary",
    "load_graph",
}
#: Attribute accesses whose value is a mapped view (table accessors).
_MAPPED_SOURCE_ATTRS = {
    "subject_ids",
    "object_ids",
}
#: ndarray methods that mutate their receiver in place.
_MUTATING_METHODS = {
    "sort",
    "fill",
    "put",
    "itemset",
    "partition",
    "resize",
    "byteswap",
    "setflags",
}


class MappedMemoryAnalyzer(Analyzer):
    name = "mapped-memory"
    rules = (MAP001, MAP002)

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        if CONTRACT not in source.contracts:
            return []
        findings: list[Finding] = []
        aliases = imported_aliases(source.tree)
        for scope in _function_scopes(source.tree):
            tainted = _tainted_names(scope, aliases)
            findings.extend(_check_scope(source, scope, tainted, aliases))
        return findings


def _function_scopes(tree: ast.Module) -> list[ast.AST]:
    scopes: list[ast.AST] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node)
    return scopes


def _scope_nodes(scope: ast.AST) -> Iterable[ast.AST]:
    for child in ast.iter_child_nodes(scope):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield child
        yield from _scope_nodes(child)


def _is_mapped_source(node: ast.expr, tainted: set[str], aliases: dict[str, str]) -> bool:
    """Whether ``node`` evaluates to (a view of) mapped memory."""
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, ast.Attribute):
        if node.attr in _MAPPED_SOURCE_ATTRS:
            return True
        return _is_mapped_source(node.value, tainted, aliases)
    if isinstance(node, ast.Subscript):
        # A slice of a mapped array is still a view of mapped memory.
        return _is_mapped_source(node.value, tainted, aliases)
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name is not None:
            resolved = resolve_call(name, aliases)
            if resolved.rsplit(".", maxsplit=1)[-1] in _MAPPED_SOURCE_CALLS:
                return True
        # ndarray methods like .reshape()/.view() keep pointing at the
        # same buffer; .copy()/.astype() break the alias.
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in ("copy", "astype", "tolist"):
                return False
            return _is_mapped_source(node.func.value, tainted, aliases)
    return False


def _tainted_names(scope: ast.AST, aliases: dict[str, str]) -> set[str]:
    """Names in ``scope`` bound to mapped-origin arrays.

    Two fixpoint-free forward passes are enough in practice: pass one
    seeds names assigned directly from mapped sources, pass two
    propagates through one level of aliasing (``b = a``; ``c = a[lo:hi]``).
    """
    tainted: set[str] = set()
    for _ in range(2):
        for node in _scope_nodes(scope):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if value is None:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and _is_mapped_source(
                    value, tainted, aliases
                ):
                    tainted.add(target.id)
    return tainted


def _check_scope(
    source: SourceFile,
    scope: ast.AST,
    tainted: set[str],
    aliases: dict[str, str],
) -> Iterable[Finding]:
    for node in _scope_nodes(scope):
        # MAP001 — subscript assignment: tainted[i] = v / tainted[i] += v.
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and _is_mapped_source(
                    target.value, tainted, aliases
                ):
                    yield source.finding(
                        MAP001,
                        target,
                        "assignment into a mapped-origin array; promote to "
                        "an owned copy (copy-on-write API) before mutating",
                    )
        if isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Subscript) and _is_mapped_source(
                target.value, tainted, aliases
            ):
                yield source.finding(
                    MAP001,
                    target,
                    "augmented assignment into a mapped-origin array; "
                    "promote to an owned copy before mutating",
                )
            elif isinstance(target, ast.Name) and target.id in tainted:
                # a += 1 on an ndarray is elementwise in-place.
                yield source.finding(
                    MAP001,
                    node,
                    "in-place augmented assignment on a mapped-origin "
                    "array mutates the mapping; promote to an owned copy",
                )
        # MAP002 — mutating methods and out= sinks.
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS
                and _is_mapped_source(node.func.value, tainted, aliases)
            ):
                yield source.finding(
                    MAP002,
                    node,
                    f".{node.func.attr}() mutates a mapped-origin array in "
                    "place; promote to an owned copy first",
                )
            for keyword in node.keywords:
                if keyword.arg == "out" and _is_mapped_source(
                    keyword.value, tainted, aliases
                ):
                    yield source.finding(
                        MAP002,
                        node,
                        "out= targets a mapped-origin array; write into an "
                        "owned buffer instead",
                    )
