#!/usr/bin/env python
"""Documentation checker: docs must execute, links must resolve.

Run from the repository root (CI's docs job does)::

    python tools/check_docs.py

Checks, over ``README.md`` and ``docs/*.md``:

* **intra-repo links** — every relative markdown link target must exist
  (anchors and external ``http(s)``/``mailto`` links are ignored);
* **```python blocks** — executed top to bottom in one namespace per
  file (so later blocks may build on earlier ones), in a scratch
  directory;
* **```console blocks** — each ``$ `` line is executed:

  - ``gqbe <args>`` runs through :func:`repro.cli.main` in the scratch
    directory, so the quickstart's ``generate → build-index → query``
    flow runs exactly as written;
  - ``gqbe serve ...`` would block forever, so the checker starts the
    documented server configuration on an ephemeral port in the
    background instead, and maps subsequent ``curl`` lines onto it;
  - ``curl`` lines are replayed through ``http.client`` against the
    running doc server and must return HTTP 200;
  - anything else (``pip``, shell plumbing) is skipped.

Any failure prints the offending file/block and exits non-zero.
"""

from __future__ import annotations

import contextlib
import http.client
import json
import os
import re
import shlex
import sys
import tempfile
import urllib.parse
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

_FENCE = re.compile(r"^```(\w*)\s*$")
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def iter_blocks(text: str):
    """Yield ``(language, first_line_number, code)`` for fenced blocks."""
    language = None
    start = 0
    lines: list[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        fence = _FENCE.match(line)
        if language is None:
            if fence:
                language = fence.group(1) or "text"
                start = number + 1
                lines = []
        elif line.strip() == "```":
            yield language, start, "\n".join(lines)
            language = None
        else:
            lines.append(line)


def check_links(path: Path, text: str) -> list[str]:
    """Broken relative link targets in ``text`` (empty when all resolve)."""
    problems = []
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = urllib.parse.unquote(target.split("#", 1)[0])
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            problems.append(f"{path}: broken link -> {target}")
    return problems


class _DocServer:
    """The background server standing in for a documented ``gqbe serve``."""

    def __init__(self, argv: list[str], cwd: Path) -> None:
        from repro.cli import _load_system, build_frontend, build_parser

        args = build_parser().parse_args(argv)
        loaded = _load_system(args)
        if isinstance(loaded, int):
            raise RuntimeError(f"gqbe serve could not load a system: {argv}")
        system, snapshot_path = loaded
        self.documented_port = args.port
        args.port = 0  # the doc's port may be taken; curl lines are remapped
        self.server = build_frontend(system, snapshot_path, args).start()

    def curl(self, pieces: list[str]) -> tuple[int, bytes]:
        method = "GET"
        body = None
        url = None
        headers: dict[str, str] = {}
        iterator = iter(pieces[1:])
        for piece in iterator:
            if piece in ("-X", "--request"):
                method = next(iterator)
            elif piece in ("-d", "--data", "--data-raw"):
                body = next(iterator)
                if method == "GET":
                    method = "POST"
            elif piece in ("-H", "--header"):
                name, _, value = next(iterator).partition(":")
                headers[name.strip()] = value.strip()
            elif piece == "-s":
                continue
            elif not piece.startswith("-"):
                url = piece
        if url is None:
            raise RuntimeError(f"curl line without a URL: {pieces}")
        parsed = urllib.parse.urlsplit(url)
        connection = http.client.HTTPConnection(
            self.server.host, self.server.port, timeout=60
        )
        try:
            target = parsed.path or "/"
            if parsed.query:
                target += "?" + parsed.query
            if body and "Content-Type" not in headers:
                headers["Content-Type"] = "application/json"
            connection.request(
                method,
                target,
                body=body.encode() if body is not None else None,
                headers=headers,
            )
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def stop(self) -> None:
        self.server.stop()


def run_console_block(code: str, cwd: Path, state: dict) -> list[str]:
    """Execute a ```console block's ``$`` lines; returns problems."""
    from repro.cli import main as cli_main

    problems = []
    for line in code.splitlines():
        line = line.strip()
        if not line.startswith("$ "):
            continue  # sample output
        command = line[2:].strip()
        pieces = shlex.split(command)
        if not pieces:
            continue
        if pieces[0] == "gqbe":
            if len(pieces) > 1 and pieces[1] == "serve":
                try:
                    state["server"] = _DocServer(pieces[1:], cwd)
                    print(f"  serve: started ephemeral server for: {command}")
                # gqbe: ignore[EXC001] -- doc checker collects every kind
                # of block failure as a problem instead of aborting the run.
                except Exception as error:  # noqa: BLE001 - reported below
                    problems.append(f"`{command}` failed: {error!r}")
            else:
                try:
                    exit_code = cli_main(pieces[1:])
                except SystemExit as error:  # argparse failures
                    exit_code = error.code
                # gqbe: ignore[EXC001] -- doc checker collects every kind
                # of block failure as a problem instead of aborting the run.
                except Exception as error:  # noqa: BLE001 - reported below
                    problems.append(f"`{command}` raised {error!r}")
                    continue
                if exit_code not in (0, None):
                    problems.append(f"`{command}` exited with {exit_code}")
        elif pieces[0] == "curl":
            server = state.get("server")
            if server is None:
                problems.append(f"`{command}` has no running doc server")
                continue
            try:
                status, payload = server.curl(pieces)
            # gqbe: ignore[EXC001] -- doc checker collects every kind of
            # block failure as a problem instead of aborting the run.
            except Exception as error:  # noqa: BLE001 - reported below
                problems.append(f"`{command}` raised {error!r}")
                continue
            if status != 200:
                problems.append(
                    f"`{command}` returned HTTP {status}: {payload[:200]!r}"
                )
            else:
                preview = payload[:120].decode("utf-8", "replace")
                print(f"  curl: 200 {preview}...")
        else:
            print(f"  skipped non-gqbe command: {command}")
    return problems


def check_file(path: Path) -> list[str]:
    text = path.read_text(encoding="utf-8")
    problems = check_links(path, text)
    namespace: dict = {"__name__": f"docs_check_{path.stem}"}
    state: dict = {}
    with tempfile.TemporaryDirectory(prefix="gqbe-docs-") as scratch:
        scratch_path = Path(scratch)
        previous = os.getcwd()
        os.chdir(scratch_path)
        try:
            for language, line, code in iter_blocks(text):
                location = f"{path.relative_to(REPO_ROOT)}:{line}"
                if language == "python":
                    print(f"  exec python block at {location}")
                    try:
                        exec(compile(code, location, "exec"), namespace)  # noqa: S102
                    # gqbe: ignore[EXC001] -- executed doc snippets may
                    # fail arbitrarily; failures become reported problems.
                    except Exception as error:  # noqa: BLE001 - reported below
                        problems.append(f"python block at {location}: {error!r}")
                elif language == "console":
                    print(f"  exec console block at {location}")
                    problems.extend(run_console_block(code, scratch_path, state))
        finally:
            os.chdir(previous)
            server = state.get("server")
            if server is not None:
                with contextlib.suppress(Exception):
                    server.stop()
    return problems


def main() -> int:
    files = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    all_problems = []
    for path in files:
        if not path.exists():
            all_problems.append(f"missing documentation file: {path}")
            continue
        print(f"checking {path.relative_to(REPO_ROOT)}")
        all_problems.extend(check_file(path))
    if all_problems:
        print(f"\n{len(all_problems)} documentation problem(s):", file=sys.stderr)
        for problem in all_problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"\nall good: {len(files)} files checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
