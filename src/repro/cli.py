"""Command-line interface: ``gqbe`` — query, serve, generate and benchmark.

Subcommands
-----------
``gqbe query``
    Load a triple file (or a prebuilt index snapshot via ``--snapshot``),
    run a query tuple and print the ranked answers::

        gqbe query --snapshot data.snap --tuple "Jerry Yang,Yahoo!"
``gqbe build-index``
    Run the offline build for a triple file and save it as an index
    snapshot for instant warm starts (``--format v2``/``v3`` write the
    sharded, memory-mappable directory layouts; v3 additionally maps
    the vocabulary and graph so serve workers share those pages too)::

        gqbe build-index data.tsv data.snap
        gqbe build-index data.tsv data.snapdir --format v3
``gqbe serve``
    Start the long-lived HTTP serving frontend over one warm snapshot
    (request batching + LRU answer cache; ``--workers N`` shards each
    batching window across a process pool; see :mod:`repro.serving`)::

        gqbe serve --snapshot data.snapdir --port 8080 --workers 4
``gqbe bench-serve``
    Load-test a serving frontend (embedded, over a snapshot or a built-in
    synthetic workload) and report throughput/latency::

        gqbe bench-serve --workload freebase --requests 200 --json out.json
``gqbe ingest``
    Push a triple file into a running server's live delta overlay via
    ``POST /admin/ingest`` (``--compact`` folds it to disk afterwards)::

        gqbe ingest new-edges.tsv --url http://127.0.0.1:8080 --compact
``gqbe generate``
    Generate a synthetic Freebase-like or DBpedia-like dataset to a TSV file.
``gqbe check``
    Run the :mod:`tools.gqbecheck` static invariant analyzers (determinism,
    mapped-memory safety, concurrency hygiene, exception discipline,
    config/doc coverage) over the checkout::

        gqbe check src benchmarks tools
``gqbe experiment``
    Run one of the paper's experiments (fig13, table3, table4, ...) and
    print its table.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.datasets.synthetic import DBpediaLikeGenerator, FreebaseLikeGenerator
from repro.evaluation.harness import ExperimentHarness, HarnessConfig
from repro.evaluation.reporting import format_answer_list, format_table
from repro.graph.triples import load_graph, write_triples
from repro.storage.snapshot import GraphStore


def _cmd_query(args: argparse.Namespace) -> int:
    if args.snapshot is not None:
        if args.graph is not None:
            print(
                "pass either a graph file or --snapshot, not both",
                file=sys.stderr,
            )
            return 2
        graph_store = GraphStore.load(args.snapshot)
        config = GQBEConfig(
            d=args.d,
            mqg_size=args.mqg_size,
            intern_entities=graph_store.intern_entities,
            columnar=graph_store.columnar,
        )
        system = GQBE(config=config, graph_store=graph_store)
    elif args.graph is not None:
        config = GQBEConfig(d=args.d, mqg_size=args.mqg_size)
        system = GQBE(load_graph(args.graph), config=config)
    else:
        print("pass a graph file or --snapshot", file=sys.stderr)
        return 2
    tuples = [tuple(t.split(",")) for t in args.tuple]
    if len(tuples) == 1:
        result = system.query(tuples[0], k=args.k)
    else:
        result = system.query_multi(tuples, k=args.k)
    rows = [
        {
            "rank": answer.rank,
            "answer": answer.entities,
            "score": answer.score,
        }
        for answer in result.answers
    ]
    print(format_table(rows, title=f"Top-{args.k} answers"))
    print(
        f"\nMQG edges: {result.mqg.num_edges}  "
        f"lattice nodes evaluated: {result.statistics.nodes_evaluated}  "
        f"total time: {result.total_seconds:.3f}s"
    )
    return 0


def _peak_rss_bytes() -> int | None:
    """This process's peak RSS so far (None where rusage is unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms only
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return peak if sys.platform == "darwin" else peak * 1024


def _build_index_footer(rows: int, seconds: float) -> str:
    """The shared throughput / peak-RSS report line of ``build-index``."""
    throughput = rows / seconds if seconds > 0 else 0.0
    peak = _peak_rss_bytes()
    rss = f"  peak RSS {peak / 1e6:.1f} MB" if peak is not None else ""
    return f"throughput {throughput:,.0f} rows/s{rss}"


def _cmd_build_index(args: argparse.Namespace) -> int:
    say = (lambda *_: None) if args.quiet else print
    kind = "sharded directory" if args.format in ("v2", "v3") else "file"
    if args.streaming:
        if args.rows:
            print(
                "--streaming builds the columnar engine; it cannot be "
                "combined with --rows",
                file=sys.stderr,
            )
            return 2
        from repro.storage.build import build_streaming_snapshot

        report = build_streaming_snapshot(
            args.graph,
            args.output,
            snapshot_format=args.format,
            workers=args.build_workers,
            memory_budget_mb=args.memory_budget_mb,
        )
        say(
            f"indexed {report['edges']} edges ({report['nodes']} nodes, "
            f"{report['labels']} labels) to {args.output} "
            f"({args.format} {kind}, {report['bytes_written']} bytes, streaming)"
        )
        if report["streaming"]:
            say(
                f"pass1 {report['pass1_seconds']:.3f}s  "
                f"pass2 {report['pass2_seconds']:.3f}s  "
                f"finalize {report['finalize_labels_seconds'] + report['finalize_shards_seconds']:.3f}s  "
                f"({report['duplicates']} duplicates, "
                f"{report['spill_runs']} spill runs, "
                f"{report['workers']} workers, "
                f"budget {report['memory_budget_mb']} MB)"
            )
        say(_build_index_footer(report["triples_read"], report["total_seconds"]))
        return 0

    overall = time.perf_counter()
    started = time.perf_counter()
    graph = load_graph(args.graph)
    load_seconds = time.perf_counter() - started

    started = time.perf_counter()
    graph_store = GraphStore.build(graph, columnar=not args.rows)
    build_seconds = time.perf_counter() - started

    started = time.perf_counter()
    size = graph_store.save(args.output, format=args.format)
    save_seconds = time.perf_counter() - started
    say(
        f"indexed {graph.num_edges} edges ({graph.num_nodes} nodes, "
        f"{graph.num_labels} labels) to {args.output} "
        f"({args.format} {kind}, {size} bytes)\n"
        f"load {load_seconds:.3f}s  build {build_seconds:.3f}s  "
        f"save {save_seconds:.3f}s"
    )
    say(_build_index_footer(graph.num_edges, time.perf_counter() - overall))
    return 0


def _post_json(url: str, path: str, payload, api_key: str | None, timeout: float):
    """POST ``payload`` to ``url + path``; returns ``(status, body_dict)``."""
    import http.client
    from urllib.parse import urlsplit

    parts = urlsplit(url)
    if parts.scheme not in ("http", ""):
        raise ValueError(f"only http:// URLs are supported, got {url!r}")
    host = parts.hostname or "127.0.0.1"
    port = parts.port or 80
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    headers = {"Content-Type": "application/json"}
    if api_key:
        headers["Authorization"] = f"Bearer {api_key}"
    try:
        connection.request("POST", path, body=json.dumps(payload), headers=headers)
        response = connection.getresponse()
        raw = response.read()
    finally:
        connection.close()
    try:
        body = json.loads(raw) if raw else {}
    except ValueError:
        body = {"error": raw.decode("utf-8", "replace")}
    return response.status, body


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.graph.triples import read_triples

    if args.batch_size < 1:
        print(f"--batch-size must be >= 1, got {args.batch_size}", file=sys.stderr)
        return 2
    triples = read_triples(args.triples)
    if not triples:
        print(f"no triples found in {args.triples}", file=sys.stderr)
        return 2
    applied = duplicates = 0
    delta_edges = 0
    for start in range(0, len(triples), args.batch_size):
        batch = triples[start : start + args.batch_size]
        payload = {"triples": [[t.subject, t.label, t.object] for t in batch]}
        status, body = _post_json(
            args.url, "/admin/ingest", payload, args.api_key, args.timeout
        )
        if status != 200:
            print(
                f"ingest batch at offset {start} failed with HTTP {status}: "
                f"{body.get('error', body)}",
                file=sys.stderr,
            )
            return 1
        applied += body.get("applied", 0)
        duplicates += body.get("duplicates", 0)
        delta_edges = body.get("delta_edges", delta_edges)
    print(
        f"ingested {len(triples)} triples: {applied} applied, "
        f"{duplicates} duplicates, delta now {delta_edges} edges"
    )
    if args.compact:
        status, body = _post_json(
            args.url, "/admin/compact", None, args.api_key, args.timeout
        )
        if status != 200:
            print(
                f"compaction failed with HTTP {status}: "
                f"{body.get('error', body)}",
                file=sys.stderr,
            )
            return 1
        print(
            f"compacted {body.get('delta_edges')} delta edges into "
            f"{body.get('snapshot')} ({body.get('format')})"
        )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "freebase":
        generator = FreebaseLikeGenerator(seed=args.seed, scale=args.scale)
    else:
        generator = DBpediaLikeGenerator(seed=args.seed, scale=args.scale)
    dataset = generator.generate()
    count = write_triples(sorted(dataset.graph.edges), args.output)
    print(
        f"wrote {count} triples ({dataset.graph.num_nodes} nodes, "
        f"{dataset.graph.num_labels} labels) to {args.output}"
    )
    return 0


def _load_system(args: argparse.Namespace) -> tuple[GQBE, str | None] | int:
    """Build a system from ``--snapshot`` or a triple file (shared by
    ``serve`` and ``bench-serve``); returns an exit code on usage errors."""
    if args.snapshot is not None and args.graph is not None:
        print("pass either a graph file or --snapshot, not both", file=sys.stderr)
        return 2
    if args.snapshot is not None:
        from repro.storage.generations import resolve_latest_generation

        # After a crash or restart, serve the newest compacted
        # generation of this snapshot family (sweeping any .tmp
        # wreckage a dying compaction left behind).
        resolved = str(resolve_latest_generation(args.snapshot))
        return GQBE.from_snapshot(resolved), resolved
    if args.graph is not None:
        return GQBE(load_graph(args.graph)), None
    print("pass a graph file or --snapshot", file=sys.stderr)
    return 2


def build_frontend(system: GQBE, snapshot_path: str | None, args: argparse.Namespace):
    """Construct the serving frontend the parsed ``serve``/``bench-serve``
    argv asks for (shared with ``tools/check_docs.py``, which replays the
    documented console blocks against a real server)."""
    options = {
        "snapshot_path": snapshot_path,
        "host": args.host,
        "port": args.port,
        "batch_window_seconds": args.batch_window_ms / 1000.0,
        "max_batch": args.max_batch,
        "cache_size": args.cache_size,
        "workers": args.workers,
        "compact_threshold": args.compact_threshold,
    }
    if args.max_body_bytes is not None:
        options["max_body_bytes"] = args.max_body_bytes
    if args.frontend == "threaded":
        from repro.serving.server import GQBEServer

        return GQBEServer(system, **options)
    from repro.serving.async_server import AsyncGQBEServer

    return AsyncGQBEServer(
        system,
        high_water=args.high_water,
        deadline_ms=args.deadline_ms,
        rate_limit_rps=args.rate_limit_rps,
        rate_limit_burst=args.rate_limit_burst,
        api_keys=args.api_keys or None,
        cache_ttl_seconds=args.cache_ttl_seconds,
        **options,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    loaded = _load_system(args)
    if isinstance(loaded, int):
        return loaded
    system, snapshot_path = loaded
    server = build_frontend(system, snapshot_path, args)
    meta = system.graph_store.meta()
    extras = ""
    if args.frontend == "async":
        extras = (
            f", high water {args.high_water}"
            + (f", deadline {args.deadline_ms}ms" if args.deadline_ms else "")
            + (
                f", rate limit {args.rate_limit_rps:g} rps"
                if args.rate_limit_rps
                else ""
            )
        )
    print(
        f"serving {meta.get('num_edges')} edges ({meta.get('num_nodes')} nodes) "
        f"on http://{server.host}:{server.port}  "
        f"[{args.frontend} frontend, batch window {args.batch_window_ms:g}ms, "
        f"max batch {args.max_batch}, cache {args.cache_size}, "
        f"workers {args.workers}{extras}]"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
        server.stop()
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.serving.loadgen import bench_serve

    scratch_dir: str | None = None
    if args.workload is not None:
        if args.snapshot is not None or args.graph is not None:
            print(
                "pass either --workload or a graph/--snapshot, not both",
                file=sys.stderr,
            )
            return 2
        from repro.datasets.workloads import (
            build_dbpedia_workload,
            build_freebase_workload,
        )

        build = (
            build_freebase_workload
            if args.workload == "freebase"
            else build_dbpedia_workload
        )
        workload = build(scale=args.scale)
        if args.workers > 1:
            # Pooled runs serve from a real sharded snapshot (v3 by
            # default) so the workers memory-map shared pages instead of
            # each forking a private copy of the workload graph.
            import tempfile

            from repro.storage.snapshot import GraphStore as _GraphStore

            scratch_dir = tempfile.mkdtemp(prefix="gqbe-bench-")
            snapshot_path = str(Path(scratch_dir) / "workload.snapdir")
            _GraphStore.build(workload.dataset.graph).save(
                snapshot_path, format=args.snapshot_format
            )
            system = GQBE.from_snapshot(snapshot_path)
        else:
            system = GQBE(workload.dataset.graph)
            snapshot_path = None
        tuples = [list(query.query_tuple) for query in workload.queries]
    else:
        loaded = _load_system(args)
        if isinstance(loaded, int):
            return loaded
        system, snapshot_path = loaded
        if not args.tuple:
            print(
                "bench-serve needs --tuple (repeatable) unless --workload is used",
                file=sys.stderr,
            )
            return 2
        tuples = [t.split(",") for t in args.tuple]

    server = build_frontend(system, snapshot_path, args).start()
    try:
        report = bench_serve(
            server,
            tuples,
            k=args.k,
            requests=args.requests,
            concurrency=args.concurrency,
            warmup_requests=args.warmup,
            arrival=args.arrival,
            rate=args.rate,
            api_key=args.api_keys[0] if args.api_keys else None,
        )
    finally:
        server.stop()
        if scratch_dir is not None:
            import shutil

            shutil.rmtree(scratch_dir, ignore_errors=True)

    latency = report["latency_ms"]
    source = (
        f"from {report['concurrency']} workers"
        if report["arrival"] == "closed"
        else f"at {report['rate_rps']:g} req/s open-loop"
    )
    print(
        f"{report['completed']}/{report['requests']} requests ok "
        f"({report['errors']} errors, {report['cached_responses']} cached) "
        f"in {report['duration_seconds']:.2f}s {source}"
    )
    if report["arrival"] == "open":
        counts = "  ".join(
            f"{status}: {count}"
            for status, count in report["status_counts"].items()
        )
        print(
            f"status counts: {counts}   "
            f"Retry-After on {report['retry_after_seen']} responses, "
            f"{report['transport_errors']} transport errors"
        )
    print(
        f"throughput {report['throughput_rps']:.1f} req/s   latency ms: "
        f"mean {latency['mean']:.2f}  p50 {latency['p50']:.2f}  "
        f"p95 {latency['p95']:.2f}  p99 {latency['p99']:.2f}"
    )
    batcher = report.get("server_stats", {}).get("batcher", {})
    if batcher:
        print(
            f"batches {batcher.get('batches_run')}  "
            f"mean batch size {batcher.get('mean_batch_size', 0):.2f}  "
            f"largest {batcher.get('largest_batch')}  "
            f"pooled {batcher.get('pooled_batches', 0)}"
        )
    memory = report.get("memory", {})
    if memory.get("parent_rss_bytes"):
        worker_rss = memory.get("worker_rss_bytes") or []
        workers_part = (
            "  workers " + "+".join(f"{rss / 1e6:.0f}" for rss in worker_rss) + " MB"
            if worker_rss
            else ""
        )
        print(
            f"rss: parent {memory['parent_rss_bytes'] / 1e6:.0f} MB{workers_part}"
        )
    structural = memory.get("snapshot_worker_structural_incremental_bytes")
    if structural is not None:
        print(
            f"structural per-worker incremental rss: {structural / 1e6:.2f} MB "
            "(snapshot sections only, over the interpreter+numpy floor)"
        )
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote report to {args.json}")
    return 0 if report["errors"] == 0 else 1


_EXPERIMENTS = (
    "table1",
    "table2",
    "fig13",
    "table3",
    "table4",
    "table5",
    "fig14",
    "table6",
)


def _cmd_experiment(args: argparse.Namespace) -> int:
    harness = ExperimentHarness(HarnessConfig(scale=args.scale))
    name = args.name
    if name == "table1":
        print(format_table(harness.table1_workload_summary(), title="Table I"))
    elif name == "table2":
        for query_id, answers in harness.table2_case_study().items():
            print(format_answer_list(query_id, answers))
    elif name == "fig13":
        print(format_table(harness.figure13_accuracy(), title="Figure 13"))
    elif name == "table3":
        print(format_table(harness.table3_dbpedia_accuracy(), title="Table III"))
    elif name == "table4":
        print(format_table(harness.table4_user_study(), title="Table IV"))
    elif name == "table5":
        print(format_table(harness.table5_multi_tuple(), title="Table V"))
    elif name == "fig14":
        print(format_table(harness.figure14_15_efficiency(), title="Figures 14-15"))
    elif name == "table6":
        print(
            format_table(
                harness.table6_fig16_multituple_efficiency(),
                title="Table VI / Figure 16",
            )
        )
    else:
        print(f"unknown experiment {name!r}", file=sys.stderr)
        return 2
    return 0


def _find_check_root() -> Path | None:
    """The directory holding the ``tools.gqbecheck`` package, if any.

    Walk up from the working directory first (so the analyzers run
    against the tree the user is standing in), then fall back to the
    checkout this module was imported from — an editable install has
    ``src/repro/cli.py`` two levels below the repo root.
    """
    candidates = [Path.cwd(), *Path.cwd().parents]
    candidates.append(Path(__file__).resolve().parents[2])
    for candidate in candidates:
        if (candidate / "tools" / "gqbecheck" / "__init__.py").is_file():
            return candidate
    return None


def _cmd_check(args: argparse.Namespace) -> int:
    return _run_check(list(args.check_args))


def _run_check(forwarded: list[str]) -> int:
    root = _find_check_root()
    if root is None:
        print(
            "gqbe check: cannot locate the tools/gqbecheck package "
            "(run from a repo checkout)",
            file=sys.stderr,
        )
        return 2
    if str(root) not in sys.path:
        sys.path.insert(0, str(root))
    from tools.gqbecheck.cli import main as check_main

    # A leading "--" separator (gqbe check -- --flags) is noise; drop it.
    if forwarded and forwarded[0] == "--":
        forwarded = forwarded[1:]
    if not any(piece.startswith("--root") for piece in forwarded):
        forwarded = ["--root", str(root), *forwarded]
    return check_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="gqbe", description="Query knowledge graphs by example entity tuples."
    )
    from repro import __version__

    parser.add_argument(
        "--version",
        action="version",
        version=f"gqbe {__version__}",
        help="print the installed package version and exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query = subparsers.add_parser("query", help="run a query over a triple file")
    query.add_argument(
        "graph", nargs="?", default=None, help="path to a TSV or NT triple file"
    )
    query.add_argument(
        "--snapshot",
        default=None,
        help="warm-start from an index snapshot built with `gqbe build-index` "
        "instead of loading and indexing a triple file",
    )
    query.add_argument(
        "--tuple",
        action="append",
        required=True,
        help="comma-separated entity tuple; repeat for multi-tuple queries",
    )
    query.add_argument("--k", type=int, default=10)
    query.add_argument("--d", type=int, default=2)
    query.add_argument("--mqg-size", type=int, default=15, dest="mqg_size")
    query.set_defaults(func=_cmd_query)

    build_index = subparsers.add_parser(
        "build-index",
        help="run the offline build once and save it as an index snapshot",
    )
    build_index.add_argument(
        "graph",
        help="path to a TSV, NT or CSV-export triple file (.gz accepted)",
    )
    build_index.add_argument("output", help="output snapshot path")
    build_index.add_argument(
        "--rows",
        action="store_true",
        help="build tuple-row tables (the reference engine) instead of columnar",
    )
    build_index.add_argument(
        "--format",
        choices=("v1", "v2", "v3"),
        default="v1",
        help="v1: single-file snapshot; v2: sharded directory whose label "
        "tables reopen as zero-copy memory-mapped shards (partial loads, "
        "page sharing across serve workers); v3: v2 plus a mapped "
        "vocabulary string arena and a graph CSR shard, so serve workers "
        "share those pages too",
    )
    build_index.add_argument(
        "--streaming",
        action="store_true",
        help="build out-of-core: stream the dump in bounded chunks, "
        "external-sort the vocabulary and per-label rows through disk "
        "spill runs, and write the v3 shards incrementally — same bytes "
        "as the in-memory build, without holding the graph in memory "
        "(v1/v2 accept the flag but still materialize; see docs/building.md)",
    )
    build_index.add_argument(
        "--build-workers",
        type=int,
        default=1,
        metavar="N",
        help="fan the per-label shard writers out over N processes "
        "(streaming only; each worker owns disjoint labels)",
    )
    build_index.add_argument(
        "--memory-budget-mb",
        type=int,
        default=256,
        metavar="M",
        help="bound the streaming build's chunk and spill buffers to "
        "roughly M megabytes (streaming only; smaller budgets spill more)",
    )
    build_index.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the progress/timing report (CI use)",
    )
    build_index.set_defaults(func=_cmd_build_index)

    def add_serving_options(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "graph", nargs="?", default=None, help="path to a TSV or NT triple file"
        )
        parser.add_argument(
            "--snapshot",
            default=None,
            help="serve from an index snapshot built with `gqbe build-index`",
        )
        parser.add_argument("--host", default="127.0.0.1")
        parser.add_argument(
            "--port",
            type=int,
            default=8080,
            help="TCP port (0 picks an ephemeral port)",
        )
        parser.add_argument(
            "--batch-window-ms",
            type=float,
            default=5.0,
            dest="batch_window_ms",
            help="how long to keep collecting concurrent requests into one "
            "query_batch call",
        )
        parser.add_argument(
            "--max-batch",
            type=int,
            default=64,
            dest="max_batch",
            help="maximum requests per batched execution",
        )
        parser.add_argument(
            "--cache-size",
            type=int,
            default=1024,
            dest="cache_size",
            help="LRU answer-cache capacity (0 disables caching)",
        )
        parser.add_argument(
            "--workers",
            type=int,
            default=1,
            help="process-pool width for batch execution: each worker opens "
            "the served snapshot (shared mapped pages with a v2/v3 snapshot) "
            "and batching windows are sharded across them; 1 = inline",
        )
        parser.add_argument(
            "--max-body-bytes",
            type=int,
            default=None,
            dest="max_body_bytes",
            help="cap on POST request bodies (default 4 MiB); larger "
            "declared Content-Lengths are refused with 413 before any "
            "body byte is read",
        )
        defaults = GQBEConfig()
        parser.add_argument(
            "--frontend",
            choices=("async", "threaded"),
            default="async",
            help="async: event-loop frontend with admission control and "
            "/metrics (the default); threaded: the original "
            "thread-per-connection frontend",
        )
        parser.add_argument(
            "--high-water",
            type=int,
            default=defaults.serve_high_water,
            dest="high_water",
            help="admission high-water mark of the async frontend: requests "
            "past this many in flight are shed with 429 + Retry-After",
        )
        parser.add_argument(
            "--deadline-ms",
            type=int,
            default=defaults.serve_deadline_ms,
            dest="deadline_ms",
            help="per-request engine deadline (ms) of the async frontend; "
            "expired requests get 504 and their batch slot is abandoned "
            "(default: no deadline)",
        )
        parser.add_argument(
            "--rate-limit-rps",
            type=float,
            default=defaults.serve_rate_limit_rps,
            dest="rate_limit_rps",
            help="per-client sustained rate limit (requests/second, token "
            "bucket keyed by API key); default: no rate limit",
        )
        parser.add_argument(
            "--rate-limit-burst",
            type=int,
            default=defaults.serve_rate_limit_burst,
            dest="rate_limit_burst",
            help="token-bucket burst capacity per client",
        )
        parser.add_argument(
            "--api-key",
            action="append",
            default=None,
            dest="api_keys",
            help="allowed API key (repeatable); when set, requests must send "
            "Authorization: Bearer <key>",
        )
        parser.add_argument(
            "--cache-ttl-seconds",
            type=float,
            default=defaults.serve_cache_ttl_seconds,
            dest="cache_ttl_seconds",
            help="time-to-live for answer-cache entries of the async "
            "frontend (default: no TTL, pure LRU)",
        )
        parser.add_argument(
            "--compact-threshold",
            type=int,
            default=defaults.serve_compact_threshold,
            dest="compact_threshold",
            help="start a background compaction once the in-memory ingest "
            "delta holds this many edges, folding base + delta into a "
            "fresh snapshot generation (default: compact only on "
            "POST /admin/compact)",
        )

    serve = subparsers.add_parser(
        "serve",
        help="serve JSON queries over HTTP from one warm snapshot",
    )
    add_serving_options(serve)
    serve.set_defaults(func=_cmd_serve)

    bench_serve = subparsers.add_parser(
        "bench-serve",
        help="load-test an embedded serving frontend and report throughput",
    )
    add_serving_options(bench_serve)
    bench_serve.add_argument(
        "--workload",
        choices=("freebase", "dbpedia"),
        default=None,
        help="serve a built-in synthetic workload (its Table I queries become "
        "the request mix) instead of a snapshot/graph",
    )
    bench_serve.add_argument(
        "--scale", type=float, default=0.5, help="workload scale for --workload"
    )
    bench_serve.add_argument(
        "--snapshot-format",
        choices=("v2", "v3"),
        default="v3",
        dest="snapshot_format",
        help="sharded snapshot format for the scratch snapshot a pooled "
        "--workload run serves from (v3 additionally maps the vocabulary "
        "and graph, minimizing per-worker incremental RSS)",
    )
    bench_serve.add_argument(
        "--tuple",
        action="append",
        default=None,
        help="comma-separated query tuple for the request mix; repeatable",
    )
    bench_serve.add_argument("--k", type=int, default=10)
    bench_serve.add_argument("--requests", type=int, default=200)
    bench_serve.add_argument("--concurrency", type=int, default=8)
    bench_serve.add_argument(
        "--arrival",
        choices=("closed", "open"),
        default="closed",
        help="closed: workers issue the next request when the previous "
        "answer lands (capacity); open: fixed-rate dispatch regardless of "
        "completions (overload/shedding behavior)",
    )
    bench_serve.add_argument(
        "--rate",
        type=float,
        default=None,
        help="offered load in requests/second for --arrival open",
    )
    bench_serve.add_argument(
        "--warmup", type=int, default=20, help="unmeasured warm-up requests"
    )
    bench_serve.add_argument(
        "--json", default=None, help="write the JSON report to this path"
    )
    bench_serve.set_defaults(func=_cmd_bench_serve)

    ingest = subparsers.add_parser(
        "ingest",
        help="push a triple file into a running server via POST /admin/ingest",
    )
    ingest.add_argument("triples", help="path to a TSV or NT triple file")
    ingest.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="base URL of the running gqbe serve instance",
    )
    ingest.add_argument(
        "--api-key",
        default=None,
        dest="api_key",
        help="API key to send as Authorization: Bearer <key>",
    )
    ingest.add_argument(
        "--batch-size",
        type=int,
        default=1000,
        dest="batch_size",
        help="triples per /admin/ingest request",
    )
    ingest.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="per-request HTTP timeout in seconds",
    )
    ingest.add_argument(
        "--compact",
        action="store_true",
        help="POST /admin/compact after the last batch, folding the delta "
        "into a fresh on-disk snapshot generation",
    )
    ingest.set_defaults(func=_cmd_ingest)

    generate = subparsers.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("dataset", choices=("freebase", "dbpedia"))
    generate.add_argument("output", help="output TSV path")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--scale", type=float, default=1.0)
    generate.set_defaults(func=_cmd_generate)

    experiment = subparsers.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument("name", choices=_EXPERIMENTS)
    experiment.add_argument("--scale", type=float, default=0.5)
    experiment.set_defaults(func=_cmd_experiment)

    check = subparsers.add_parser(
        "check",
        help="run the gqbecheck static invariant analyzers",
        description=(
            "Run tools.gqbecheck (determinism, mapped-memory, concurrency, "
            "exception-discipline and config/doc analyzers) over the repo. "
            "All arguments are forwarded; see `gqbe check -- --help`."
        ),
    )
    check.add_argument(
        "check_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to python -m tools.gqbecheck",
    )
    check.set_defaults(func=_cmd_check)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    arg_list = list(argv) if argv is not None else sys.argv[1:]
    if arg_list and arg_list[0] == "check":
        # argparse.REMAINDER cannot capture leading option-style
        # arguments (`gqbe check --list-rules`), so the check
        # subcommand forwards its argv verbatim.  The subparser stays
        # registered above purely so `gqbe --help` documents it.
        return _run_check(arg_list[1:])
    parser = build_parser()
    args = parser.parse_args(arg_list)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
