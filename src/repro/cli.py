"""Command-line interface: ``gqbe`` — query, generate and benchmark.

Subcommands
-----------
``gqbe query``
    Load a triple file (or a prebuilt index snapshot via ``--snapshot``),
    run a query tuple and print the ranked answers.
``gqbe build-index``
    Run the offline build for a triple file and save it as an index
    snapshot for instant warm starts.
``gqbe generate``
    Generate a synthetic Freebase-like or DBpedia-like dataset to a TSV file.
``gqbe experiment``
    Run one of the paper's experiments (fig13, table3, table4, ...) and
    print its table.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.datasets.synthetic import DBpediaLikeGenerator, FreebaseLikeGenerator
from repro.evaluation.harness import ExperimentHarness, HarnessConfig
from repro.evaluation.reporting import format_answer_list, format_table
from repro.graph.triples import load_graph, write_triples
from repro.storage.snapshot import GraphStore


def _cmd_query(args: argparse.Namespace) -> int:
    if args.snapshot is not None:
        if args.graph is not None:
            print(
                "pass either a graph file or --snapshot, not both",
                file=sys.stderr,
            )
            return 2
        graph_store = GraphStore.load(args.snapshot)
        config = GQBEConfig(
            d=args.d,
            mqg_size=args.mqg_size,
            intern_entities=graph_store.intern_entities,
            columnar=graph_store.columnar,
        )
        system = GQBE(config=config, graph_store=graph_store)
    elif args.graph is not None:
        config = GQBEConfig(d=args.d, mqg_size=args.mqg_size)
        system = GQBE(load_graph(args.graph), config=config)
    else:
        print("pass a graph file or --snapshot", file=sys.stderr)
        return 2
    tuples = [tuple(t.split(",")) for t in args.tuple]
    if len(tuples) == 1:
        result = system.query(tuples[0], k=args.k)
    else:
        result = system.query_multi(tuples, k=args.k)
    rows = [
        {
            "rank": answer.rank,
            "answer": answer.entities,
            "score": answer.score,
        }
        for answer in result.answers
    ]
    print(format_table(rows, title=f"Top-{args.k} answers"))
    print(
        f"\nMQG edges: {result.mqg.num_edges}  "
        f"lattice nodes evaluated: {result.statistics.nodes_evaluated}  "
        f"total time: {result.total_seconds:.3f}s"
    )
    return 0


def _cmd_build_index(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    graph = load_graph(args.graph)
    load_seconds = time.perf_counter() - started

    started = time.perf_counter()
    graph_store = GraphStore.build(graph, columnar=not args.rows)
    build_seconds = time.perf_counter() - started

    started = time.perf_counter()
    size = graph_store.save(args.output)
    save_seconds = time.perf_counter() - started
    print(
        f"indexed {graph.num_edges} edges ({graph.num_nodes} nodes, "
        f"{graph.num_labels} labels) to {args.output} ({size} bytes)\n"
        f"load {load_seconds:.3f}s  build {build_seconds:.3f}s  "
        f"save {save_seconds:.3f}s"
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "freebase":
        generator = FreebaseLikeGenerator(seed=args.seed, scale=args.scale)
    else:
        generator = DBpediaLikeGenerator(seed=args.seed, scale=args.scale)
    dataset = generator.generate()
    count = write_triples(sorted(dataset.graph.edges), args.output)
    print(
        f"wrote {count} triples ({dataset.graph.num_nodes} nodes, "
        f"{dataset.graph.num_labels} labels) to {args.output}"
    )
    return 0


_EXPERIMENTS = (
    "table1",
    "table2",
    "fig13",
    "table3",
    "table4",
    "table5",
    "fig14",
    "table6",
)


def _cmd_experiment(args: argparse.Namespace) -> int:
    harness = ExperimentHarness(HarnessConfig(scale=args.scale))
    name = args.name
    if name == "table1":
        print(format_table(harness.table1_workload_summary(), title="Table I"))
    elif name == "table2":
        for query_id, answers in harness.table2_case_study().items():
            print(format_answer_list(query_id, answers))
    elif name == "fig13":
        print(format_table(harness.figure13_accuracy(), title="Figure 13"))
    elif name == "table3":
        print(format_table(harness.table3_dbpedia_accuracy(), title="Table III"))
    elif name == "table4":
        print(format_table(harness.table4_user_study(), title="Table IV"))
    elif name == "table5":
        print(format_table(harness.table5_multi_tuple(), title="Table V"))
    elif name == "fig14":
        print(format_table(harness.figure14_15_efficiency(), title="Figures 14-15"))
    elif name == "table6":
        print(
            format_table(
                harness.table6_fig16_multituple_efficiency(),
                title="Table VI / Figure 16",
            )
        )
    else:
        print(f"unknown experiment {name!r}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="gqbe", description="Query knowledge graphs by example entity tuples."
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query = subparsers.add_parser("query", help="run a query over a triple file")
    query.add_argument(
        "graph", nargs="?", default=None, help="path to a TSV or NT triple file"
    )
    query.add_argument(
        "--snapshot",
        default=None,
        help="warm-start from an index snapshot built with `gqbe build-index` "
        "instead of loading and indexing a triple file",
    )
    query.add_argument(
        "--tuple",
        action="append",
        required=True,
        help="comma-separated entity tuple; repeat for multi-tuple queries",
    )
    query.add_argument("--k", type=int, default=10)
    query.add_argument("--d", type=int, default=2)
    query.add_argument("--mqg-size", type=int, default=15, dest="mqg_size")
    query.set_defaults(func=_cmd_query)

    build_index = subparsers.add_parser(
        "build-index",
        help="run the offline build once and save it as an index snapshot",
    )
    build_index.add_argument("graph", help="path to a TSV or NT triple file")
    build_index.add_argument("output", help="output snapshot path")
    build_index.add_argument(
        "--rows",
        action="store_true",
        help="build tuple-row tables (the reference engine) instead of columnar",
    )
    build_index.set_defaults(func=_cmd_build_index)

    generate = subparsers.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("dataset", choices=("freebase", "dbpedia"))
    generate.add_argument("output", help="output TSV path")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--scale", type=float, default=1.0)
    generate.set_defaults(func=_cmd_generate)

    experiment = subparsers.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument("name", choices=_EXPERIMENTS)
    experiment.add_argument("--scale", type=float, default=0.5)
    experiment.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
