"""Adapted NESS baseline: neighborhood-based approximate graph matching.

The paper compares GQBE against NESS (Khan et al., SIGMOD'11) by feeding it
the MQG discovered by GQBE as a query graph whose query-entity nodes are
unlabeled.  Sec. VI describes the adaptation used; this module implements
that description:

1. **Candidate generation** — for every unlabeled query node, the candidate
   data nodes are those with at least one incident edge bearing the same
   label (and orientation) as an edge incident on the query node in the MQG.
2. **Candidate scoring** — a candidate is scored by how well its
   neighborhood label-frequency vector covers the query node's neighborhood
   vector, and the score is refined iteratively by requiring the
   candidate's neighbors to support the query node's neighbors (a
   lightweight stand-in for NESS's neighborhood-vector propagation).
3. **Tuple assembly** — one unlabeled query node is chosen as the *pivot*
   (the one with the fewest candidates).  Top candidates of the other
   unlabeled nodes are combined with each pivot candidate if they lie within
   the pivot candidate's neighborhood, and the tuples are ranked by the sum
   of candidate scores.

Unlike GQBE, NESS gives equal importance to all nodes and edges (except the
pivot) and does not require answer entities to be connected by the same
paths between query entities — which is exactly why it is less accurate on
this task (the finding Fig. 13 reports).
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.discovery.mqg import MaximalQueryGraph
from repro.graph.knowledge_graph import KnowledgeGraph


@dataclass(frozen=True)
class NESSAnswer:
    """One answer tuple produced by the NESS baseline."""

    entities: tuple[str, ...]
    score: float


@dataclass
class NESSStatistics:
    """Counters describing one NESS query run."""

    candidates_considered: int = 0
    pivot: str = ""
    elapsed_seconds: float = 0.0


@dataclass
class NESSResult:
    """Ranked NESS answers plus run statistics."""

    answers: list[NESSAnswer]
    statistics: NESSStatistics = field(default_factory=NESSStatistics)

    def answer_tuples(self) -> list[tuple[str, ...]]:
        """Just the entity tuples, in rank order."""
        return [answer.entities for answer in self.answers]


#: Feature of a neighborhood vector: (direction, label) with direction
#: "out" for outgoing and "in" for incoming edges.
_Feature = tuple[str, str]


class NESSMatcher:
    """Approximate matcher for MQGs with unlabeled query-entity nodes."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        iterations: int = 2,
        max_candidates_per_node: int = 2000,
        assembly_breadth: int = 200,
        neighborhood_radius: int = 2,
    ) -> None:
        self.graph = graph
        self.iterations = iterations
        self.max_candidates_per_node = max_candidates_per_node
        self.assembly_breadth = assembly_breadth
        self.neighborhood_radius = neighborhood_radius
        # label -> nodes with an outgoing / incoming edge of that label
        self._nodes_with_out_label: dict[str, set[str]] = {}
        self._nodes_with_in_label: dict[str, set[str]] = {}
        for edge in graph.edges:
            self._nodes_with_out_label.setdefault(edge.label, set()).add(edge.subject)
            self._nodes_with_in_label.setdefault(edge.label, set()).add(edge.object)

    # ------------------------------------------------------------------
    # neighborhood vectors
    # ------------------------------------------------------------------
    @staticmethod
    def _vector_of(graph: KnowledgeGraph, node: str) -> dict[_Feature, int]:
        vector: dict[_Feature, int] = {}
        for edge in graph.out_edges(node):
            key = ("out", edge.label)
            vector[key] = vector.get(key, 0) + 1
        for edge in graph.in_edges(node):
            key = ("in", edge.label)
            vector[key] = vector.get(key, 0) + 1
        return vector

    @staticmethod
    def _coverage(query_vector: dict[_Feature, int], data_vector: dict[_Feature, int]) -> float:
        """Fraction of the query node's neighborhood features matched."""
        total = sum(query_vector.values())
        if total == 0:
            return 0.0
        covered = sum(
            min(count, data_vector.get(feature, 0))
            for feature, count in query_vector.items()
        )
        return covered / total

    # ------------------------------------------------------------------
    # candidates
    # ------------------------------------------------------------------
    def _candidates_for(self, mqg: MaximalQueryGraph, node: str) -> dict[str, float]:
        query_vector = self._vector_of(mqg.graph, node)
        pool: set[str] = set()
        for (direction, label), _count in query_vector.items():
            if direction == "out":
                pool |= self._nodes_with_out_label.get(label, set())
            else:
                pool |= self._nodes_with_in_label.get(label, set())
        scored = {
            candidate: self._coverage(query_vector, self._vector_of(self.graph, candidate))
            for candidate in pool
        }
        scored = {c: s for c, s in scored.items() if s > 0.0}
        if len(scored) > self.max_candidates_per_node:
            top = sorted(scored.items(), key=lambda item: -item[1])[
                : self.max_candidates_per_node
            ]
            scored = dict(top)
        return scored

    def _refine(
        self,
        mqg: MaximalQueryGraph,
        candidates: dict[str, dict[str, float]],
    ) -> dict[str, dict[str, float]]:
        """Iterative refinement: neighbors of a candidate must support the
        query node's neighbors (both query entities and labeled nodes)."""
        query_nodes = list(candidates)
        for _ in range(self.iterations):
            updated: dict[str, dict[str, float]] = {}
            for query_node in query_nodes:
                neighbor_query_nodes = mqg.graph.neighbors(query_node)
                refined: dict[str, float] = {}
                for candidate, score in candidates[query_node].items():
                    if not neighbor_query_nodes:
                        refined[candidate] = score
                        continue
                    candidate_neighbors = self.graph.neighbors(candidate)
                    supported = 0
                    for neighbor in neighbor_query_nodes:
                        if neighbor in candidates:
                            # unlabeled neighbor: any of its candidates will do
                            if candidate_neighbors & set(candidates[neighbor]):
                                supported += 1
                        else:
                            # labeled neighbor: the identical entity must be adjacent
                            if neighbor in candidate_neighbors:
                                supported += 1
                    support_fraction = supported / len(neighbor_query_nodes)
                    refined[candidate] = score * (0.5 + 0.5 * support_fraction)
                updated[query_node] = refined
            candidates = updated
        return candidates

    # ------------------------------------------------------------------
    # query
    # ------------------------------------------------------------------
    def query(
        self,
        mqg: MaximalQueryGraph,
        k: int = 10,
        excluded_tuples: Iterable[tuple[str, ...]] = (),
    ) -> NESSResult:
        """Answer the MQG with unlabeled query-entity nodes; return top-k tuples."""
        start = time.perf_counter()
        excluded = {tuple(t) for t in excluded_tuples}
        stats = NESSStatistics()

        query_nodes = [node for node in mqg.query_tuple if mqg.graph.has_node(node)]
        candidates = {node: self._candidates_for(mqg, node) for node in query_nodes}
        candidates = self._refine(mqg, candidates)
        stats.candidates_considered = sum(len(c) for c in candidates.values())

        if not query_nodes or any(not candidates[node] for node in query_nodes):
            stats.elapsed_seconds = time.perf_counter() - start
            return NESSResult(answers=[], statistics=stats)

        pivot = min(query_nodes, key=lambda node: len(candidates[node]))
        stats.pivot = pivot
        others = [node for node in query_nodes if node != pivot]

        pivot_ranked = sorted(candidates[pivot].items(), key=lambda item: -item[1])[
            : self.assembly_breadth
        ]

        answers: dict[tuple[str, ...], float] = {}
        for pivot_candidate, pivot_score in pivot_ranked:
            neighborhood = set(
                self.graph.undirected_distances(
                    pivot_candidate, cutoff=self.neighborhood_radius
                )
            )
            assignment: dict[str, tuple[str, float]] = {pivot: (pivot_candidate, pivot_score)}
            feasible = True
            for node in others:
                in_range = [
                    (candidate, score)
                    for candidate, score in candidates[node].items()
                    if candidate in neighborhood and candidate != pivot_candidate
                ]
                if not in_range:
                    feasible = False
                    break
                assignment[node] = max(in_range, key=lambda item: item[1])
            if not feasible:
                continue
            tuple_entities = tuple(
                assignment[node][0] for node in mqg.query_tuple if node in assignment
            )
            if len(tuple_entities) != len(mqg.query_tuple) or tuple_entities in excluded:
                continue
            if len(set(tuple_entities)) != len(tuple_entities):
                continue
            score = sum(value for _, value in assignment.values())
            if tuple_entities not in answers or score > answers[tuple_entities]:
                answers[tuple_entities] = score

        ranked = sorted(answers.items(), key=lambda item: (-item[1], item[0]))[:k]
        stats.elapsed_seconds = time.perf_counter() - start
        return NESSResult(
            answers=[NESSAnswer(entities=entities, score=score) for entities, score in ranked],
            statistics=stats,
        )
