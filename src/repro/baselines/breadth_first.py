"""The paper's *Baseline*: breadth-first lattice evaluation (Sec. VI).

Like GQBE's best-first algorithm, the baseline explores the query lattice
bottom-up starting from the minimal query trees and prunes the ancestors of
null nodes (Property 3).  Unlike GQBE it:

* evaluates lattice nodes in breadth-first order (by number of edges)
  instead of by upper-bound score, and
* has no top-k early termination — it stops only when every lattice node is
  either evaluated or pruned.

The number of lattice nodes it evaluates is the quantity compared against
GQBE in Fig. 15 of the paper.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Iterable

from repro.exceptions import LatticeError
from repro.lattice.exploration import (
    CONTENT,
    FULL,
    MASK,
    STRUCTURE,
    AnswerAccumulator,
    ExplorationResult,
    ExplorationStatistics,
    LatticeNodeEvaluator,
    RankedAnswer,
    drop_trivial_self_match,
)
from repro.lattice.minimal_trees import minimal_query_trees
from repro.lattice.query_graph import LatticeSpace
from repro.storage.join import Relation
from repro.storage.store import VerticalPartitionStore


class BreadthFirstExplorer(LatticeNodeEvaluator):
    """Exhaustive breadth-first lattice evaluation with null-ancestor pruning."""

    def __init__(
        self,
        space: LatticeSpace,
        store: VerticalPartitionStore,
        k: int = 10,
        excluded_tuples: Iterable[tuple[str, ...]] = (),
        max_rows: int | None = None,
        node_budget: int | None = None,
    ) -> None:
        if k < 1:
            raise LatticeError(f"k must be positive, got {k}")
        self.space = space
        self.store = store
        self.k = k
        self.max_rows = max_rows
        self.node_budget = node_budget

        self._evaluated: dict[int, Relation] = {}
        self._null_masks: list[int] = []
        self._answers = AnswerAccumulator(space, store, excluded_tuples)
        self._stats = ExplorationStatistics()

    def run(self) -> ExplorationResult:
        """Evaluate every unpruned lattice node, breadth-first, and rank answers."""
        start = time.perf_counter()
        leaves = self.space.minimal_trees_cache
        if leaves is None:
            leaves = minimal_query_trees(self.space)
            self.space.minimal_trees_cache = leaves
        if not leaves:
            raise LatticeError("the query lattice has no minimal query trees")

        queue: deque[int] = deque(sorted(leaves))
        enqueued: set[int] = set(queue)

        while queue:
            if self.node_budget is not None and self._stats.nodes_evaluated >= self.node_budget:
                self._stats.node_budget_exhausted = True
                break
            mask = queue.popleft()
            if mask in self._evaluated or self._is_pruned(mask):
                continue
            relation = self._evaluate_mask(mask)
            self._stats.nodes_evaluated += 1
            if relation is None:
                self._stats.nodes_skipped += 1
                continue
            identity_info = self._answers.identity_info(relation.variables)
            effective = drop_trivial_self_match(relation, identity_info[0])
            if effective.is_empty():
                self._stats.null_nodes += 1
                self._add_null_mask(mask)
                continue
            self._evaluated[mask] = relation
            self._answers.record(mask, effective, identity_info=identity_info)
            for parent in self.space.parents_of(mask):
                if parent not in enqueued and not self._is_pruned(parent):
                    enqueued.add(parent)
                    queue.append(parent)

        self._stats.answers_found = len(self._answers)
        self._stats.elapsed_seconds = time.perf_counter() - start
        return ExplorationResult(
            answers=self._final_ranking(),
            statistics=self._stats,
            lattice_size_hint=2 ** self.space.num_edges,
        )

    def _final_ranking(self) -> list[RankedAnswer]:
        ranked = sorted(
            self._answers.decoded_items(),
            key=lambda item: (-item[1][FULL], item[0]),
        )[: self.k]
        return [
            RankedAnswer(
                entities=answer,
                score=record[FULL],
                structure_score=record[STRUCTURE],
                content_score=record[CONTENT],
                query_graph_mask=record[MASK],
            )
            for answer, record in ranked
        ]
