"""The paper's *Baseline*: breadth-first lattice evaluation (Sec. VI).

Like GQBE's best-first algorithm, the baseline explores the query lattice
bottom-up starting from the minimal query trees and prunes the ancestors of
null nodes (Property 3).  Unlike GQBE it:

* evaluates lattice nodes in breadth-first order (by number of edges)
  instead of by upper-bound score, and
* has no top-k early termination — it stops only when every lattice node is
  either evaluated or pruned.

The number of lattice nodes it evaluates is the quantity compared against
GQBE in Fig. 15 of the paper.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Iterable

from repro.exceptions import LatticeError
from repro.lattice.exploration import (
    ExplorationResult,
    ExplorationStatistics,
    RankedAnswer,
    _AnswerRecord,
    drop_trivial_self_match,
)
from repro.lattice.minimal_trees import minimal_query_trees
from repro.lattice.query_graph import LatticeSpace
from repro.lattice.scoring import content_score, structure_score
from repro.storage.join import Relation, evaluate_query_edges, extend_with_edge
from repro.storage.store import VerticalPartitionStore


class BreadthFirstExplorer:
    """Exhaustive breadth-first lattice evaluation with null-ancestor pruning."""

    def __init__(
        self,
        space: LatticeSpace,
        store: VerticalPartitionStore,
        k: int = 10,
        excluded_tuples: Iterable[tuple[str, ...]] = (),
        max_rows: int | None = None,
        node_budget: int | None = None,
    ) -> None:
        if k < 1:
            raise LatticeError(f"k must be positive, got {k}")
        self.space = space
        self.store = store
        self.k = k
        self.excluded_tuples = {tuple(t) for t in excluded_tuples}
        self.max_rows = max_rows
        self.node_budget = node_budget

        self._evaluated: dict[int, Relation] = {}
        self._null_masks: list[int] = []
        self._answers: dict[tuple[str, ...], _AnswerRecord] = {}
        self._stats = ExplorationStatistics()

    def _is_pruned(self, mask: int) -> bool:
        return any((mask & null) == null for null in self._null_masks)

    def _evaluate_mask(self, mask: int) -> Relation | None:
        best_child: tuple[int, int] | None = None
        for i in range(self.space.num_edges):
            bit = 1 << i
            if not mask & bit:
                continue
            child = mask & ~bit
            if child not in self._evaluated:
                continue
            child_relation = self._evaluated[child]
            if child_relation.is_empty():
                continue
            edge = self.space.edge_list[i]
            if child_relation.has_variable(edge.subject) or child_relation.has_variable(
                edge.object
            ):
                if best_child is None or child_relation.num_rows < best_child[0]:
                    best_child = (child_relation.num_rows, i)
        try:
            if best_child is not None:
                i = best_child[1]
                return extend_with_edge(
                    self.store,
                    self._evaluated[mask & ~(1 << i)],
                    self.space.edge_list[i],
                    max_rows=self.max_rows,
                )
            return evaluate_query_edges(
                self.store, self.space.edges_of(mask), max_rows=self.max_rows
            )
        except LatticeError:
            return None

    def _record_answers(self, mask: int, relation: Relation) -> None:
        entities = self.space.query_tuple
        try:
            entity_columns = [relation.column(entity) for entity in entities]
        except KeyError:
            return
        mask_structure = structure_score(self.space, mask)
        edges = self.space.edges_of(mask)
        variables = relation.variables
        for row in relation.rows:
            answer = tuple(row[col] for col in entity_columns)
            if answer in self.excluded_tuples:
                continue
            matched = {
                variables[i] for i, value in enumerate(row) if value == variables[i]
            }
            content = (
                content_score(self.space, edges, dict(zip(variables, row)))
                if matched
                else 0.0
            )
            record = self._answers.get(answer)
            if record is None:
                record = _AnswerRecord()
                self._answers[answer] = record
            record.update(mask_structure, content, mask)

    def run(self) -> ExplorationResult:
        """Evaluate every unpruned lattice node, breadth-first, and rank answers."""
        start = time.perf_counter()
        leaves = minimal_query_trees(self.space)
        if not leaves:
            raise LatticeError("the query lattice has no minimal query trees")

        queue: deque[int] = deque(sorted(leaves))
        enqueued: set[int] = set(queue)

        while queue:
            if self.node_budget is not None and self._stats.nodes_evaluated >= self.node_budget:
                self._stats.node_budget_exhausted = True
                break
            mask = queue.popleft()
            if mask in self._evaluated or self._is_pruned(mask):
                continue
            relation = self._evaluate_mask(mask)
            self._stats.nodes_evaluated += 1
            if relation is None:
                self._stats.nodes_skipped += 1
                continue
            effective = drop_trivial_self_match(relation)
            if effective.is_empty():
                self._stats.null_nodes += 1
                self._null_masks.append(mask)
                continue
            self._evaluated[mask] = relation
            self._record_answers(mask, effective)
            for parent in self.space.parents_of(mask):
                if parent not in enqueued and not self._is_pruned(parent):
                    enqueued.add(parent)
                    queue.append(parent)

        self._stats.answers_found = len(self._answers)
        self._stats.elapsed_seconds = time.perf_counter() - start
        return ExplorationResult(
            answers=self._final_ranking(),
            statistics=self._stats,
            lattice_size_hint=2 ** self.space.num_edges,
        )

    def _final_ranking(self) -> list[RankedAnswer]:
        ranked = sorted(
            self._answers.items(), key=lambda item: (-item[1].best_full, item[0])
        )[: self.k]
        return [
            RankedAnswer(
                entities=answer,
                score=record.best_full,
                structure_score=record.best_structure,
                content_score=record.best_content,
                query_graph_mask=record.best_mask,
            )
            for answer, record in ranked
        ]
