"""Comparison methods used in the paper's evaluation (Sec. VI).

* :mod:`repro.baselines.breadth_first` — the *Baseline*: the same query
  lattice and hash-join evaluation as GQBE, but explored breadth-first with
  no upper-bound ordering and no top-k early termination; only the
  upward-closure pruning of null-node ancestors is applied.
* :mod:`repro.baselines.ness` — an adaptation of NESS (neighborhood-based
  approximate graph matching): candidate nodes filtered by incident edge
  labels, scored by neighborhood label-vector similarity with iterative
  refinement, and assembled into tuples around a pivot query node.
"""

from repro.baselines.breadth_first import BreadthFirstExplorer
from repro.baselines.ness import NESSMatcher, NESSResult

__all__ = ["BreadthFirstExplorer", "NESSMatcher", "NESSResult"]
