"""The GQBE system facade: query a knowledge graph by example entity tuples.

:class:`GQBE` wires the pipeline of the paper together:

1. offline precomputation — graph statistics (Sec. III-B) and the
   vertical-partition store (Sec. V-A) are built once per data graph;
2. per query — neighborhood extraction (Def. 1), unimportant-edge
   reduction (Sec. III-C), MQG discovery (Alg. 1), optional multi-tuple
   merging (Sec. III-D), lattice construction (Sec. IV) and best-first
   exploration (Alg. 2/3), followed by the two-stage ranking (Sec. V-B).
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.core.answer import AnswerTuple, QueryResult
from repro.core.config import GQBEConfig
from repro.discovery.merge import merge_maximal_query_graphs
from repro.discovery.mqg import MaximalQueryGraph, discover_maximal_query_graph
from repro.exceptions import QueryError
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.neighborhood import neighborhood_graph
from repro.graph.statistics import GraphStatistics
from repro.lattice.exploration import BestFirstExplorer, ExplorationResult
from repro.lattice.query_graph import LatticeSpace
from repro.storage.store import VerticalPartitionStore
from repro.storage.vocabulary import IdentityVocabulary


class GQBE:
    """Query-by-example over a knowledge graph (the system of the paper)."""

    def __init__(self, graph: KnowledgeGraph, config: GQBEConfig | None = None) -> None:
        self.graph = graph
        self.config = config or GQBEConfig()
        #: Offline, query-independent statistics (ief / participation degree).
        self.statistics = GraphStatistics(graph)
        #: The in-memory vertical-partition store used by the join engine.
        #: Entities are interned to dense int ids at build time (and decoded
        #: back to strings only when answers are materialized) unless the
        #: config selects the string-path reference engine.
        self.store = VerticalPartitionStore(
            graph,
            vocabulary=None if self.config.intern_entities else IdentityVocabulary(),
        )
        #: Recently built lattice spaces, keyed by the identity of their
        #: MQG.  A LatticeSpace is a pure function of its MQG and carries
        #: warm memos (structure scores, minimal trees), so repeated
        #: explorations of the same MQG skip the rebuild.  Values hold a
        #: strong reference to the MQG, which keeps the ``id()`` key valid.
        self._space_cache: dict[int, tuple[MaximalQueryGraph, LatticeSpace]] = {}

    # ------------------------------------------------------------------
    # query graph discovery
    # ------------------------------------------------------------------
    def discover_query_graph(self, query_tuple: Sequence[str]) -> MaximalQueryGraph:
        """Discover the maximal query graph of one example tuple."""
        neighborhood = neighborhood_graph(self.graph, query_tuple, d=self.config.d)
        return discover_maximal_query_graph(
            neighborhood,
            self.statistics,
            r=self.config.mqg_size,
            reduce_first=self.config.reduce_neighborhood,
        )

    def discover_merged_query_graph(
        self, query_tuples: Sequence[Sequence[str]]
    ) -> tuple[MaximalQueryGraph, list[MaximalQueryGraph], list[float], float]:
        """Discover per-tuple MQGs and merge them (Sec. III-D).

        Returns ``(merged_mqg, per_tuple_mqgs, per_tuple_seconds, merge_seconds)``.
        """
        per_tuple_mqgs: list[MaximalQueryGraph] = []
        per_tuple_seconds: list[float] = []
        for query_tuple in query_tuples:
            started = time.perf_counter()
            per_tuple_mqgs.append(self.discover_query_graph(query_tuple))
            per_tuple_seconds.append(time.perf_counter() - started)
        started = time.perf_counter()
        merged = merge_maximal_query_graphs(per_tuple_mqgs, r=self.config.mqg_size)
        merge_seconds = time.perf_counter() - started
        return merged, per_tuple_mqgs, per_tuple_seconds, merge_seconds

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def explore_mqg(
        self,
        mqg: MaximalQueryGraph,
        k: int = 10,
        excluded_tuples: set[tuple[str, ...]] = frozenset(),
        k_prime: int | None = None,
    ) -> ExplorationResult:
        """Run the best-first lattice exploration over an existing MQG.

        Lets callers that cache or share discovered MQGs (e.g. the
        experiment harness, which feeds the same MQG to every compared
        system) skip re-discovery and pay only for query processing.
        """
        entry = self._space_cache.get(id(mqg))
        if entry is not None and entry[0] is mqg:
            space = entry[1]
        else:
            space = LatticeSpace(mqg)
            if len(self._space_cache) >= 16:
                self._space_cache.pop(next(iter(self._space_cache)))
            self._space_cache[id(mqg)] = (mqg, space)
        explorer = BestFirstExplorer(
            space,
            self.store,
            k=k,
            k_prime=k_prime if k_prime is not None else self.config.k_prime,
            excluded_tuples=excluded_tuples,
            max_rows=self.config.max_join_rows,
            node_budget=self.config.node_budget,
        )
        return explorer.run()

    @staticmethod
    def _to_answer_tuples(result: ExplorationResult) -> list[AnswerTuple]:
        return [
            AnswerTuple(
                entities=answer.entities,
                score=answer.score,
                structure_score=answer.structure_score,
                content_score=answer.content_score,
                rank=rank,
            )
            for rank, answer in enumerate(result.answers, start=1)
        ]

    def query(
        self, query_tuple: Sequence[str], k: int = 10, k_prime: int | None = None
    ) -> QueryResult:
        """Answer a single-tuple query: the top-k most similar entity tuples.

        ``k_prime`` overrides the configured stage-one oversampling for this
        query only (the efficiency experiments use ``k_prime = k``).
        """
        entities = tuple(query_tuple)
        if not entities:
            raise QueryError("query tuples must contain at least one entity")

        started = time.perf_counter()
        mqg = self.discover_query_graph(entities)
        discovery_seconds = time.perf_counter() - started

        started = time.perf_counter()
        exploration = self.explore_mqg(mqg, k, excluded_tuples={entities}, k_prime=k_prime)
        processing_seconds = time.perf_counter() - started

        return QueryResult(
            query_tuples=(entities,),
            answers=self._to_answer_tuples(exploration),
            mqg=mqg,
            statistics=exploration.statistics,
            discovery_seconds=discovery_seconds,
            processing_seconds=processing_seconds,
            per_tuple_discovery_seconds=[discovery_seconds],
            merge_seconds=0.0,
        )

    def query_multi(
        self,
        query_tuples: Sequence[Sequence[str]],
        k: int = 10,
        k_prime: int | None = None,
    ) -> QueryResult:
        """Answer a multi-tuple query using the merged MQG (Sec. III-D)."""
        tuples = tuple(tuple(t) for t in query_tuples)
        if not tuples:
            raise QueryError("multi-tuple queries need at least one example tuple")
        if len({len(t) for t in tuples}) != 1:
            raise QueryError("all example tuples must have the same number of entities")
        if len(tuples) == 1:
            return self.query(tuples[0], k=k, k_prime=k_prime)

        started = time.perf_counter()
        merged, _per_tuple, per_tuple_seconds, merge_seconds = (
            self.discover_merged_query_graph(tuples)
        )
        discovery_seconds = time.perf_counter() - started

        started = time.perf_counter()
        exploration = self.explore_mqg(
            merged, k, excluded_tuples=set(tuples), k_prime=k_prime
        )
        processing_seconds = time.perf_counter() - started

        return QueryResult(
            query_tuples=tuples,
            answers=self._to_answer_tuples(exploration),
            mqg=merged,
            statistics=exploration.statistics,
            discovery_seconds=discovery_seconds,
            processing_seconds=processing_seconds,
            per_tuple_discovery_seconds=per_tuple_seconds,
            merge_seconds=merge_seconds,
        )
