"""The GQBE system facade: query a knowledge graph by example entity tuples.

:class:`GQBE` wires the pipeline of the paper together:

1. offline precomputation — graph statistics (Sec. III-B) and the
   vertical-partition store (Sec. V-A) are built once per data graph, or
   loaded in one step from an index snapshot
   (:class:`~repro.storage.snapshot.GraphStore`, see
   :meth:`GQBE.from_snapshot`);
2. per query — neighborhood extraction (Def. 1), unimportant-edge
   reduction (Sec. III-C), MQG discovery (Alg. 1), optional multi-tuple
   merging (Sec. III-D), lattice construction (Sec. IV) and best-first
   exploration (Alg. 2/3), followed by the two-stage ranking (Sec. V-B).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence
from dataclasses import replace
from os import PathLike

from repro import _kernels
from repro.core.answer import AnswerTuple, QueryResult
from repro.core.config import GQBEConfig
from repro.discovery.merge import merge_maximal_query_graphs
from repro.discovery.mqg import MaximalQueryGraph, discover_maximal_query_graph
from repro.exceptions import QueryError, SnapshotError
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.neighborhood import neighborhood_graph
from repro.graph.statistics import GraphStatistics
from repro.lattice.exploration import BestFirstExplorer, ExplorationResult
from repro.lattice.query_graph import LatticeSpace
from repro.storage.batch import JoinMemoArena
from repro.storage.snapshot import GraphStore
from repro.storage.store import VerticalPartitionStore
from repro.storage.vocabulary import IdentityVocabulary


class GQBE:
    """Query-by-example over a knowledge graph (the system of the paper)."""

    def __init__(
        self,
        graph: KnowledgeGraph | None = None,
        config: GQBEConfig | None = None,
        graph_store: GraphStore | None = None,
    ) -> None:
        if (graph is None) == (graph_store is None):
            raise QueryError("pass exactly one of graph or graph_store")
        self.config = config or GQBEConfig()
        # Fail fast on native_kernels="on" without the extension; query
        # entrypoints re-assert the mode so systems with different modes
        # can interleave in one process.
        _kernels.select(self.config.native_kernels)
        #: Where this system was loaded from (set by :meth:`from_snapshot`);
        #: pooled execution hands it to the workers so each opens the same
        #: (ideally memory-mapped v2) snapshot itself.
        self._snapshot_path: str | None = None
        self._pool = None
        self._pool_lock = threading.Lock()
        if graph_store is not None:
            # Warm start: adopt the precomputed offline state.  The engine
            # flags must agree with the config, otherwise queries would run
            # on a different engine than the caller asked for.  (Checked
            # against the snapshot metadata — a lazily loaded bundle stays
            # unmaterialized until the first query touches it.)
            if graph_store.intern_entities != self.config.intern_entities or (
                self.config.intern_entities
                and graph_store.columnar != self.config.columnar
            ):
                raise SnapshotError(
                    "snapshot engine flags (intern_entities="
                    f"{graph_store.intern_entities}, columnar="
                    f"{graph_store.columnar}) do not match the config "
                    f"(intern_entities={self.config.intern_entities}, "
                    f"columnar={self.config.columnar}); rebuild the index "
                    "or adjust the config"
                )
            self._graph_store = graph_store
            graph_store.set_prefetch(self.config.prefetch_shards)
        else:
            # Cold start: run the offline build now.  Entities are interned
            # to dense int ids (and decoded back to strings only when
            # answers are materialized) unless the config selects the
            # string-path reference engine; tables are columnar unless the
            # config selects the tuple-row reference engine.
            self._graph_store = GraphStore(
                graph,
                GraphStatistics(graph),
                VerticalPartitionStore(
                    graph,
                    vocabulary=(
                        None if self.config.intern_entities else IdentityVocabulary()
                    ),
                    columnar=self.config.columnar,
                ),
            )
        #: Recently built lattice spaces, keyed by the identity of their
        #: MQG.  A LatticeSpace is a pure function of its MQG and carries
        #: warm memos (structure scores, minimal trees), so repeated
        #: explorations of the same MQG skip the rebuild.  Values hold a
        #: strong reference to the MQG, which keeps the ``id()`` key valid.
        self._space_cache: dict[int, tuple[MaximalQueryGraph, LatticeSpace]] = {}

    @property
    def graph(self) -> KnowledgeGraph:
        """The data graph (materializes a lazily loaded snapshot section)."""
        return self._graph_store.graph

    @property
    def statistics(self) -> GraphStatistics:
        """Offline, query-independent statistics (ief / participation degree)."""
        return self._graph_store.statistics

    @property
    def store(self) -> VerticalPartitionStore:
        """The in-memory vertical-partition store used by the join engine."""
        return self._graph_store.store

    @property
    def graph_store(self) -> GraphStore:
        """The offline-state bundle (graph + statistics + store)."""
        return self._graph_store

    @classmethod
    def from_snapshot(
        cls, path: str | PathLike, config: GQBEConfig | None = None
    ) -> "GQBE":
        """Warm-start a system from an on-disk index snapshot.

        Loads the :class:`~repro.storage.snapshot.GraphStore` saved by
        ``gqbe build-index`` (or :meth:`GraphStore.save`) and skips the
        entire offline build.  When ``config`` is omitted, a default
        config matching the snapshot's engine flags is used; an explicit
        config must agree with them (see :class:`GQBE`).

        Example::

            from repro import GQBE
            from repro.storage.snapshot import GraphStore

            GraphStore.build(graph).save("data.snap")   # offline, once
            system = GQBE.from_snapshot("data.snap")    # warm start
            result = system.query(("Jerry Yang", "Yahoo!"), k=10)
        """
        graph_store = GraphStore.load(path)
        if config is None:
            config = GQBEConfig(
                intern_entities=graph_store.intern_entities,
                columnar=graph_store.columnar,
            )
        system = cls(config=config, graph_store=graph_store)
        system._snapshot_path = str(path)
        return system

    # ------------------------------------------------------------------
    # query graph discovery
    # ------------------------------------------------------------------
    def discover_query_graph(self, query_tuple: Sequence[str]) -> MaximalQueryGraph:
        """Discover the maximal query graph of one example tuple."""
        _kernels.select(self.config.native_kernels)
        neighborhood = neighborhood_graph(self.graph, query_tuple, d=self.config.d)
        return discover_maximal_query_graph(
            neighborhood,
            self.statistics,
            r=self.config.mqg_size,
            reduce_first=self.config.reduce_neighborhood,
        )

    def discover_merged_query_graph(
        self, query_tuples: Sequence[Sequence[str]]
    ) -> tuple[MaximalQueryGraph, list[MaximalQueryGraph], list[float], float]:
        """Discover per-tuple MQGs and merge them (Sec. III-D).

        Returns ``(merged_mqg, per_tuple_mqgs, per_tuple_seconds, merge_seconds)``.
        """
        per_tuple_mqgs: list[MaximalQueryGraph] = []
        per_tuple_seconds: list[float] = []
        for query_tuple in query_tuples:
            started = time.perf_counter()
            per_tuple_mqgs.append(self.discover_query_graph(query_tuple))
            per_tuple_seconds.append(time.perf_counter() - started)
        started = time.perf_counter()
        merged = merge_maximal_query_graphs(per_tuple_mqgs, r=self.config.mqg_size)
        merge_seconds = time.perf_counter() - started
        return merged, per_tuple_mqgs, per_tuple_seconds, merge_seconds

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def explore_mqg(
        self,
        mqg: MaximalQueryGraph,
        k: int = 10,
        excluded_tuples: set[tuple[str, ...]] = frozenset(),
        k_prime: int | None = None,
        arena: JoinMemoArena | None = None,
    ) -> ExplorationResult:
        """Run the best-first lattice exploration over an existing MQG.

        Lets callers that cache or share discovered MQGs (e.g. the
        experiment harness, which feeds the same MQG to every compared
        system) skip re-discovery and pay only for query processing.
        ``arena`` optionally shares from-scratch join work with other
        explorations of one batch (see :meth:`query_batch`).
        """
        _kernels.select(self.config.native_kernels)
        entry = self._space_cache.get(id(mqg))
        if entry is not None and entry[0] is mqg:
            space = entry[1]
        else:
            space = LatticeSpace(mqg)
            if len(self._space_cache) >= 16:
                self._space_cache.pop(next(iter(self._space_cache)))
            self._space_cache[id(mqg)] = (mqg, space)
        explorer = BestFirstExplorer(
            space,
            self.store,
            k=k,
            k_prime=k_prime if k_prime is not None else self.config.k_prime,
            excluded_tuples=excluded_tuples,
            max_rows=self.config.max_join_rows,
            node_budget=self.config.node_budget,
            arena=arena,
        )
        return explorer.run()

    @staticmethod
    def _to_answer_tuples(result: ExplorationResult) -> list[AnswerTuple]:
        return [
            AnswerTuple(
                entities=answer.entities,
                score=answer.score,
                structure_score=answer.structure_score,
                content_score=answer.content_score,
                rank=rank,
            )
            for rank, answer in enumerate(result.answers, start=1)
        ]

    def query(
        self, query_tuple: Sequence[str], k: int = 10, k_prime: int | None = None
    ) -> QueryResult:
        """Answer a single-tuple query: the top-k most similar entity tuples.

        ``k_prime`` overrides the configured stage-one oversampling for this
        query only (the efficiency experiments use ``k_prime = k``).

        Example::

            from repro import GQBE, GQBEConfig
            from repro.datasets.example_graph import figure1_excerpt

            system = GQBE(figure1_excerpt(), config=GQBEConfig(mqg_size=10))
            result = system.query(("Jerry Yang", "Yahoo!"), k=5)
            for answer in result.answers:
                print(answer.rank, answer.entities, round(answer.score, 3))
        """
        entities = tuple(query_tuple)
        if not entities:
            raise QueryError("query tuples must contain at least one entity")
        return self._query_single(entities, k, k_prime, arena=None)

    def query_batch(
        self,
        query_tuples: Sequence[Sequence[str]],
        k: int = 10,
        k_prime: int | None = None,
    ) -> list[QueryResult]:
        """Answer a batch of single-tuple queries, sharing join work.

        Returns one :class:`~repro.core.answer.QueryResult` per input
        tuple, in input order, with ranked answers **byte-identical** to
        calling :meth:`query` once per tuple (pinned by
        ``tests/test_batch_equivalence.py``).  The batch is cheaper than
        the sequential loop in two exact ways:

        * a batch-scoped :class:`~repro.storage.batch.JoinMemoArena`
          evaluates each shared join-plan prefix once — across the
          lattice nodes of one query *and* across queries whose maximal
          query graphs overlap (MQG nodes are data-graph entities, so
          queries about nearby entities produce literally identical
          edges) — and caches every per-label first-edge table scan;
        * duplicate query tuples are evaluated once and fanned back out
          (the pipeline is deterministic, so a repeat run would return
          the same answers anyway).

        The arena is controlled by ``GQBEConfig.batch_join_memo`` /
        ``batch_memo_max_rows`` and is discarded when the call returns.
        The serving layer (:mod:`repro.serving`) builds its request
        batches on top of this method.

        Example::

            results = system.query_batch(
                [("Jerry Yang", "Yahoo!"), ("Bill Gates", "Microsoft")], k=5
            )
            assert [r.query_tuples[0] for r in results] == [
                ("Jerry Yang", "Yahoo!"), ("Bill Gates", "Microsoft")
            ]
        """
        tuples = [tuple(t) for t in query_tuples]
        for entities in tuples:
            if not entities:
                raise QueryError("query tuples must contain at least one entity")
        if not tuples:
            return []
        if self.config.execution == "pool" and len(tuples) > 1:
            return self.worker_pool().query_batch(tuples, k=k, k_prime=k_prime)
        return self._query_batch_inline(tuples, k, k_prime)

    def _query_batch_inline(
        self,
        tuples: list[tuple[str, ...]],
        k: int,
        k_prime: int | None,
    ) -> list[QueryResult]:
        """The in-process batch path (what pool workers run per chunk)."""
        arena = (
            JoinMemoArena(
                max_rows=self.config.max_join_rows,
                cache_row_cap=self.config.batch_memo_max_rows,
            )
            if self.config.batch_join_memo
            else None
        )
        first_runs: dict[tuple[str, ...], QueryResult] = {}
        results: list[QueryResult] = []
        for entities in tuples:
            result = first_runs.get(entities)
            if result is None:
                result = self._query_single(entities, k, k_prime, arena=arena)
                first_runs[entities] = result
            else:
                # Deterministic pipeline: a re-run would reproduce these
                # answers, so duplicates share them — fresh result and
                # statistics objects (both mutable), same ranked answers.
                result = replace(
                    result,
                    answers=list(result.answers),
                    statistics=replace(result.statistics),
                    per_tuple_discovery_seconds=list(
                        result.per_tuple_discovery_seconds
                    ),
                )
            results.append(result)
        return results

    # ------------------------------------------------------------------
    # live ingest (delta overlay)
    # ------------------------------------------------------------------
    @property
    def pending_delta(self) -> list[tuple[str, str, str]]:
        """Triples ingested since load, in application order.

        Snapshot-backed worker pools replay exactly this list so every
        worker reproduces the parent's delta state (and answers).
        """
        return self._graph_store.delta_triples

    def ingest(self, triples) -> dict:
        """Apply new triples to the live system; returns what happened.

        Delegates the mutation to
        :meth:`~repro.storage.snapshot.GraphStore.ingest` (graph +
        vocabulary + tables + statistics, deduplicated against the
        current union), then drops every piece of derived state that
        described the pre-ingest graph: cached lattice spaces would
        otherwise keep serving answers over stale join tables, and an
        existing worker pool holds whole processes built from the old
        state — the next pooled call rebuilds it with the delta
        replayed.  Returns ``{"applied", "duplicates", "delta_edges"}``.
        """
        result = self._graph_store.ingest(triples)
        if result["applied"]:
            self._space_cache.clear()
            self.close()
        return result

    # ------------------------------------------------------------------
    # pooled execution
    # ------------------------------------------------------------------
    def worker_pool(self):
        """The process pool backing ``execution="pool"`` (built lazily).

        Snapshot-loaded systems hand each worker the snapshot path to
        reopen (zero-copy shared pages with a v2 mapped snapshot), plus
        any pending ingest delta to replay on top; graph-built systems
        fall back to fork-time inheritance (the forked image already
        contains the delta).  Call :meth:`close` to shut the workers
        down.
        """
        # Double-checked under a lock: concurrent first callers must not
        # each build (and then leak) a pool of worker processes.
        if self._pool is None:
            from repro.serving.pool import WorkerPool

            with self._pool_lock:
                if self._pool is None:
                    self._pool = WorkerPool(
                        workers=self.config.pool_workers,
                        snapshot_path=self._snapshot_path,
                        system=self if self._snapshot_path is None else None,
                        config=replace(self.config, execution="inline"),
                        delta_triples=(
                            self.pending_delta
                            if self._snapshot_path is not None
                            else None
                        ),
                    )
        return self._pool

    def close(self) -> None:
        """Release resources (the worker pool, if one was started)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "GQBE":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _query_single(
        self,
        entities: tuple[str, ...],
        k: int,
        k_prime: int | None,
        arena: JoinMemoArena | None,
    ) -> QueryResult:
        """One single-tuple query, optionally inside a batch arena."""
        started = time.perf_counter()
        mqg = self.discover_query_graph(entities)
        discovery_seconds = time.perf_counter() - started

        started = time.perf_counter()
        exploration = self.explore_mqg(
            mqg, k, excluded_tuples={entities}, k_prime=k_prime, arena=arena
        )
        processing_seconds = time.perf_counter() - started

        return QueryResult(
            query_tuples=(entities,),
            answers=self._to_answer_tuples(exploration),
            mqg=mqg,
            statistics=exploration.statistics,
            discovery_seconds=discovery_seconds,
            processing_seconds=processing_seconds,
            per_tuple_discovery_seconds=[discovery_seconds],
            merge_seconds=0.0,
        )

    def query_multi(
        self,
        query_tuples: Sequence[Sequence[str]],
        k: int = 10,
        k_prime: int | None = None,
    ) -> QueryResult:
        """Answer a multi-tuple query using the merged MQG (Sec. III-D)."""
        tuples = tuple(tuple(t) for t in query_tuples)
        if not tuples:
            raise QueryError("multi-tuple queries need at least one example tuple")
        if len({len(t) for t in tuples}) != 1:
            raise QueryError("all example tuples must have the same number of entities")
        if len(tuples) == 1:
            return self.query(tuples[0], k=k, k_prime=k_prime)

        started = time.perf_counter()
        merged, _per_tuple, per_tuple_seconds, merge_seconds = (
            self.discover_merged_query_graph(tuples)
        )
        discovery_seconds = time.perf_counter() - started

        started = time.perf_counter()
        exploration = self.explore_mqg(
            merged, k, excluded_tuples=set(tuples), k_prime=k_prime
        )
        processing_seconds = time.perf_counter() - started

        return QueryResult(
            query_tuples=tuples,
            answers=self._to_answer_tuples(exploration),
            mqg=merged,
            statistics=exploration.statistics,
            discovery_seconds=discovery_seconds,
            processing_seconds=processing_seconds,
            per_tuple_discovery_seconds=per_tuple_seconds,
            merge_seconds=merge_seconds,
        )
