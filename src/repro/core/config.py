"""Configuration of the GQBE system.

All tunables referenced in the paper are collected in one immutable
dataclass so experiments can be described declaratively and compared in
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import EvaluationError


@dataclass(frozen=True)
class GQBEConfig:
    """Tunable parameters of GQBE.

    Attributes
    ----------
    d:
        Path-length threshold of the neighborhood graph (Definition 1).
        The paper uses ``d = 2``.
    mqg_size:
        Target number of edges ``r`` of the maximal query graph
        (Sec. III-A); the paper uses an empirically chosen ``r = 15``.
    k_prime:
        Stage-one oversampling for the two-stage ranking (Sec. V-B).
        ``None`` lets the explorer pick ``max(100, 4·k)``.
    reduce_neighborhood:
        Apply the unimportant-edge reduction of Sec. III-C before MQG
        discovery.  Disabling it is only useful for ablation studies.
    max_join_rows:
        Optional cap on the size of intermediate join relations; ``None``
        disables the cap.
    node_budget:
        Optional cap on the number of lattice nodes evaluated per query;
        ``None`` disables the cap.
    intern_entities:
        Build the vertical-partition store over interned integer entity
        ids (the fast path).  Disabling it runs the engine on raw entity
        strings via the identity vocabulary — the reference path used by
        the interning equivalence tests.
    columnar:
        Store edge tables column-wise and run the vectorized numpy join
        engine (the default).  Disabling it keeps the tuple-row join
        engine — the reference path of the columnar equivalence tests.
        The columnar engine requires interned ids and numpy; when either
        is missing the store silently falls back to tuple rows.
    batch_join_memo:
        Share join work across the queries of one
        :meth:`~repro.core.gqbe.GQBE.query_batch` call through a
        batch-scoped :class:`~repro.storage.batch.JoinMemoArena`
        (memoized join plans, plan-prefix relations and first-edge
        scans).  Answers are byte-identical either way; disabling it
        makes ``query_batch`` a plain loop over ``query`` (useful to
        measure the batching win, or to bound memory on huge graphs).
    batch_memo_max_rows:
        Per-relation cap on what the batch arena may cache: intermediate
        relations with more rows are recomputed instead of memoized, so
        a single hub-heavy prefix cannot pin an arbitrarily large array
        for the lifetime of the batch.  ``None`` caches everything.
    native_kernels:
        Backend for the engine's innermost scalar loops (CSR frontier
        expansion, the scalar join-probe tail, top-k' threshold
        maintenance, structure-score accumulation).  ``"auto"`` (the
        default) uses the compiled extension
        (``repro._kernels._native``) when it imported and falls back to
        the pure-Python kernels otherwise; ``"on"`` requires the
        extension (raising if it is unavailable); ``"off"`` forces the
        pure-Python kernels.  Answers are byte-identical either way
        (the native-parity equivalence tests pin this).  Environment
        overrides: ``GQBE_NATIVE_KERNELS`` decides what ``"auto"``
        means, and ``GQBE_FORCE_PURE=1`` forces the pure kernels
        unconditionally — even over ``"on"``.
    execution:
        Where :meth:`~repro.core.gqbe.GQBE.query_batch` runs.
        ``"inline"`` (the default) evaluates the batch on the calling
        thread.  ``"pool"`` shards the batch across a process pool
        (:class:`~repro.serving.pool.WorkerPool`) of ``pool_workers``
        workers — each worker opens the same snapshot (zero-copy shared
        pages with a v2 mapped snapshot), bypassing the GIL for
        CPU-bound explorations.  Ranked answers are byte-identical
        either way; single queries and multi-tuple queries always run
        inline.
    pool_workers:
        Number of worker processes for ``execution="pool"``.  ``None``
        picks ``os.cpu_count()`` (capped at 8).
    prefetch_shards:
        Issue read-ahead hints for memory-mapped snapshot shards: when a
        join plan is formed, every label shard the plan will probe is
        opened immediately (with ``madvise(WILLNEED)``, where the
        platform has it) so the kernel faults pages in while execution
        is still setting up.  Only affects systems loaded from a sharded
        (v2/v3) snapshot; answers are identical either way.  Disable to
        keep shard opening strictly probe-driven (e.g. when measuring
        lazy-load behavior).
    serve_high_water:
        Admission high-water mark of the async serving frontend
        (:class:`~repro.serving.async_server.AsyncGQBEServer`): the
        maximum number of admitted in-flight requests.  Past it, new
        queries are shed with ``429`` + ``Retry-After`` instead of
        queueing unboundedly.  Only read by the serving tier (``gqbe
        serve --high-water``); the engine itself ignores it.
    serve_deadline_ms:
        Per-request engine deadline of the async frontend, in
        milliseconds.  A request whose engine work has not finished
        inside the deadline is answered ``504`` and its batcher slot
        abandoned.  ``None`` disables deadlines (the serving
        ``request_timeout`` still caps batcher waits with ``503``).
    serve_rate_limit_rps:
        Per-client sustained rate limit of the async frontend, in
        requests/second (token bucket keyed by API key).  ``None``
        disables rate limiting.
    serve_rate_limit_burst:
        Token-bucket burst capacity per client — how many requests a
        previously idle client may issue back-to-back before the
        sustained ``serve_rate_limit_rps`` applies.
    serve_cache_ttl_seconds:
        Time-to-live for answer-cache entries of the async frontend: an
        entry older than this is treated as a miss and evicted on
        access.  ``None`` keeps pure LRU (entries live until evicted or
        invalidated by ``/admin/reload``).
    serve_compact_threshold:
        Delta size (edges ingested via ``/admin/ingest``) past which a
        snapshot-backed server starts a background compaction, folding
        base + delta into a fresh on-disk generation.  ``None`` leaves
        compaction to explicit ``/admin/compact`` calls.
    """

    d: int = 2
    mqg_size: int = 15
    k_prime: int | None = None
    reduce_neighborhood: bool = True
    max_join_rows: int | None = None
    node_budget: int | None = None
    intern_entities: bool = True
    columnar: bool = True
    batch_join_memo: bool = True
    batch_memo_max_rows: int | None = 1_000_000
    native_kernels: str = "auto"
    execution: str = "inline"
    pool_workers: int | None = None
    prefetch_shards: bool = True
    serve_high_water: int = 64
    serve_deadline_ms: int | None = None
    serve_rate_limit_rps: float | None = None
    serve_rate_limit_burst: int = 32
    serve_cache_ttl_seconds: float | None = None
    serve_compact_threshold: int | None = None

    def __post_init__(self) -> None:
        if self.d < 1:
            raise EvaluationError(f"d must be >= 1, got {self.d}")
        if self.mqg_size < 1:
            raise EvaluationError(f"mqg_size must be >= 1, got {self.mqg_size}")
        if self.k_prime is not None and self.k_prime < 1:
            raise EvaluationError(f"k_prime must be >= 1, got {self.k_prime}")
        if self.max_join_rows is not None and self.max_join_rows < 1:
            raise EvaluationError(
                f"max_join_rows must be >= 1, got {self.max_join_rows}"
            )
        if self.node_budget is not None and self.node_budget < 1:
            raise EvaluationError(f"node_budget must be >= 1, got {self.node_budget}")
        if self.batch_memo_max_rows is not None and self.batch_memo_max_rows < 0:
            raise EvaluationError(
                f"batch_memo_max_rows must be >= 0, got {self.batch_memo_max_rows}"
            )
        if self.native_kernels not in ("auto", "on", "off"):
            raise EvaluationError(
                'native_kernels must be "auto", "on" or "off", '
                f"got {self.native_kernels!r}"
            )
        if self.execution not in ("inline", "pool"):
            raise EvaluationError(
                f'execution must be "inline" or "pool", got {self.execution!r}'
            )
        if self.pool_workers is not None and self.pool_workers < 1:
            raise EvaluationError(
                f"pool_workers must be >= 1, got {self.pool_workers}"
            )
        if self.serve_high_water < 1:
            raise EvaluationError(
                f"serve_high_water must be >= 1, got {self.serve_high_water}"
            )
        if self.serve_deadline_ms is not None and self.serve_deadline_ms < 1:
            raise EvaluationError(
                f"serve_deadline_ms must be >= 1, got {self.serve_deadline_ms}"
            )
        if self.serve_rate_limit_rps is not None and self.serve_rate_limit_rps <= 0:
            raise EvaluationError(
                f"serve_rate_limit_rps must be > 0, got {self.serve_rate_limit_rps}"
            )
        if self.serve_rate_limit_burst < 1:
            raise EvaluationError(
                f"serve_rate_limit_burst must be >= 1, got {self.serve_rate_limit_burst}"
            )
        if (
            self.serve_cache_ttl_seconds is not None
            and self.serve_cache_ttl_seconds <= 0
        ):
            raise EvaluationError(
                "serve_cache_ttl_seconds must be > 0, "
                f"got {self.serve_cache_ttl_seconds}"
            )
        if (
            self.serve_compact_threshold is not None
            and self.serve_compact_threshold < 1
        ):
            raise EvaluationError(
                "serve_compact_threshold must be >= 1, "
                f"got {self.serve_compact_threshold}"
            )
