"""Configuration of the GQBE system.

All tunables referenced in the paper are collected in one immutable
dataclass so experiments can be described declaratively and compared in
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import EvaluationError


@dataclass(frozen=True)
class GQBEConfig:
    """Tunable parameters of GQBE.

    Attributes
    ----------
    d:
        Path-length threshold of the neighborhood graph (Definition 1).
        The paper uses ``d = 2``.
    mqg_size:
        Target number of edges ``r`` of the maximal query graph
        (Sec. III-A); the paper uses an empirically chosen ``r = 15``.
    k_prime:
        Stage-one oversampling for the two-stage ranking (Sec. V-B).
        ``None`` lets the explorer pick ``max(100, 4·k)``.
    reduce_neighborhood:
        Apply the unimportant-edge reduction of Sec. III-C before MQG
        discovery.  Disabling it is only useful for ablation studies.
    max_join_rows:
        Optional cap on the size of intermediate join relations; ``None``
        disables the cap.
    node_budget:
        Optional cap on the number of lattice nodes evaluated per query;
        ``None`` disables the cap.
    intern_entities:
        Build the vertical-partition store over interned integer entity
        ids (the fast path).  Disabling it runs the engine on raw entity
        strings via the identity vocabulary — the reference path used by
        the interning equivalence tests.
    columnar:
        Store edge tables column-wise and run the vectorized numpy join
        engine (the default).  Disabling it keeps the tuple-row join
        engine — the reference path of the columnar equivalence tests.
        The columnar engine requires interned ids and numpy; when either
        is missing the store silently falls back to tuple rows.
    batch_join_memo:
        Share join work across the queries of one
        :meth:`~repro.core.gqbe.GQBE.query_batch` call through a
        batch-scoped :class:`~repro.storage.batch.JoinMemoArena`
        (memoized join plans, plan-prefix relations and first-edge
        scans).  Answers are byte-identical either way; disabling it
        makes ``query_batch`` a plain loop over ``query`` (useful to
        measure the batching win, or to bound memory on huge graphs).
    batch_memo_max_rows:
        Per-relation cap on what the batch arena may cache: intermediate
        relations with more rows are recomputed instead of memoized, so
        a single hub-heavy prefix cannot pin an arbitrarily large array
        for the lifetime of the batch.  ``None`` caches everything.
    execution:
        Where :meth:`~repro.core.gqbe.GQBE.query_batch` runs.
        ``"inline"`` (the default) evaluates the batch on the calling
        thread.  ``"pool"`` shards the batch across a process pool
        (:class:`~repro.serving.pool.WorkerPool`) of ``pool_workers``
        workers — each worker opens the same snapshot (zero-copy shared
        pages with a v2 mapped snapshot), bypassing the GIL for
        CPU-bound explorations.  Ranked answers are byte-identical
        either way; single queries and multi-tuple queries always run
        inline.
    pool_workers:
        Number of worker processes for ``execution="pool"``.  ``None``
        picks ``os.cpu_count()`` (capped at 8).
    prefetch_shards:
        Issue read-ahead hints for memory-mapped snapshot shards: when a
        join plan is formed, every label shard the plan will probe is
        opened immediately (with ``madvise(WILLNEED)``, where the
        platform has it) so the kernel faults pages in while execution
        is still setting up.  Only affects systems loaded from a sharded
        (v2/v3) snapshot; answers are identical either way.  Disable to
        keep shard opening strictly probe-driven (e.g. when measuring
        lazy-load behavior).
    """

    d: int = 2
    mqg_size: int = 15
    k_prime: int | None = None
    reduce_neighborhood: bool = True
    max_join_rows: int | None = None
    node_budget: int | None = None
    intern_entities: bool = True
    columnar: bool = True
    batch_join_memo: bool = True
    batch_memo_max_rows: int | None = 1_000_000
    execution: str = "inline"
    pool_workers: int | None = None
    prefetch_shards: bool = True

    def __post_init__(self) -> None:
        if self.d < 1:
            raise EvaluationError(f"d must be >= 1, got {self.d}")
        if self.mqg_size < 1:
            raise EvaluationError(f"mqg_size must be >= 1, got {self.mqg_size}")
        if self.k_prime is not None and self.k_prime < 1:
            raise EvaluationError(f"k_prime must be >= 1, got {self.k_prime}")
        if self.max_join_rows is not None and self.max_join_rows < 1:
            raise EvaluationError(
                f"max_join_rows must be >= 1, got {self.max_join_rows}"
            )
        if self.node_budget is not None and self.node_budget < 1:
            raise EvaluationError(f"node_budget must be >= 1, got {self.node_budget}")
        if self.batch_memo_max_rows is not None and self.batch_memo_max_rows < 0:
            raise EvaluationError(
                f"batch_memo_max_rows must be >= 0, got {self.batch_memo_max_rows}"
            )
        if self.execution not in ("inline", "pool"):
            raise EvaluationError(
                f'execution must be "inline" or "pool", got {self.execution!r}'
            )
        if self.pool_workers is not None and self.pool_workers < 1:
            raise EvaluationError(
                f"pool_workers must be >= 1, got {self.pool_workers}"
            )
