"""Result types returned by the GQBE facade."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.discovery.mqg import MaximalQueryGraph
from repro.lattice.exploration import ExplorationStatistics


@dataclass(frozen=True)
class AnswerTuple:
    """One ranked answer tuple.

    Attributes
    ----------
    entities:
        The answer entities, positionally aligned with the query tuple.
        Always decoded entity *strings*: the join engine works on interned
        int ids internally, but ids never escape past the exploration's
        final ranking.
    score:
        The full Eq. 5 score (structure + content) of the best answer graph
        projecting to this tuple.
    structure_score:
        The structure-only component (used for stage-one ranking).
    content_score:
        The content component of the best-scoring answer graph.
    rank:
        1-based rank in the returned answer list.
    """

    entities: tuple[str, ...]
    score: float
    structure_score: float
    content_score: float
    rank: int

    def __iter__(self):
        return iter(self.entities)

    def __len__(self) -> int:
        return len(self.entities)


@dataclass
class QueryResult:
    """Everything produced by one GQBE query.

    Attributes
    ----------
    query_tuples:
        The input example tuple(s).
    answers:
        Ranked answer tuples (best first).
    mqg:
        The (possibly merged) maximal query graph the query was evaluated
        against.
    statistics:
        Lattice exploration counters (nodes evaluated, null nodes, ...).
    discovery_seconds:
        Wall-clock time spent discovering (and merging) the MQG(s).
    processing_seconds:
        Wall-clock time spent exploring the lattice.
    per_tuple_discovery_seconds:
        For multi-tuple queries, the MQG discovery time of each input tuple.
    merge_seconds:
        Time spent merging per-tuple MQGs (0 for single-tuple queries).
    """

    query_tuples: tuple[tuple[str, ...], ...]
    answers: list[AnswerTuple]
    mqg: MaximalQueryGraph
    statistics: ExplorationStatistics
    discovery_seconds: float = 0.0
    processing_seconds: float = 0.0
    per_tuple_discovery_seconds: list[float] = field(default_factory=list)
    merge_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time (discovery + processing)."""
        return self.discovery_seconds + self.processing_seconds

    def answer_tuples(self) -> list[tuple[str, ...]]:
        """Just the entity tuples, in rank order."""
        return [answer.entities for answer in self.answers]

    def top(self, n: int) -> list[AnswerTuple]:
        """The first ``n`` answers."""
        return self.answers[:n]
