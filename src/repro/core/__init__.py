"""Public API of the GQBE reproduction: the system facade and result types.

Typical usage::

    from repro import GQBE, GQBEConfig
    from repro.graph import KnowledgeGraph

    graph = KnowledgeGraph(triples)
    system = GQBE(graph)
    result = system.query(("Jerry Yang", "Yahoo!"), k=10)
    for answer in result.answers:
        print(answer.entities, answer.score)
"""

from repro.core.answer import AnswerTuple, QueryResult
from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE

__all__ = ["GQBE", "GQBEConfig", "AnswerTuple", "QueryResult"]
