"""Directed, edge-labeled multigraph of entities (the GQBE *data graph*).

The paper (Sec. II) models a knowledge graph as a directed multigraph whose
nodes are entities with unique identifiers and whose edges carry labels
(relationship names).  Multiple edges may share a label, and a pair of nodes
may be connected by several edges with different labels.  Duplicate triples
(same subject, label and object) are stored once.

:class:`KnowledgeGraph` is an in-memory adjacency-map implementation tuned
for the access patterns GQBE needs:

* iterate the out-edges / in-edges / all incident edges of a node,
* iterate undirected neighbours (for the BFS of Definition 1),
* count edges per label (for inverse edge-label frequency),
* count edges per (node, label, direction) (for participation degree),
* build vertex-induced or edge-induced subgraphs.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import NamedTuple

from repro.exceptions import GraphError


class Edge(NamedTuple):
    """A single directed, labeled edge ``subject --label--> object``."""

    subject: str
    label: str
    object: str

    def endpoints(self) -> frozenset[str]:
        """Return the unordered pair of endpoint identifiers."""
        return frozenset((self.subject, self.object))

    def other(self, node: str) -> str:
        """Return the endpoint that is not ``node``.

        For a self-loop the same node is returned.  Raises
        :class:`~repro.exceptions.GraphError` if ``node`` is not an endpoint.
        """
        if node == self.subject:
            return self.object
        if node == self.object:
            return self.subject
        raise GraphError(f"{node!r} is not an endpoint of {self!r}")

    def touches(self, node: str) -> bool:
        """Return whether ``node`` is one of the two endpoints."""
        return node == self.subject or node == self.object


class KnowledgeGraph:
    """An in-memory directed multigraph with labeled edges.

    Nodes are identified by strings (the paper uses entity names as
    identifiers).  Edges are :class:`Edge` triples.  The graph stores each
    distinct triple exactly once.
    """

    def __init__(self, edges: Iterable[Edge | tuple[str, str, str]] = ()) -> None:
        self._out: dict[str, list[Edge]] = {}
        self._in: dict[str, list[Edge]] = {}
        # Insertion-ordered so edge iteration is a deterministic function of
        # the triple stream (never a hash-seed-dependent set order): the
        # offline build derives shard row order from it, and the streaming
        # build pipeline must reproduce those bytes from a re-read of the
        # same stream.
        self._edges: dict[Edge, None] = {}
        self._label_counts: dict[str, int] = {}
        for edge in edges:
            self.add_edge(*edge)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: str) -> None:
        """Add an isolated node (a no-op if the node already exists)."""
        if not isinstance(node, str) or not node:
            raise GraphError(f"node identifiers must be non-empty strings, got {node!r}")
        self._out.setdefault(node, [])
        self._in.setdefault(node, [])

    def add_edge(self, subject: str, label: str, object: str) -> Edge:
        """Add the edge ``subject --label--> object``; return the Edge.

        Adding an edge that is already present is a no-op (the existing
        edge is returned), matching the set-of-triples data model.
        """
        if not label:
            raise GraphError("edge labels must be non-empty strings")
        edge = Edge(subject, label, object)
        if edge in self._edges:
            return edge
        self.add_node(subject)
        self.add_node(object)
        self._edges[edge] = None
        self._out[subject].append(edge)
        self._in[object].append(edge)
        self._label_counts[label] = self._label_counts.get(label, 0) + 1
        return edge

    def add_edge_object(self, edge: Edge) -> Edge:
        """Add an existing :class:`Edge` without revalidating or rebuilding it.

        The fast path for building subgraphs out of edges that already
        passed :meth:`add_edge` validation in another graph (neighborhood
        extraction and reduction construct thousands of these per query).
        """
        if edge in self._edges:
            return edge
        out = self._out
        incoming = self._in
        if edge.subject not in out:
            out[edge.subject] = []
            incoming[edge.subject] = []
        if edge.object not in out:
            out[edge.object] = []
            incoming[edge.object] = []
        self._edges[edge] = None
        out[edge.subject].append(edge)
        incoming[edge.object].append(edge)
        self._label_counts[edge.label] = self._label_counts.get(edge.label, 0) + 1
        return edge

    def add_edges(self, edges: Iterable[Edge | tuple[str, str, str]]) -> None:
        """Add every edge in ``edges``."""
        for edge in edges:
            self.add_edge(*edge)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Iterator[str]:
        """Iterate over all node identifiers."""
        return iter(self._out)

    @property
    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in insertion (first-seen) order."""
        return iter(self._edges)

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the graph."""
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Number of distinct edges (triples) in the graph."""
        return len(self._edges)

    @property
    def labels(self) -> Iterator[str]:
        """Iterate over the distinct edge labels present in the graph."""
        return iter(self._label_counts)

    @property
    def num_labels(self) -> int:
        """Number of distinct edge labels."""
        return len(self._label_counts)

    def has_node(self, node: str) -> bool:
        """Return whether ``node`` is present."""
        return node in self._out

    def has_edge(self, subject: str, label: str, object: str) -> bool:
        """Return whether the exact triple is present."""
        return Edge(subject, label, object) in self._edges

    def label_count(self, label: str) -> int:
        """Number of edges in the graph bearing ``label`` (0 if unknown)."""
        return self._label_counts.get(label, 0)

    def label_counts(self) -> dict[str, int]:
        """Return a copy of the per-label edge counts."""
        return dict(self._label_counts)

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    @property
    def out_adjacency(self) -> dict[str, list[Edge]]:
        """The subject adjacency map itself (read-only for callers).

        Hot traversals (the neighborhood BFS) walk it directly to avoid a
        list copy per node; everyone else should prefer :meth:`out_edges`.
        """
        return self._out

    @property
    def in_adjacency(self) -> dict[str, list[Edge]]:
        """The object adjacency map itself (read-only for callers)."""
        return self._in

    def out_edges(self, node: str) -> list[Edge]:
        """Edges whose subject is ``node`` (empty list for unknown nodes)."""
        return list(self._out.get(node, ()))

    def in_edges(self, node: str) -> list[Edge]:
        """Edges whose object is ``node`` (empty list for unknown nodes)."""
        return list(self._in.get(node, ()))

    def incident_edges(self, node: str) -> list[Edge]:
        """All edges incident on ``node`` regardless of direction.

        A self-loop appears only once in the returned list.
        """
        out = self._out.get(node, ())
        incoming = self._in.get(node, ())
        incident = list(out)
        incident.extend(e for e in incoming if e.subject != e.object)
        return incident

    def degree(self, node: str) -> int:
        """Total number of incident edges (self-loops counted once)."""
        return len(self.incident_edges(node))

    def out_degree(self, node: str) -> int:
        """Number of outgoing edges."""
        return len(self._out.get(node, ()))

    def in_degree(self, node: str) -> int:
        """Number of incoming edges."""
        return len(self._in.get(node, ()))

    def neighbors(self, node: str) -> set[str]:
        """Undirected neighbours of ``node`` (excluding ``node`` itself)."""
        adjacent: set[str] = set()
        for edge in self._out.get(node, ()):
            adjacent.add(edge.object)
        for edge in self._in.get(node, ()):
            adjacent.add(edge.subject)
        adjacent.discard(node)
        return adjacent

    def edges_with_label(self, label: str) -> list[Edge]:
        """All edges bearing ``label`` (linear scan; used only in tests/tools)."""
        return [edge for edge in self._edges if edge.label == label]

    # ------------------------------------------------------------------
    # subgraphs and connectivity
    # ------------------------------------------------------------------
    def edge_subgraph(self, edges: Iterable[Edge]) -> "KnowledgeGraph":
        """Return the subgraph induced by ``edges`` (their endpoints included)."""
        subgraph = KnowledgeGraph()
        for edge in edges:
            if edge not in self._edges:
                raise GraphError(f"edge {edge!r} is not part of this graph")
            subgraph.add_edge_object(edge)
        return subgraph

    def node_subgraph(self, nodes: Iterable[str]) -> "KnowledgeGraph":
        """Return the subgraph induced by ``nodes`` and the edges among them."""
        keep = set(nodes)
        subgraph = KnowledgeGraph()
        for node in keep:
            if self.has_node(node):
                subgraph.add_node(node)
        for edge in self._edges:
            if edge.subject in keep and edge.object in keep:
                subgraph.add_edge_object(edge)
        return subgraph

    def is_weakly_connected(self) -> bool:
        """Return whether the graph is weakly connected (empty graph: True)."""
        if self.num_nodes <= 1:
            return True
        start = next(iter(self._out))
        return len(self._undirected_reachable(start)) == self.num_nodes

    def weakly_connected_components(self) -> list[set[str]]:
        """Return the node sets of all weakly connected components."""
        seen: set[str] = set()
        components: list[set[str]] = []
        for node in self._out:
            if node in seen:
                continue
            component = self._undirected_reachable(node)
            seen.update(component)
            components.append(component)
        return components

    def _undirected_reachable(self, start: str) -> set[str]:
        """All nodes reachable from ``start`` ignoring edge direction."""
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor in self.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return seen

    def undirected_distances(self, source: str, cutoff: int | None = None) -> dict[str, int]:
        """BFS distances from ``source`` over undirected edges.

        ``cutoff`` bounds the search radius; nodes farther than ``cutoff``
        are omitted from the result.  The source itself maps to 0.
        """
        if not self.has_node(source):
            raise GraphError(f"unknown node {source!r}")
        distances = {source: 0}
        frontier = [source]
        depth = 0
        while frontier and (cutoff is None or depth < cutoff):
            depth += 1
            next_frontier: list[str] = []
            for node in frontier:
                for neighbor in self.neighbors(node):
                    if neighbor not in distances:
                        distances[neighbor] = depth
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return distances

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __contains__(self, item: object) -> bool:
        if isinstance(item, Edge):
            return item in self._edges
        if isinstance(item, str):
            return item in self._out
        return False

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[Edge]:
        return iter(self._edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KnowledgeGraph):
            return NotImplemented
        return self._edges == other._edges and set(self._out) == set(other._out)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(nodes={self.num_nodes}, "
            f"edges={self.num_edges}, labels={self.num_labels})"
        )

    def copy(self) -> "KnowledgeGraph":
        """Return a deep copy of this graph."""
        duplicate = KnowledgeGraph(self._edges)
        for node in self._out:
            duplicate.add_node(node)
        return duplicate
