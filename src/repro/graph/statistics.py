"""Offline, query-independent graph statistics (Sec. III-B of the paper).

Two statistics drive GQBE's edge weighting and are precomputed once per
data graph because they do not depend on the query:

* **Inverse edge-label frequency** (Eq. 3)::

      ief(e) = log(|E(G)| / #label(e))

  Labels that appear rarely in the whole graph (e.g. ``founded``) receive a
  larger weight than ubiquitous ones (e.g. ``nationality``).

* **Participation degree** (Eq. 4)::

      p(e) = |{e' = (u', v') : label(e') = label(e) and (u' = u or v' = v)}|

  An edge is locally less important if many edges with the same label share
  one of its endpoints on the same side (e.g. the ``employment`` edges of a
  large company).  Note the asymmetry in Eq. 4: the *subject* of ``e'`` is
  compared against the subject of ``e`` and the *object* against the object;
  an edge with the same label that merely touches an endpoint on the other
  side does not count.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

try:  # pragma: no cover - numpy is present everywhere mapped snapshots are
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from repro.exceptions import GraphError
from repro.graph.knowledge_graph import Edge, KnowledgeGraph


class GraphStatistics:
    """Precomputed label-frequency and participation statistics for a graph.

    Parameters
    ----------
    graph:
        The data graph ``G``.  The statistics refer to the *whole* data
        graph even when weights are later assigned to edges of a
        neighborhood subgraph, exactly as the paper prescribes.
    """

    def __init__(self, graph: KnowledgeGraph) -> None:
        if graph.num_edges == 0:
            raise GraphError("cannot compute statistics of an empty graph")
        self._graph = graph
        self._total_edges = graph.num_edges
        self._label_counts: dict[str, int] = graph.label_counts()
        # (subject, label) -> number of edges from that subject with that label
        self._out_label_counts: dict[tuple[str, str], int] = {}
        # (object, label) -> number of edges into that object with that label
        self._in_label_counts: dict[tuple[str, str], int] = {}
        for edge in graph.edges:
            out_key = (edge.subject, edge.label)
            in_key = (edge.object, edge.label)
            self._out_label_counts[out_key] = self._out_label_counts.get(out_key, 0) + 1
            self._in_label_counts[in_key] = self._in_label_counts.get(in_key, 0) + 1
        # Eq. 2 weights are pure functions of the (immutable) statistics
        # and are requested for the same neighborhood edges query after
        # query, so they are memoized per edge.
        self._base_weight_cache: dict[Edge, float] = {}

    # ------------------------------------------------------------------
    # The snapshot subsystem serializes statistics *without* the graph
    # back-reference (the graph is its own snapshot section) and re-wires
    # ``_graph`` on load; the memo cache is rebuilt on demand.
    def __getstate__(self):
        state = dict(self.__dict__)
        state["_graph"] = None
        state["_base_weight_cache"] = {}
        return state

    # ------------------------------------------------------------------
    @property
    def graph(self) -> KnowledgeGraph:
        """The data graph these statistics were computed from."""
        return self._graph

    @property
    def total_edges(self) -> int:
        """|E(G)| — the total number of edges in the data graph."""
        return self._total_edges

    def label_frequency(self, label: str) -> int:
        """#label(e) — number of edges in G bearing ``label``."""
        return self._label_counts.get(label, 0)

    def inverse_edge_label_frequency(self, edge: Edge | str) -> float:
        """ief(e) per Eq. 3; accepts an :class:`Edge` or a bare label.

        Unknown labels are treated as having frequency 1 (the rarest
        possible), which keeps the function total and monotone.
        """
        label = edge.label if isinstance(edge, Edge) else edge
        frequency = max(self._label_counts.get(label, 1), 1)
        return math.log(self._total_edges / frequency)

    # Short aliases mirroring the paper's notation -----------------------
    def ief(self, edge: Edge | str) -> float:
        """Alias for :meth:`inverse_edge_label_frequency`."""
        return self.inverse_edge_label_frequency(edge)

    def participation_degree(self, edge: Edge) -> int:
        """p(e) per Eq. 4 (at least 1, since ``e`` itself participates)."""
        same_subject = self._out_label_counts.get((edge.subject, edge.label), 0)
        same_object = self._in_label_counts.get((edge.object, edge.label), 0)
        # Edges counted by both terms are exactly those with the same
        # subject *and* object and the same label; in a set-of-triples
        # multigraph that is just the edge itself (if present).
        overlap = 1 if self._graph.has_edge(*edge) else 0
        degree = same_subject + same_object - overlap
        return max(degree, 1)

    def p(self, edge: Edge) -> int:
        """Alias for :meth:`participation_degree`."""
        return self.participation_degree(edge)

    # ------------------------------------------------------------------
    # live ingest (delta overlay) support
    # ------------------------------------------------------------------
    def apply_edge(self, edge: Edge) -> None:
        """Account one newly ingested edge (the caller deduplicated it).

        Increments exactly the counters ``__init__`` would have produced
        had ``edge`` been part of the original graph, so statistics over
        (base + delta) equal a from-scratch rebuild of the merged graph.
        The caller runs :meth:`finish_mutation` once per ingest batch.
        """
        self._total_edges += 1
        self._label_counts[edge.label] = self._label_counts.get(edge.label, 0) + 1
        out_key = (edge.subject, edge.label)
        self._out_label_counts[out_key] = self._out_label_counts.get(out_key, 0) + 1
        in_key = (edge.object, edge.label)
        self._in_label_counts[in_key] = self._in_label_counts.get(in_key, 0) + 1

    def finish_mutation(self) -> None:
        """Drop memoized Eq. 2 weights after a mutation batch.

        ``ief`` depends on the global edge total, so every memoized
        weight is stale once any edge lands.
        """
        self._base_weight_cache.clear()

    # ------------------------------------------------------------------
    def base_edge_weight(self, edge: Edge) -> float:
        """w(e) = ief(e) / p(e) — Eq. 2, used for MQG discovery (memoized)."""
        weight = self._base_weight_cache.get(edge)
        if weight is None:
            weight = self.inverse_edge_label_frequency(edge) / self.participation_degree(edge)
            self._base_weight_cache[edge] = weight
        return weight

    def weights_for(self, edges: Iterable[Edge]) -> dict[Edge, float]:
        """Convenience: Eq. 2 weights for every edge in ``edges``."""
        return {edge: self.base_edge_weight(edge) for edge in edges}

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(edges={self._total_edges}, "
            f"labels={len(self._label_counts)})"
        )


# ----------------------------------------------------------------------
# mapped statistics (v3 snapshots)
# ----------------------------------------------------------------------
class _MappedCountView:
    """A ``(node, label) -> count`` mapping over mapped int64 columns.

    The v3 snapshot persists each participation-count dict as a pair of
    columns: sorted composite keys (``node_id * num_labels + label_id``)
    and their counts.  Reads binary-search the key column; live-ingest
    writes land in a small overlay dict of absolute values that reads
    prefer, so :meth:`GraphStatistics.apply_edge`'s read-modify-write
    works unchanged.  Only the dict operations the statistics code uses
    are implemented (``get`` / ``__setitem__`` / ``items``).
    """

    __slots__ = ("_keys", "_counts", "_vocabulary", "_labels", "_label_ids", "_overlay")

    def __init__(self, keys, counts, vocabulary, labels) -> None:
        self._keys = keys
        self._counts = counts
        self._vocabulary = vocabulary
        self._labels = labels
        self._label_ids = {label: index for index, label in enumerate(labels)}
        self._overlay: dict[tuple[str, str], int] = {}

    def _base(self, key: tuple[str, str]) -> int:
        term, label = key
        label_id = self._label_ids.get(label)
        if label_id is None:
            return 0
        node_id = self._vocabulary.id_of(term)
        if node_id is None:
            return 0
        composite = node_id * len(self._labels) + label_id
        index = int(np.searchsorted(self._keys, composite))
        if index < len(self._keys) and int(self._keys[index]) == composite:
            return int(self._counts[index])
        return 0

    def get(self, key: tuple[str, str], default: int = 0):
        value = self._overlay.get(key)
        if value is not None:
            return value
        base = self._base(key)
        return base if base else default

    def __setitem__(self, key: tuple[str, str], value: int) -> None:
        self._overlay[key] = value

    def items(self):
        """Every ``((term, label), count)`` pair, overlay winning.

        Decoding the mapped columns back to string keys is an O(n)
        sweep; only resaves and pickling (both already full-copy
        operations) use it — queries never do.
        """
        term_of = self._vocabulary.term_of
        num_labels = len(self._labels)
        overlay = self._overlay
        for index in range(len(self._keys)):
            composite = int(self._keys[index])
            key = (term_of(composite // num_labels), self._labels[composite % num_labels])
            if key not in overlay:
                yield key, int(self._counts[index])
        yield from overlay.items()


def _restore_plain_statistics(total_edges, label_counts, out_counts, in_counts):
    """Pickle target: rebuild mapped statistics as a plain-dict instance."""
    statistics = GraphStatistics.__new__(GraphStatistics)
    statistics._graph = None
    statistics._total_edges = total_edges
    statistics._label_counts = label_counts
    statistics._out_label_counts = out_counts
    statistics._in_label_counts = in_counts
    statistics._base_weight_cache = {}
    return statistics


class MappedGraphStatistics(GraphStatistics):
    """Statistics whose participation counts live in mapped snapshot columns.

    A v3 snapshot persists the two ``(node, label)`` count dicts — the
    last per-worker pickle of the format — as sorted composite-key /
    count int64 column pairs that reopen as zero-copy ``mmap`` views, so
    N serving workers over one snapshot share their physical pages.  The
    lookups produce exactly the integers the dict version holds, which
    keeps every Eq. 2 weight (and therefore every ranked answer)
    byte-identical.  Live ingest accumulates into per-view overlay
    dicts; pickling reduces to a plain :class:`GraphStatistics` (resaves
    re-encode the merged counts instead).
    """

    def __init__(
        self,
        graph,
        vocabulary,
        labels: list[str],
        total_edges: int,
        label_counts: dict[str, int],
        out_keys,
        out_counts,
        in_keys,
        in_counts,
    ) -> None:
        if total_edges <= 0:
            raise GraphError("cannot map statistics of an empty graph")
        self._graph = graph
        self._total_edges = int(total_edges)
        self._label_counts = dict(label_counts)
        self._out_label_counts = _MappedCountView(
            out_keys, out_counts, vocabulary, labels
        )
        self._in_label_counts = _MappedCountView(
            in_keys, in_counts, vocabulary, labels
        )
        self._base_weight_cache = {}

    def __reduce__(self):
        # A pickled copy cannot carry the mmap-backed columns; it
        # becomes an equivalent plain-dict GraphStatistics (the v1/v2
        # save paths and any cross-process handoff hit this).
        return (
            _restore_plain_statistics,
            (
                self._total_edges,
                dict(self._label_counts),
                dict(self._out_label_counts.items()),
                dict(self._in_label_counts.items()),
            ),
        )
