"""A mutable delta overlay over a mapped (read-only) knowledge graph.

The v3 snapshot serves its graph as memory-mapped CSR columns
(:class:`~repro.graph.mapped.MappedKnowledgeGraph`) — fast, shared
between worker processes, and immutable.  Live ingest
(``POST /admin/ingest``) needs mutation, so this module layers an
owned, in-memory **delta** over the mapped base: new nodes intern into
the vocabulary's existing overlay (``MappedVocabulary.intern``), new
edges append to per-node extra-adjacency lists, and every reader sees
the union *base slice first, delta appends after*.

That ordering is the whole equivalence argument.  In an owned
:class:`~repro.graph.knowledge_graph.KnowledgeGraph` built from the
merged triple stream, a node's adjacency list holds its base-era edges
(in base insertion order) followed by its delta-era edges (in ingest
order) — exactly base-CSR-slice followed by the extras list here.  The
BFS in :mod:`repro.graph.neighborhood` walks both representations in
the same per-node order, so answers over (base + delta) are
byte-identical to a from-scratch build of the merged graph
(``tests/test_ingest_equivalence.py`` pins this).

Compaction folds the overlay back into CSR form via
:meth:`DeltaKnowledgeGraph.csr_lists`; pickling materializes the merged
owned graph, so a delta-carrying bundle still saves as v1/v2.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.exceptions import GraphError
from repro.graph.knowledge_graph import Edge
from repro.graph.mapped import MappedKnowledgeGraph, _knowledge_graph_from_csr


class DeltaKnowledgeGraph:
    """Union view of a mapped base graph plus an owned in-memory delta.

    The instance shares the base's :class:`MappedVocabulary` — delta
    nodes land in its intern overlay, so the store tables, statistics
    and this graph agree on ids without any translation layer.  The
    base's CSR pages are never written; all mutation lives in plain
    Python lists and dicts owned by this object.
    """

    __slots__ = (
        "_base",
        "_vocabulary",
        "_labels",
        "_label_ids",
        "_base_nodes",
        "_base_labels",
        "_num_nodes",
        "_num_edges",
        "_out_extra",
        "_in_extra",
        "_delta_edges",
        "_delta_triples",
        "_delta_label_counts",
    )

    def __init__(self, base: MappedKnowledgeGraph) -> None:
        self._base = base
        self._vocabulary = base.vocabulary
        self._labels: list[str] = list(base.label_strings)
        self._label_ids: dict[str, int] = {
            label: index for index, label in enumerate(self._labels)
        }
        self._base_nodes = base.num_nodes
        self._base_labels = len(self._labels)
        # Track our own node count rather than deriving it from the
        # vocabulary: the overlay may intern terms that are not nodes.
        self._num_nodes = base.num_nodes
        self._num_edges = base.num_edges
        self._out_extra: dict[int, list[tuple[int, int]]] = {}
        self._in_extra: dict[int, list[tuple[int, int]]] = {}
        self._delta_edges: set[tuple[int, int, int]] = set()
        self._delta_triples: list[tuple[int, int, int]] = []
        self._delta_label_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_delta_edge(self, subject: str, label: str, object: str) -> tuple[int, int]:
        """Add one triple to the delta; returns ``(subject_id, object_id)``.

        Callers must have rejected duplicates already (:meth:`has_edge`)
        — interning happens here, and a duplicate must not intern
        anything, mirroring ``KnowledgeGraph.add_edge``'s dedup-before-
        add-node order.
        """
        if not subject or not label or not object:
            raise GraphError(
                f"triple terms must be non-empty strings, got "
                f"({subject!r}, {label!r}, {object!r})"
            )
        subject_id = self._intern_node(subject)
        object_id = self._intern_node(object)
        label_id = self._label_ids.get(label)
        if label_id is None:
            label_id = len(self._labels)
            self._labels.append(label)
            self._label_ids[label] = label_id
        key = (subject_id, label_id, object_id)
        if key in self._delta_edges:
            return subject_id, object_id
        self._delta_edges.add(key)
        self._delta_triples.append(key)
        self._out_extra.setdefault(subject_id, []).append((label_id, object_id))
        self._in_extra.setdefault(object_id, []).append((label_id, subject_id))
        self._delta_label_counts[label] = self._delta_label_counts.get(label, 0) + 1
        self._num_edges += 1
        return subject_id, object_id

    def _intern_node(self, term: str) -> int:
        node_id = self._vocabulary.intern(term)
        if node_id >= self._num_nodes:
            self._num_nodes = node_id + 1
        return node_id

    # ------------------------------------------------------------------
    # id-level surface (BFS and statistics fast paths)
    # ------------------------------------------------------------------
    @property
    def base(self) -> MappedKnowledgeGraph:
        """The immutable mapped base graph under the delta."""
        return self._base

    @property
    def vocabulary(self):
        """The shared (overlay-carrying) vocabulary."""
        return self._vocabulary

    @property
    def label_strings(self) -> list[str]:
        """Label id → label string (base labels first, delta appended)."""
        return self._labels

    @property
    def delta_edge_count(self) -> int:
        """Number of edges living in the delta overlay."""
        return len(self._delta_triples)

    def node_id(self, node: str) -> int | None:
        """The node's dense id, or ``None`` for unknown nodes."""
        entity_id = self._vocabulary.id_of(node)
        if entity_id is None or entity_id >= self._num_nodes:
            return None
        return entity_id

    def term(self, node_id: int) -> str:
        """The entity string of ``node_id``."""
        return self._vocabulary.term_of(node_id)

    def _label_id(self, label: str) -> int | None:
        return self._label_ids.get(label)

    def out_extras(self, node_id: int) -> list[tuple[int, int]]:
        """Delta out-edges of ``node_id`` as ``(label_id, object_id)``."""
        return self._out_extra.get(node_id, _EMPTY)

    def in_extras(self, node_id: int) -> list[tuple[int, int]]:
        """Delta in-edges of ``node_id`` as ``(label_id, subject_id)``."""
        return self._in_extra.get(node_id, _EMPTY)

    def _base_out_slice(self, node_id: int) -> tuple[int, int]:
        if node_id >= self._base_nodes:
            return 0, 0
        indptr = self._base.out_indptr
        return int(indptr[node_id]), int(indptr[node_id + 1])

    def _base_in_slice(self, node_id: int) -> tuple[int, int]:
        if node_id >= self._base_nodes:
            return 0, 0
        indptr = self._base.in_indptr
        return int(indptr[node_id]), int(indptr[node_id + 1])

    def _base_has_edge_ids(self, subject_id: int, label_id: int, object_id: int) -> bool:
        if (
            subject_id >= self._base_nodes
            or object_id >= self._base_nodes
            or label_id >= self._base_labels
        ):
            return False
        start, end = self._base_out_slice(subject_id)
        if start == end:
            return False
        objects = self._base.out_objects[start:end]
        label_column = self._base.out_label_ids[start:end]
        return bool(((objects == object_id) & (label_column == label_id)).any())

    # ------------------------------------------------------------------
    # KnowledgeGraph read API
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the union graph."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of distinct edges in the union graph."""
        return self._num_edges

    @property
    def num_labels(self) -> int:
        """Number of distinct edge labels."""
        return len(self._labels)

    @property
    def labels(self) -> Iterator[str]:
        """Iterate the distinct labels (base order, delta appended)."""
        return iter(self._labels)

    @property
    def nodes(self) -> Iterator[str]:
        """Iterate all node identifiers in id (= insertion) order."""
        term_of = self._vocabulary.term_of
        return (term_of(node_id) for node_id in range(self._num_nodes))

    @property
    def edges(self) -> Iterator[Edge]:
        """Every edge: the base's stream, then delta edges in ingest order."""
        yield from self._base.edges
        term_of = self._vocabulary.term_of
        labels = self._labels
        for subject_id, label_id, object_id in self._delta_triples:
            yield Edge(term_of(subject_id), labels[label_id], term_of(object_id))

    def has_node(self, node: str) -> bool:
        """Return whether ``node`` is present in base or delta."""
        return self.node_id(node) is not None

    def has_edge(self, subject: str, label: str, object: str) -> bool:
        """Exact triple membership across base slice and delta set."""
        subject_id = self.node_id(subject)
        object_id = self.node_id(object)
        label_id = self._label_ids.get(label)
        if subject_id is None or object_id is None or label_id is None:
            return False
        if (subject_id, label_id, object_id) in self._delta_edges:
            return True
        return self._base_has_edge_ids(subject_id, label_id, object_id)

    def label_count(self, label: str) -> int:
        """Number of edges bearing ``label`` (0 if unknown)."""
        return self.label_counts().get(label, 0)

    def label_counts(self) -> dict[str, int]:
        """Per-label edge counts over the union."""
        counts = self._base.label_counts()
        for label, count in self._delta_label_counts.items():
            counts[label] = counts.get(label, 0) + count
        return counts

    # ------------------------------------------------------------------
    # adjacency (Edge-materializing; the BFS fast path bypasses these)
    # ------------------------------------------------------------------
    def _out_edges_of_id(self, node_id: int) -> list[Edge]:
        term_of = self._vocabulary.term_of
        labels = self._labels
        subject = term_of(node_id)
        edges = (
            self._base._out_edges_of_id(node_id)
            if node_id < self._base_nodes
            else []
        )
        edges.extend(
            Edge(subject, labels[label_id], term_of(object_id))
            for label_id, object_id in self.out_extras(node_id)
        )
        return edges

    def _in_edges_of_id(self, node_id: int) -> list[Edge]:
        term_of = self._vocabulary.term_of
        labels = self._labels
        object_term = term_of(node_id)
        edges = (
            self._base._in_edges_of_id(node_id)
            if node_id < self._base_nodes
            else []
        )
        edges.extend(
            Edge(term_of(subject_id), labels[label_id], object_term)
            for label_id, subject_id in self.in_extras(node_id)
        )
        return edges

    def out_edges(self, node: str) -> list[Edge]:
        """Edges whose subject is ``node`` (empty list for unknown nodes)."""
        node_id = self.node_id(node)
        return [] if node_id is None else self._out_edges_of_id(node_id)

    def in_edges(self, node: str) -> list[Edge]:
        """Edges whose object is ``node`` (empty list for unknown nodes)."""
        node_id = self.node_id(node)
        return [] if node_id is None else self._in_edges_of_id(node_id)

    def incident_edges(self, node: str) -> list[Edge]:
        """All edges incident on ``node``, self-loops listed once."""
        node_id = self.node_id(node)
        if node_id is None:
            return []
        incident = self._out_edges_of_id(node_id)
        incident.extend(
            edge
            for edge in self._in_edges_of_id(node_id)
            if edge.subject != edge.object
        )
        return incident

    def degree(self, node: str) -> int:
        """Total number of incident edges (self-loops counted once)."""
        return len(self.incident_edges(node))

    def out_degree(self, node: str) -> int:
        """Number of outgoing edges."""
        node_id = self.node_id(node)
        if node_id is None:
            return 0
        start, end = self._base_out_slice(node_id)
        return (end - start) + len(self.out_extras(node_id))

    def in_degree(self, node: str) -> int:
        """Number of incoming edges."""
        node_id = self.node_id(node)
        if node_id is None:
            return 0
        start, end = self._base_in_slice(node_id)
        return (end - start) + len(self.in_extras(node_id))

    def neighbors(self, node: str) -> set[str]:
        """Undirected neighbours of ``node`` (excluding ``node`` itself)."""
        node_id = self.node_id(node)
        if node_id is None:
            return set()
        term_of = self._vocabulary.term_of
        adjacent = {
            term_of(neighbor_id) for neighbor_id in self.neighbor_ids(node_id)
        }
        adjacent.discard(node)
        return adjacent

    def neighbor_ids(self, node_id: int) -> list[int]:
        """Undirected neighbor ids: base out, delta out, base in, delta in."""
        start, end = self._base_out_slice(node_id)
        ids = self._base.out_objects[start:end].tolist() if end > start else []
        ids.extend(object_id for _, object_id in self.out_extras(node_id))
        start, end = self._base_in_slice(node_id)
        if end > start:
            ids.extend(self._base.in_subjects[start:end].tolist())
        ids.extend(subject_id for _, subject_id in self.in_extras(node_id))
        return ids

    # ------------------------------------------------------------------
    # materialization / compaction / pickling
    # ------------------------------------------------------------------
    def csr_lists(self) -> tuple[list[str], list[int], list[int], list[int], list[int], list[int], list[int]]:
        """The merged union as CSR lists (labels + six columns).

        Per-node slices are base-slice-then-delta-appends — the same
        order every live reader sees, so a compacted generation answers
        byte-identically to the overlay it replaced.
        """
        out_indptr = [0]
        out_objects: list[int] = []
        out_labels: list[int] = []
        in_indptr = [0]
        in_subjects: list[int] = []
        in_labels: list[int] = []
        base = self._base
        for node_id in range(self._num_nodes):
            start, end = self._base_out_slice(node_id)
            if end > start:
                out_objects.extend(base.out_objects[start:end].tolist())
                out_labels.extend(base.out_label_ids[start:end].tolist())
            for label_id, object_id in self.out_extras(node_id):
                out_objects.append(object_id)
                out_labels.append(label_id)
            out_indptr.append(len(out_objects))
            start, end = self._base_in_slice(node_id)
            if end > start:
                in_subjects.extend(base.in_subjects[start:end].tolist())
                in_labels.extend(base.in_label_ids[start:end].tolist())
            for label_id, subject_id in self.in_extras(node_id):
                in_subjects.append(subject_id)
                in_labels.append(label_id)
            in_indptr.append(len(in_subjects))
        return (
            list(self._labels),
            out_indptr,
            out_objects,
            out_labels,
            in_indptr,
            in_subjects,
            in_labels,
        )

    def _csr_state(self) -> tuple:
        term_of = self._vocabulary.term_of
        terms = [term_of(node_id) for node_id in range(self._num_nodes)]
        return (terms, *self.csr_lists())

    def to_knowledge_graph(self):
        """Materialize the merged union as an owned ``KnowledgeGraph``."""
        return _knowledge_graph_from_csr(*self._csr_state())

    # Like the mapped base, a delta view pickles as the equivalent owned
    # merged KnowledgeGraph (v1/v2 resaves of a mutated bundle).
    def __reduce__(self):
        return (_knowledge_graph_from_csr, self._csr_state())

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Edge):
            return self.has_edge(*item)
        if isinstance(item, str):
            return self.has_node(item)
        return False

    def __len__(self) -> int:
        return self._num_edges

    def __iter__(self) -> Iterator[Edge]:
        return iter(self.edges)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(nodes={self.num_nodes}, "
            f"edges={self.num_edges}, delta_edges={self.delta_edge_count})"
        )


_EMPTY: list[tuple[int, int]] = []
