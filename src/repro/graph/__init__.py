"""Knowledge-graph substrate: graph model, triple I/O, statistics, neighborhoods.

This package provides the data-graph layer that every other GQBE component
builds on:

* :class:`~repro.graph.knowledge_graph.KnowledgeGraph` — a directed,
  edge-labeled multigraph of entities.
* :class:`~repro.graph.triples.Triple` and the TSV/N-Triples-like readers
  and writers in :mod:`repro.graph.triples`.
* :class:`~repro.graph.statistics.GraphStatistics` — the offline,
  query-independent statistics (inverse edge-label frequency and
  participation degree) used by the edge-weighting scheme of the paper.
* :func:`~repro.graph.neighborhood.neighborhood_graph` — Definition 1 of
  the paper: the subgraph within ``d`` undirected hops of the query tuple.
"""

from repro.graph.knowledge_graph import Edge, KnowledgeGraph
from repro.graph.mapped import MappedKnowledgeGraph
from repro.graph.neighborhood import NeighborhoodGraph, neighborhood_graph
from repro.graph.statistics import GraphStatistics
from repro.graph.triples import (
    Triple,
    read_triples,
    triples_from_strings,
    write_triples,
)

__all__ = [
    "Edge",
    "KnowledgeGraph",
    "MappedKnowledgeGraph",
    "NeighborhoodGraph",
    "neighborhood_graph",
    "GraphStatistics",
    "Triple",
    "read_triples",
    "triples_from_strings",
    "write_triples",
]
