"""Neighborhood graph extraction (Definition 1 of the paper).

The *neighborhood graph* ``H_t`` of a query tuple ``t`` is the subgraph of
the data graph ``G`` consisting of every node reachable from at least one
query entity by an undirected path of at most ``d`` edges, together with the
edges of all such paths.  It captures how query entities relate to the
entities around them and serves as the raw material from which the maximal
query graph is discovered.

Implementation: a multi-source BFS over undirected adjacency gives the
minimum undirected distance ``dist_q(v)`` from any query entity to each
node.  Then

* ``v ∈ V(H_t)``   iff ``dist_q(v) ≤ d``
* ``e=(u,v) ∈ E(H_t)`` iff ``min(dist_q(u), dist_q(v)) ≤ d − 1``

because an edge one of whose endpoints lies within ``d − 1`` hops of a query
entity lies on an undirected path of length ≤ ``d`` starting at that entity.

Over a :class:`~repro.graph.mapped.MappedKnowledgeGraph` (a v3 sharded
snapshot) the same BFS runs on the mapped int64 CSR columns: nodes are
dense ids, frontier expansion slices the adjacency arrays, and
:class:`~repro.graph.knowledge_graph.Edge` objects are materialized only
for the edges that make it into ``H_t``.  The traversal orders mirror the
dict-of-lists implementation exactly (out-slice then in-slice, per node,
in per-node insertion order), so the extracted neighborhood — and every
answer downstream of it — is byte-identical across backings.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro._kernels import _pure as _pure_kernels
from repro._kernels import kernels
from repro.exceptions import QueryError, UnknownEntityError
from repro.graph.delta import DeltaKnowledgeGraph
from repro.graph.knowledge_graph import Edge, KnowledgeGraph
from repro.graph.mapped import MappedKnowledgeGraph


@dataclass
class NeighborhoodGraph:
    """The neighborhood graph ``H_t`` plus the bookkeeping GQBE needs later.

    Attributes
    ----------
    graph:
        The subgraph ``H_t`` of the data graph.
    query_tuple:
        The query entities the neighborhood was grown from.
    d:
        The path-length threshold used.
    distances:
        ``dist_q(v)`` — minimum undirected distance from any query entity,
        for every node of ``H_t``.
    """

    graph: KnowledgeGraph
    query_tuple: tuple[str, ...]
    d: int
    distances: dict[str, int] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        """Number of nodes in ``H_t``."""
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of edges in ``H_t``."""
        return self.graph.num_edges

    def distance(self, node: str) -> int:
        """``dist_q(node)``; raises ``KeyError`` for nodes outside ``H_t``."""
        return self.distances[node]

    def contains_query_entities(self) -> bool:
        """Whether every query entity is a node of ``H_t`` (always true)."""
        return all(self.graph.has_node(entity) for entity in self.query_tuple)


def _validate_query_tuple(graph: KnowledgeGraph, query_tuple: Sequence[str]) -> tuple[str, ...]:
    entities = tuple(query_tuple)
    if not entities:
        raise QueryError("query tuples must contain at least one entity")
    if len(set(entities)) != len(entities):
        raise QueryError(f"query tuple {entities!r} contains duplicate entities")
    for entity in entities:
        if not graph.has_node(entity):
            raise UnknownEntityError(entity)
    return entities


# The whole-frontier gather and its adaptive threshold live with the
# kernels now (repro/_kernels/_pure.py); these aliases keep the
# historical names importable (ROADMAP and older profiles refer to
# repro.graph.neighborhood._gather_frontier).
_GATHER_MIN_FRONTIER = _pure_kernels.GATHER_MIN_FRONTIER
_gather_frontier = _pure_kernels._gather_frontier


def _mapped_distance_ids(
    graph: MappedKnowledgeGraph,
    entities: Sequence[str],
    cutoff: int | None,
) -> dict[int, int]:
    """The BFS of :func:`query_entity_distances` over mapped CSR ids.

    Expansion order matches the adjacency-map path exactly (out slice
    then in slice per frontier node), so the returned dict's insertion
    order — and everything derived from it — is identical.  Each depth
    expands through one ``kernels.bfs_expand`` call: the compiled
    kernel when selected, else the pure twin (whose wide frontiers
    expand through one whole-frontier numpy gather emitting neighbors
    in the same order, so the result is unchanged).
    """
    entity_ids = [graph.node_id(entity) for entity in entities]
    distances: dict[int, int] = {entity_id: 0 for entity_id in entity_ids}
    frontier = entity_ids
    depth = 0
    out_indptr = graph.out_indptr
    out_objects = graph.out_objects
    in_indptr = graph.in_indptr
    in_subjects = graph.in_subjects
    bfs_expand = kernels.bfs_expand
    while frontier and (cutoff is None or depth < cutoff):
        depth += 1
        frontier = bfs_expand(
            frontier, out_indptr, out_objects, in_indptr, in_subjects,
            distances, depth,
        )
    return distances


def _delta_distance_ids(
    graph: DeltaKnowledgeGraph,
    entities: Sequence[str],
    cutoff: int | None,
) -> dict[int, int]:
    """The BFS of :func:`query_entity_distances` over a delta overlay.

    Per frontier node the expansion order is base out slice, delta out
    appends, base in slice, delta in appends — exactly the adjacency
    list order of the merged owned graph, so the insertion order (and
    every answer downstream) is byte-identical to a from-scratch build.
    """
    entity_ids = [graph.node_id(entity) for entity in entities]
    distances: dict[int, int] = {entity_id: 0 for entity_id in entity_ids}
    frontier = entity_ids
    depth = 0
    base = graph.base
    base_nodes = base.num_nodes
    out_indptr = base.out_indptr
    out_objects = base.out_objects
    in_indptr = base.in_indptr
    in_subjects = base.in_subjects
    out_extras = graph.out_extras
    in_extras = graph.in_extras
    while frontier and (cutoff is None or depth < cutoff):
        depth += 1
        next_frontier: list[int] = []
        for node_id in frontier:
            if node_id < base_nodes:
                start = int(out_indptr[node_id])
                end = int(out_indptr[node_id + 1])
                for neighbor in out_objects[start:end].tolist():
                    if neighbor not in distances:
                        distances[neighbor] = depth
                        next_frontier.append(neighbor)
            for _, neighbor in out_extras(node_id):
                if neighbor not in distances:
                    distances[neighbor] = depth
                    next_frontier.append(neighbor)
            if node_id < base_nodes:
                start = int(in_indptr[node_id])
                end = int(in_indptr[node_id + 1])
                for neighbor in in_subjects[start:end].tolist():
                    if neighbor not in distances:
                        distances[neighbor] = depth
                        next_frontier.append(neighbor)
            for _, neighbor in in_extras(node_id):
                if neighbor not in distances:
                    distances[neighbor] = depth
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return distances


def query_entity_distances(
    graph: KnowledgeGraph, query_tuple: Sequence[str], cutoff: int | None = None
) -> dict[str, int]:
    """Multi-source undirected BFS distance from the nearest query entity.

    Only nodes within ``cutoff`` hops are returned (all nodes if ``None``).
    """
    entities = _validate_query_tuple(graph, query_tuple)
    if isinstance(graph, MappedKnowledgeGraph):
        term_of = graph.term
        return {
            term_of(node_id): dist
            for node_id, dist in _mapped_distance_ids(
                graph, entities, cutoff
            ).items()
        }
    if isinstance(graph, DeltaKnowledgeGraph):
        term_of = graph.term
        return {
            term_of(node_id): dist
            for node_id, dist in _delta_distance_ids(
                graph, entities, cutoff
            ).items()
        }
    distances = {entity: 0 for entity in entities}
    frontier = list(entities)
    depth = 0
    # Walk the adjacency lists directly instead of materializing a
    # neighbor set per node (graph.neighbors builds one on every call);
    # the `in distances` check deduplicates.
    out_edges = graph.out_adjacency
    in_edges = graph.in_adjacency
    while frontier and (cutoff is None or depth < cutoff):
        depth += 1
        next_frontier: list[str] = []
        for node in frontier:
            for edge in out_edges.get(node, ()):
                neighbor = edge.object
                if neighbor not in distances:
                    distances[neighbor] = depth
                    next_frontier.append(neighbor)
            for edge in in_edges.get(node, ()):
                neighbor = edge.subject
                if neighbor not in distances:
                    distances[neighbor] = depth
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return distances


def neighborhood_graph(
    graph: KnowledgeGraph, query_tuple: Sequence[str], d: int = 2
) -> NeighborhoodGraph:
    """Extract the neighborhood graph ``H_t`` of ``query_tuple`` (Def. 1).

    Parameters
    ----------
    graph:
        The data graph ``G``.
    query_tuple:
        Ordered entity identifiers; all must exist in ``graph``.
    d:
        The undirected path-length threshold (the paper uses ``d = 2``).
    """
    if d < 1:
        raise QueryError(f"path length threshold d must be >= 1, got {d}")
    entities = _validate_query_tuple(graph, query_tuple)
    if isinstance(graph, MappedKnowledgeGraph):
        return _mapped_neighborhood_graph(graph, entities, d)
    if isinstance(graph, DeltaKnowledgeGraph):
        return _delta_neighborhood_graph(graph, entities, d)
    distances = query_entity_distances(graph, entities, cutoff=d)

    subgraph = KnowledgeGraph()
    for node in distances:
        subgraph.add_node(node)
    for node, dist in distances.items():
        if dist > d - 1:
            continue
        # Every edge incident on a node within d-1 hops lies on a path of
        # length <= d from a query entity, so it belongs to H_t.
        for edge in graph.incident_edges(node):
            other = edge.other(node)
            if other in distances:
                subgraph.add_edge_object(edge)

    kept_distances = {node: distances[node] for node in subgraph.nodes}
    return NeighborhoodGraph(
        graph=subgraph, query_tuple=entities, d=d, distances=kept_distances
    )


def _mapped_neighborhood_graph(
    graph: MappedKnowledgeGraph, entities: tuple[str, ...], d: int
) -> NeighborhoodGraph:
    """The :func:`neighborhood_graph` construction over mapped CSR columns.

    Runs entirely on int ids; entity strings decode once per node of
    ``H_t`` and :class:`Edge` objects exist only for the edges of the
    extracted subgraph.  The per-node expansion order (out slice, then in
    slice without self-loops) mirrors ``KnowledgeGraph.incident_edges``
    so the subgraph — including its adjacency-list insertion orders — is
    byte-identical to the dict-of-lists path.
    """
    distance_ids = _mapped_distance_ids(graph, entities, cutoff=d)
    labels = graph.label_strings
    # term_of carries its own hot-term decode cache; bind it directly.
    term = graph.vocabulary.term_of

    subgraph = KnowledgeGraph()
    for node_id in distance_ids:
        subgraph.add_node(term(node_id))
    out_indptr = graph.out_indptr
    out_objects = graph.out_objects
    out_label_ids = graph.out_label_ids
    in_indptr = graph.in_indptr
    in_subjects = graph.in_subjects
    in_label_ids = graph.in_label_ids
    add_edge = subgraph.add_edge_object
    for node_id, dist in distance_ids.items():
        if dist > d - 1:
            continue
        node_term = term(node_id)
        # Slice + tolist turns the mapped columns into plain-int lists in
        # two C calls per node — per-position ndarray indexing is ~10x
        # slower and this loop runs for every near node of every query.
        start = int(out_indptr[node_id])
        end = int(out_indptr[node_id + 1])
        if start != end:
            for other, label_id in zip(
                out_objects[start:end].tolist(),
                out_label_ids[start:end].tolist(),
            ):
                if other in distance_ids:
                    add_edge(Edge(node_term, labels[label_id], term(other)))
        start = int(in_indptr[node_id])
        end = int(in_indptr[node_id + 1])
        if start != end:
            for other, label_id in zip(
                in_subjects[start:end].tolist(),
                in_label_ids[start:end].tolist(),
            ):
                # Self-loops already appeared in the out slice.
                if other != node_id and other in distance_ids:
                    add_edge(Edge(term(other), labels[label_id], node_term))
    kept_distances = {
        term(node_id): dist for node_id, dist in distance_ids.items()
    }
    return NeighborhoodGraph(
        graph=subgraph, query_tuple=entities, d=d, distances=kept_distances
    )


def _delta_neighborhood_graph(
    graph: DeltaKnowledgeGraph, entities: tuple[str, ...], d: int
) -> NeighborhoodGraph:
    """:func:`neighborhood_graph` over a live (base + delta) overlay.

    Edge visitation per near node is base out slice, delta out appends,
    base in slice (self-loops skipped), delta in appends (self-loops
    skipped) — the merged owned graph's ``incident_edges`` order — so
    the extracted subgraph is byte-identical to a from-scratch build of
    base plus delta.
    """
    distance_ids = _delta_distance_ids(graph, entities, cutoff=d)
    labels = graph.label_strings
    term = graph.vocabulary.term_of

    subgraph = KnowledgeGraph()
    for node_id in distance_ids:
        subgraph.add_node(term(node_id))
    base = graph.base
    base_nodes = base.num_nodes
    out_indptr = base.out_indptr
    out_objects = base.out_objects
    out_label_ids = base.out_label_ids
    in_indptr = base.in_indptr
    in_subjects = base.in_subjects
    in_label_ids = base.in_label_ids
    add_edge = subgraph.add_edge_object
    for node_id, dist in distance_ids.items():
        if dist > d - 1:
            continue
        node_term = term(node_id)
        if node_id < base_nodes:
            start = int(out_indptr[node_id])
            end = int(out_indptr[node_id + 1])
            if start != end:
                for other, label_id in zip(
                    out_objects[start:end].tolist(),
                    out_label_ids[start:end].tolist(),
                ):
                    if other in distance_ids:
                        add_edge(Edge(node_term, labels[label_id], term(other)))
        for label_id, other in graph.out_extras(node_id):
            if other in distance_ids:
                add_edge(Edge(node_term, labels[label_id], term(other)))
        if node_id < base_nodes:
            start = int(in_indptr[node_id])
            end = int(in_indptr[node_id + 1])
            if start != end:
                for other, label_id in zip(
                    in_subjects[start:end].tolist(),
                    in_label_ids[start:end].tolist(),
                ):
                    # Self-loops already appeared in the out slice.
                    if other != node_id and other in distance_ids:
                        add_edge(Edge(term(other), labels[label_id], node_term))
        for label_id, other in graph.in_extras(node_id):
            if other != node_id and other in distance_ids:
                add_edge(Edge(term(other), labels[label_id], node_term))
    kept_distances = {
        term(node_id): dist for node_id, dist in distance_ids.items()
    }
    return NeighborhoodGraph(
        graph=subgraph, query_tuple=entities, d=d, distances=kept_distances
    )
