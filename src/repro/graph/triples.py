"""Triple (RDF-style) parsing and serialization.

GQBE stores knowledge graphs as sets of ``(subject, property, object)``
triples (Sec. V-A of the paper).  This module supports three plain-text
formats:

* **TSV** — one triple per line, tab-separated: ``subject<TAB>label<TAB>object``.
* **NT-like** — a simplified N-Triples syntax:
  ``<subject> <label> <object> .`` with angle-bracketed terms.
* **CSV** — relationship exports in the shape Neo4j / Apache AGE tooling
  produces: a header row naming start/type/end columns (``:START_ID``,
  ``:TYPE``, ``:END_ID``; ``_start``, ``_type``, ``_end``; or plain
  ``subject,predicate,object`` spellings), then one relationship per row.

Files whose name ends in ``.gz`` are decompressed transparently by every
path-taking entry point (``read_triples``, ``load_graph``,
``iter_triples_chunked``, ``write_triples``).

All readers skip blank lines and ``#`` comments and report precise line
numbers on malformed input via :class:`~repro.exceptions.TripleParseError`.
"""

from __future__ import annotations

import csv
import gzip
import io
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.exceptions import TripleParseError
from repro.graph.knowledge_graph import Edge, KnowledgeGraph

#: A triple is just an Edge; the alias documents intent at call sites that
#: deal with files rather than graphs.
Triple = Edge


def _parse_tsv_line(line: str, line_number: int) -> Triple:
    parts = line.rstrip("\n").split("\t")
    if len(parts) != 3:
        raise TripleParseError(line_number, line, "expected 3 tab-separated fields")
    subject, label, obj = (part.strip() for part in parts)
    if not subject or not label or not obj:
        raise TripleParseError(line_number, line, "empty field")
    return Triple(subject, label, obj)


def _parse_nt_line(line: str, line_number: int) -> Triple:
    stripped = line.strip()
    if not stripped.endswith("."):
        raise TripleParseError(line_number, line, "missing trailing '.'")
    body = stripped[:-1].strip()
    terms: list[str] = []
    rest = body
    for _ in range(3):
        rest = rest.lstrip()
        if not rest.startswith("<"):
            raise TripleParseError(line_number, line, "terms must be <bracketed>")
        end = rest.find(">")
        if end < 0:
            raise TripleParseError(line_number, line, "unterminated term")
        terms.append(rest[1:end])
        rest = rest[end + 1:]
    if rest.strip():
        raise TripleParseError(line_number, line, "trailing content after 3 terms")
    subject, label, obj = terms
    if not subject or not label or not obj:
        raise TripleParseError(line_number, line, "empty term")
    return Triple(subject, label, obj)


def _detect_format(first_line: str) -> str:
    return "nt" if first_line.lstrip().startswith("<") else "tsv"


#: Recognized header spellings for the CSV relationship-export adapter,
#: after normalization (lowercased, ``:`` / ``_`` / quotes stripped).
_CSV_SUBJECT_NAMES = frozenset(
    {"startid", "start", "startnodeid", "subject", "source", "from", "s"}
)
_CSV_LABEL_NAMES = frozenset(
    {"type", "reltype", "relationshiptype", "label", "predicate", "relationship", "p"}
)
_CSV_OBJECT_NAMES = frozenset(
    {"endid", "end", "endnodeid", "object", "target", "to", "o"}
)


def _normalize_csv_header_cell(cell: str) -> str:
    return cell.strip().strip('"').replace(":", "").replace("_", "").lower()


def _resolve_csv_columns(header: list[str], line_number: int, line: str) -> tuple[int, int, int]:
    """Map a relationship-export header row to (subject, label, object) columns."""
    subject = label = obj = None
    for index, cell in enumerate(header):
        name = _normalize_csv_header_cell(cell)
        if name in _CSV_SUBJECT_NAMES and subject is None:
            subject = index
        elif name in _CSV_LABEL_NAMES and label is None:
            label = index
        elif name in _CSV_OBJECT_NAMES and obj is None:
            obj = index
    if subject is not None and label is not None and obj is not None:
        return subject, label, obj
    if subject is None and label is None and obj is None and len(header) == 3:
        # Headerless positional export: treat the columns as
        # subject,label,object and the first row as data.
        return -1, -1, -1
    raise TripleParseError(
        line_number,
        line,
        "unrecognized CSV export header (need start/type/end or "
        "subject/predicate/object columns)",
    )


def _iter_csv_triples(lines: Iterable[str]) -> Iterator[Triple]:
    """Parse a Neo4j/AGE-style relationship CSV export into triples."""
    columns: tuple[int, int, int] | None = None
    for line_number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            row = next(csv.reader([stripped]))
        except csv.Error as exc:
            raise TripleParseError(line_number, line, f"bad CSV row: {exc}") from exc
        if columns is None:
            columns = _resolve_csv_columns(row, line_number, line)
            if columns != (-1, -1, -1):
                continue  # header row consumed
            columns = (0, 1, 2)  # headerless: this row is data
        s_col, l_col, o_col = columns
        width = max(s_col, l_col, o_col) + 1
        if len(row) < width:
            raise TripleParseError(
                line_number, line, f"expected at least {width} CSV fields"
            )
        subject = row[s_col].strip()
        label = row[l_col].strip()
        obj = row[o_col].strip()
        if not subject or not label or not obj:
            raise TripleParseError(line_number, line, "empty field")
        yield Triple(subject, label, obj)


def iter_triples(lines: Iterable[str], fmt: str = "auto") -> Iterator[Triple]:
    """Yield triples parsed from an iterable of text lines.

    ``fmt`` is one of ``"tsv"``, ``"nt"``, ``"csv"`` or ``"auto"`` (detected
    from the first non-comment line; CSV is never auto-detected from content
    — pass ``fmt="csv"`` or use a ``.csv`` / ``.csv.gz`` path).
    """
    if fmt == "csv":
        yield from _iter_csv_triples(lines)
        return
    parser = None
    if fmt == "tsv":
        parser = _parse_tsv_line
    elif fmt == "nt":
        parser = _parse_nt_line
    elif fmt != "auto":
        raise ValueError(f"unknown triple format {fmt!r}")

    for line_number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if parser is None:
            parser = _parse_nt_line if _detect_format(line) == "nt" else _parse_tsv_line
        yield parser(line, line_number)


def triples_from_strings(text: str, fmt: str = "auto") -> list[Triple]:
    """Parse triples out of a multi-line string."""
    return list(iter_triples(io.StringIO(text), fmt=fmt))


def _open_text(path: str | Path, mode: str = "r") -> io.TextIOBase:
    """Open a triple file for text I/O, decompressing ``.gz`` transparently."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def resolve_path_format(path: str | Path, fmt: str = "auto") -> str:
    """Resolve ``fmt="auto"`` from the file name where the suffix decides.

    ``.csv`` / ``.csv.gz`` files parse as CSV relationship exports (their
    content is ambiguous with TSV, so the extension is authoritative);
    everything else keeps content sniffing (``auto``).
    """
    if fmt != "auto":
        return fmt
    name = str(path)
    if name.endswith(".gz"):
        name = name[: -len(".gz")]
    if name.endswith(".csv"):
        return "csv"
    return "auto"


def read_triples(path: str | Path, fmt: str = "auto") -> list[Triple]:
    """Read all triples from a file (``.gz`` paths are decompressed)."""
    with _open_text(path) as handle:
        return list(iter_triples(handle, fmt=resolve_path_format(path, fmt)))


def iter_triples_chunked(
    path: str | Path, fmt: str = "auto", chunk_size: int = 65536
) -> Iterator[list[Triple]]:
    """Yield triples from a file in bounded-size lists.

    The streaming build reads dumps through this so at most ``chunk_size``
    parsed triples are resident at a time, whatever the file size.  Formats,
    ``.gz`` handling, comment/blank skipping and the line-number discipline
    of :exc:`~repro.exceptions.TripleParseError` all match
    :func:`read_triples`; the concatenation of the yielded chunks is exactly
    its return value.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    with _open_text(path) as handle:
        chunk: list[Triple] = []
        for triple in iter_triples(handle, fmt=resolve_path_format(path, fmt)):
            chunk.append(triple)
            if len(chunk) >= chunk_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk


def load_graph(path: str | Path, fmt: str = "auto") -> KnowledgeGraph:
    """Read a triple file and return it as a :class:`KnowledgeGraph`."""
    return KnowledgeGraph(read_triples(path, fmt=fmt))


def write_triples(
    triples: Iterable[Triple], path: str | Path, fmt: str = "tsv"
) -> int:
    """Write triples to ``path`` in the requested format; return the count.

    A ``.gz`` path writes a gzip-compressed file readable back through
    :func:`read_triples`.
    """
    count = 0
    with _open_text(path, "w") as handle:
        for triple in triples:
            handle.write(format_triple(triple, fmt=fmt))
            handle.write("\n")
            count += 1
    return count


def format_triple(triple: Triple, fmt: str = "tsv") -> str:
    """Render one triple as a line of text in the requested format."""
    if fmt == "tsv":
        return f"{triple.subject}\t{triple.label}\t{triple.object}"
    if fmt == "nt":
        return f"<{triple.subject}> <{triple.label}> <{triple.object}> ."
    raise ValueError(f"unknown triple format {fmt!r}")


def graph_to_triples(graph: KnowledgeGraph) -> list[Triple]:
    """Return the graph's edges as a sorted, deterministic list of triples."""
    return sorted(graph.edges)
