"""Triple (RDF-style) parsing and serialization.

GQBE stores knowledge graphs as sets of ``(subject, property, object)``
triples (Sec. V-A of the paper).  This module supports two plain-text
formats:

* **TSV** — one triple per line, tab-separated: ``subject<TAB>label<TAB>object``.
* **NT-like** — a simplified N-Triples syntax:
  ``<subject> <label> <object> .`` with angle-bracketed terms.

Both readers skip blank lines and ``#`` comments and report precise line
numbers on malformed input via :class:`~repro.exceptions.TripleParseError`.
"""

from __future__ import annotations

import io
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.exceptions import TripleParseError
from repro.graph.knowledge_graph import Edge, KnowledgeGraph

#: A triple is just an Edge; the alias documents intent at call sites that
#: deal with files rather than graphs.
Triple = Edge


def _parse_tsv_line(line: str, line_number: int) -> Triple:
    parts = line.rstrip("\n").split("\t")
    if len(parts) != 3:
        raise TripleParseError(line_number, line, "expected 3 tab-separated fields")
    subject, label, obj = (part.strip() for part in parts)
    if not subject or not label or not obj:
        raise TripleParseError(line_number, line, "empty field")
    return Triple(subject, label, obj)


def _parse_nt_line(line: str, line_number: int) -> Triple:
    stripped = line.strip()
    if not stripped.endswith("."):
        raise TripleParseError(line_number, line, "missing trailing '.'")
    body = stripped[:-1].strip()
    terms: list[str] = []
    rest = body
    for _ in range(3):
        rest = rest.lstrip()
        if not rest.startswith("<"):
            raise TripleParseError(line_number, line, "terms must be <bracketed>")
        end = rest.find(">")
        if end < 0:
            raise TripleParseError(line_number, line, "unterminated term")
        terms.append(rest[1:end])
        rest = rest[end + 1:]
    if rest.strip():
        raise TripleParseError(line_number, line, "trailing content after 3 terms")
    subject, label, obj = terms
    if not subject or not label or not obj:
        raise TripleParseError(line_number, line, "empty term")
    return Triple(subject, label, obj)


def _detect_format(first_line: str) -> str:
    return "nt" if first_line.lstrip().startswith("<") else "tsv"


def iter_triples(lines: Iterable[str], fmt: str = "auto") -> Iterator[Triple]:
    """Yield triples parsed from an iterable of text lines.

    ``fmt`` is one of ``"tsv"``, ``"nt"`` or ``"auto"`` (detected from the
    first non-comment line).
    """
    parser = None
    if fmt == "tsv":
        parser = _parse_tsv_line
    elif fmt == "nt":
        parser = _parse_nt_line
    elif fmt != "auto":
        raise ValueError(f"unknown triple format {fmt!r}")

    for line_number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if parser is None:
            parser = _parse_nt_line if _detect_format(line) == "nt" else _parse_tsv_line
        yield parser(line, line_number)


def triples_from_strings(text: str, fmt: str = "auto") -> list[Triple]:
    """Parse triples out of a multi-line string."""
    return list(iter_triples(io.StringIO(text), fmt=fmt))


def read_triples(path: str | Path, fmt: str = "auto") -> list[Triple]:
    """Read all triples from a file."""
    with open(path, "r", encoding="utf-8") as handle:
        return list(iter_triples(handle, fmt=fmt))


def load_graph(path: str | Path, fmt: str = "auto") -> KnowledgeGraph:
    """Read a triple file and return it as a :class:`KnowledgeGraph`."""
    return KnowledgeGraph(read_triples(path, fmt=fmt))


def write_triples(
    triples: Iterable[Triple], path: str | Path, fmt: str = "tsv"
) -> int:
    """Write triples to ``path`` in the requested format; return the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for triple in triples:
            handle.write(format_triple(triple, fmt=fmt))
            handle.write("\n")
            count += 1
    return count


def format_triple(triple: Triple, fmt: str = "tsv") -> str:
    """Render one triple as a line of text in the requested format."""
    if fmt == "tsv":
        return f"{triple.subject}\t{triple.label}\t{triple.object}"
    if fmt == "nt":
        return f"<{triple.subject}> <{triple.label}> <{triple.object}> ."
    raise ValueError(f"unknown triple format {fmt!r}")


def graph_to_triples(graph: KnowledgeGraph) -> list[Triple]:
    """Return the graph's edges as a sorted, deterministic list of triples."""
    return sorted(graph.edges)
