"""A read-only knowledge-graph view over memory-mapped CSR adjacency.

The v3 sharded snapshot (:mod:`repro.storage.shards`) persists the data
graph as six int64 columns — out- and in-adjacency in CSR form over the
store's interned entity ids — plus the label strings.  This module's
:class:`MappedKnowledgeGraph` serves the read API of
:class:`~repro.graph.knowledge_graph.KnowledgeGraph` directly over those
mapped columns, so a serve worker reopening a v3 snapshot carries **no**
private copy of the adjacency: the hot consumers — neighborhood
extraction (:mod:`repro.graph.neighborhood`) and the participation-degree
membership checks of :mod:`repro.graph.statistics` — run on the int
arrays and materialize :class:`~repro.graph.knowledge_graph.Edge`
objects only for the handful of edges that end up inside a query's
neighborhood subgraph.

Two ordering invariants make answers byte-identical to the dict-of-lists
graph (and are guaranteed by the shard writer):

* node id ``i`` is the ``i``-th node in the graph's insertion order —
  exactly the id the store's vocabulary interned for it;
* each node's out (in) slice lists its edges in the same order as the
  original ``KnowledgeGraph``'s per-node adjacency lists.

Pickling a mapped graph materializes an equivalent
:class:`~repro.graph.knowledge_graph.KnowledgeGraph` (per-node adjacency
orders preserved), so a v3 → v1 resave stays self-contained and
byte-compatible.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING

from repro._kernels import kernels
from repro.graph.knowledge_graph import Edge, KnowledgeGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (storage imports us)
    from repro.storage.vocabulary import MappedVocabulary


def _knowledge_graph_from_csr(
    terms: Sequence[str],
    labels: Sequence[str],
    out_indptr: Sequence[int],
    out_objects: Sequence[int],
    out_labels: Sequence[int],
    in_indptr: Sequence[int],
    in_subjects: Sequence[int],
    in_labels: Sequence[int],
) -> KnowledgeGraph:
    """Rebuild a real :class:`KnowledgeGraph` from CSR adjacency.

    Fills the per-node adjacency lists directly (one shared
    :class:`Edge` instance per triple) so both the out *and* in list
    orders reproduce the original graph exactly — ``add_edge`` could
    only reproduce one of the two.
    """
    graph = KnowledgeGraph()
    for term in terms:
        graph.add_node(term)
    out_map = graph._out
    in_map = graph._in
    edges = graph._edges
    label_counts = graph._label_counts
    edge_cache: dict[Edge, Edge] = {}
    for node_id, term in enumerate(terms):
        bucket = out_map[term]
        for position in range(out_indptr[node_id], out_indptr[node_id + 1]):
            edge = Edge(
                term,
                labels[out_labels[position]],
                terms[out_objects[position]],
            )
            edge = edge_cache.setdefault(edge, edge)
            bucket.append(edge)
            edges[edge] = None
            label = edge.label
            label_counts[label] = label_counts.get(label, 0) + 1
    for node_id, term in enumerate(terms):
        bucket = in_map[term]
        for position in range(in_indptr[node_id], in_indptr[node_id + 1]):
            edge = Edge(
                terms[in_subjects[position]],
                labels[in_labels[position]],
                term,
            )
            bucket.append(edge_cache[edge])
    return graph


class MappedKnowledgeGraph:
    """Read-only CSR adjacency over a mapped v3 snapshot graph shard.

    Parameters are the mapped arrays exactly as the shard lays them out
    (see :func:`repro.storage.shards.write_graph_shard`); ``vocabulary``
    decodes node ids to entity strings and back.  The instance owns no
    array data — everything stays in the shared mapped pages.
    """

    __slots__ = (
        "_vocabulary",
        "_labels",
        "_label_ids",
        "_label_count_map",
        "out_indptr",
        "out_objects",
        "out_label_ids",
        "in_indptr",
        "in_subjects",
        "in_label_ids",
        "_num_edges",
    )

    def __init__(
        self,
        vocabulary: MappedVocabulary,
        labels: Sequence[str],
        out_indptr,
        out_objects,
        out_labels,
        in_indptr,
        in_subjects,
        in_labels,
    ) -> None:
        self._vocabulary = vocabulary
        self._labels = list(labels)
        self._label_ids: dict[str, int] | None = None
        self._label_count_map: dict[str, int] | None = None
        self.out_indptr = out_indptr
        self.out_objects = out_objects
        self.out_label_ids = out_labels
        self.in_indptr = in_indptr
        self.in_subjects = in_subjects
        self.in_label_ids = in_labels
        self._num_edges = len(out_objects)

    # ------------------------------------------------------------------
    # id-level surface (the CSR fast paths)
    # ------------------------------------------------------------------
    @property
    def vocabulary(self) -> MappedVocabulary:
        """The vocabulary decoding node ids to entity strings."""
        return self._vocabulary

    @property
    def label_strings(self) -> list[str]:
        """Label id → label string (the shard's label table)."""
        return self._labels

    def node_id(self, node: str) -> int | None:
        """The node's dense id, or ``None`` for unknown nodes."""
        entity_id = self._vocabulary.id_of(node)
        if entity_id is None or entity_id >= self.num_nodes:
            return None
        return entity_id

    def term(self, node_id: int) -> str:
        """The entity string of ``node_id``."""
        return self._vocabulary.term_of(node_id)

    def _label_id(self, label: str) -> int | None:
        if self._label_ids is None:
            self._label_ids = {
                label: index for index, label in enumerate(self._labels)
            }
        return self._label_ids.get(label)

    # ------------------------------------------------------------------
    # KnowledgeGraph read API
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the graph."""
        return len(self.out_indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of distinct edges (triples) in the graph."""
        return self._num_edges

    @property
    def num_labels(self) -> int:
        """Number of distinct edge labels."""
        return len(self._labels)

    @property
    def labels(self) -> Iterator[str]:
        """Iterate over the distinct edge labels."""
        return iter(self._labels)

    @property
    def nodes(self) -> Iterator[str]:
        """Iterate over all node identifiers in insertion (= id) order."""
        term_of = self._vocabulary.term_of
        return (term_of(node_id) for node_id in range(self.num_nodes))

    @property
    def edges(self) -> Iterator[Edge]:
        """Iterate every edge (materialized lazily, one at a time)."""
        term_of = self._vocabulary.term_of
        labels = self._labels
        for node_id in range(self.num_nodes):
            subject = term_of(node_id)
            start = int(self.out_indptr[node_id])
            end = int(self.out_indptr[node_id + 1])
            for position in range(start, end):
                yield Edge(
                    subject,
                    labels[int(self.out_label_ids[position])],
                    term_of(int(self.out_objects[position])),
                )

    def has_node(self, node: str) -> bool:
        """Return whether ``node`` is present."""
        return self.node_id(node) is not None

    def has_edge(self, subject: str, label: str, object: str) -> bool:
        """Exact triple membership: a vectorized scan of the subject's slice."""
        subject_id = self.node_id(subject)
        object_id = self.node_id(object)
        label_id = self._label_id(label)
        if subject_id is None or object_id is None or label_id is None:
            return False
        start = int(self.out_indptr[subject_id])
        end = int(self.out_indptr[subject_id + 1])
        if start == end:
            return False
        objects = self.out_objects[start:end]
        label_column = self.out_label_ids[start:end]
        return bool(((objects == object_id) & (label_column == label_id)).any())

    def label_count(self, label: str) -> int:
        """Number of edges bearing ``label`` (0 if unknown)."""
        return self.label_counts().get(label, 0)

    def label_counts(self) -> dict[str, int]:
        """Per-label edge counts (computed once from the label column)."""
        if self._label_count_map is None:
            counts: dict[str, int] = {}
            labels = self._labels
            column = self.out_label_ids
            if len(column):
                import numpy as np

                for label_id, count in enumerate(
                    np.bincount(column, minlength=len(labels))
                ):
                    if count:
                        counts[labels[label_id]] = int(count)
            self._label_count_map = counts
        return dict(self._label_count_map)

    # ------------------------------------------------------------------
    # adjacency (Edge-materializing; the BFS fast path bypasses these)
    # ------------------------------------------------------------------
    def _out_edges_of_id(self, node_id: int) -> list[Edge]:
        term_of = self._vocabulary.term_of
        labels = self._labels
        subject = term_of(node_id)
        start = int(self.out_indptr[node_id])
        end = int(self.out_indptr[node_id + 1])
        return [
            Edge(
                subject,
                labels[int(self.out_label_ids[position])],
                term_of(int(self.out_objects[position])),
            )
            for position in range(start, end)
        ]

    def _in_edges_of_id(self, node_id: int) -> list[Edge]:
        term_of = self._vocabulary.term_of
        labels = self._labels
        object_term = term_of(node_id)
        start = int(self.in_indptr[node_id])
        end = int(self.in_indptr[node_id + 1])
        return [
            Edge(
                term_of(int(self.in_subjects[position])),
                labels[int(self.in_label_ids[position])],
                object_term,
            )
            for position in range(start, end)
        ]

    def out_edges(self, node: str) -> list[Edge]:
        """Edges whose subject is ``node`` (empty list for unknown nodes)."""
        node_id = self.node_id(node)
        return [] if node_id is None else self._out_edges_of_id(node_id)

    def in_edges(self, node: str) -> list[Edge]:
        """Edges whose object is ``node`` (empty list for unknown nodes)."""
        node_id = self.node_id(node)
        return [] if node_id is None else self._in_edges_of_id(node_id)

    def incident_edges(self, node: str) -> list[Edge]:
        """All edges incident on ``node`` (self-loops once), like
        :meth:`KnowledgeGraph.incident_edges`."""
        node_id = self.node_id(node)
        if node_id is None:
            return []
        incident = self._out_edges_of_id(node_id)
        incident.extend(
            edge
            for edge in self._in_edges_of_id(node_id)
            if edge.subject != edge.object
        )
        return incident

    def degree(self, node: str) -> int:
        """Total number of incident edges (self-loops counted once)."""
        return len(self.incident_edges(node))

    def out_degree(self, node: str) -> int:
        """Number of outgoing edges."""
        node_id = self.node_id(node)
        if node_id is None:
            return 0
        return int(self.out_indptr[node_id + 1] - self.out_indptr[node_id])

    def in_degree(self, node: str) -> int:
        """Number of incoming edges."""
        node_id = self.node_id(node)
        if node_id is None:
            return 0
        return int(self.in_indptr[node_id + 1] - self.in_indptr[node_id])

    def neighbors(self, node: str) -> set[str]:
        """Undirected neighbours of ``node`` (excluding ``node`` itself)."""
        node_id = self.node_id(node)
        if node_id is None:
            return set()
        term_of = self._vocabulary.term_of
        adjacent = {
            term_of(neighbor_id) for neighbor_id in self.neighbor_ids(node_id)
        }
        adjacent.discard(node)
        return adjacent

    def neighbor_ids(self, node_id: int) -> list[int]:
        """Undirected neighbor ids, out-slice order then in-slice order."""
        return kernels.csr_neighbors(
            node_id,
            self.out_indptr,
            self.out_objects,
            self.in_indptr,
            self.in_subjects,
        )

    # ------------------------------------------------------------------
    # materialization / pickling
    # ------------------------------------------------------------------
    def _csr_state(self) -> tuple:
        term_of = self._vocabulary.term_of
        return (
            [term_of(node_id) for node_id in range(self.num_nodes)],
            list(self._labels),
            self.out_indptr.tolist(),
            self.out_objects.tolist(),
            self.out_label_ids.tolist(),
            self.in_indptr.tolist(),
            self.in_subjects.tolist(),
            self.in_label_ids.tolist(),
        )

    def to_knowledge_graph(self) -> KnowledgeGraph:
        """Materialize an equivalent owned :class:`KnowledgeGraph`.

        Per-node adjacency list orders are preserved exactly, so a
        materialized copy answers queries byte-identically.
        """
        return _knowledge_graph_from_csr(*self._csr_state())

    # Mapped buffers must never leak into a pickle; a mapped graph
    # serializes as the equivalent owned KnowledgeGraph (v3 → v1 resave,
    # fork-free worker transports).
    def __reduce__(self):
        return (_knowledge_graph_from_csr, self._csr_state())

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Edge):
            return self.has_edge(*item)
        if isinstance(item, str):
            return self.has_node(item)
        return False

    def __len__(self) -> int:
        return self._num_edges

    def __iter__(self) -> Iterator[Edge]:
        return iter(self.edges)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(nodes={self.num_nodes}, "
            f"edges={self.num_edges}, labels={self.num_labels})"
        )
