"""GQBE — Querying Knowledge Graphs by Example Entity Tuples.

A reproduction of the ICDE paper by Jayaram, Khan, Li, Yan and Elmasri.
The top-level package re-exports the public API:

* :class:`~repro.core.gqbe.GQBE` — the system facade,
* :class:`~repro.core.config.GQBEConfig` — configuration,
* :class:`~repro.graph.knowledge_graph.KnowledgeGraph` — the data graph,
* :class:`~repro.core.answer.AnswerTuple` / :class:`~repro.core.answer.QueryResult`
  — query results.
"""

from importlib import metadata as _metadata

from repro.core.answer import AnswerTuple, QueryResult
from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.graph.knowledge_graph import Edge, KnowledgeGraph

# The single source of truth for the version is the package metadata
# (pyproject.toml); a source tree that was never pip-installed has none,
# which the fallback marks explicitly instead of faking a release.
try:
    __version__ = _metadata.version("gqbe-repro")
except _metadata.PackageNotFoundError:  # pragma: no cover - dev checkouts
    __version__ = "0.0.0+uninstalled"

__all__ = [
    "GQBE",
    "GQBEConfig",
    "AnswerTuple",
    "QueryResult",
    "KnowledgeGraph",
    "Edge",
    "__version__",
]
