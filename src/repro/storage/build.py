"""Out-of-core streaming build: triple dump → v3 snapshot in bounded memory.

``GraphStore.build`` materializes the whole :class:`KnowledgeGraph` in
Python objects before saving, which caps the offline phase (paper Sec. V-A)
at graphs that fit in one box's RAM.  :func:`build_streaming_snapshot`
produces the *byte-identical* v3 snapshot directory from a triple file
without ever holding the graph, the vocabulary dict, or more than one
label's columns at a time:

Pass 1 — vocabulary (external merge sort)
    Stream the dump in bounded chunks (:func:`iter_triples_chunked`) and
    record each term's first global occurrence index.  Term buffers spill
    to byte-sorted runs on disk; a k-way merge dedups them (keeping the
    minimum occurrence), a second external sort re-orders the merged terms
    by first occurrence — which *is* the dense-id order the in-memory
    build assigns (``VerticalPartitionStore`` interns nodes in graph
    insertion order: subject before object, duplicates skipped) — and the
    ordered stream is written straight into the v3 vocabulary arena shard
    through :class:`~repro.storage.shards.ShardStreamWriter`.

Pass 2 — tables (spill runs → per-label shards)
    Re-read the dump, map terms to dense ids through the *mapped* arena
    (binary search plus a bounded cache; per-chunk unique-term batching
    keeps lookups off the hot path), and route ``(subject, object, seq)``
    rows to per-label spill runs, each run sorted and locally deduped with
    numpy before it hits disk.

Finalize — per-label k-way merges (parallelizable)
    Each label's runs merge into globally ``(subject, object, seq)``-sorted
    rows; duplicates collapse to their first occurrence, a stable re-sort
    by ``seq`` restores stream order, and the label's table shard is
    written through the same ``write_table_shard`` as the in-memory path —
    so the shard bytes cannot differ.  Workers own disjoint labels
    (``workers > 1`` fans the per-label work out over processes); each
    label also contributes sorted statistics columns and ``(node, seq)``-
    sorted CSR runs, which a final merge streams into the statistics and
    graph shards.  ``MANIFEST.json`` is written last, so a crash at any
    point leaves no torn snapshot — just an unreadable directory.

Memory-budget semantics: ``memory_budget_mb`` bounds the *streaming state*
— read chunks, spill buffers, and the id-lookup cache are all sized from
it.  Three footprints scale with the data instead and are the documented
floor: the O(nodes) int64 arrays behind the arena permutation and CSR
index pointers, the columns of the single largest label while its shard is
written (the same transient the in-memory writer has per label), and the
interpreter + numpy baseline.

The v1/v2 formats have no mapped sections to stream into, so for them the
streaming entry point degrades gracefully: it feeds the chunked reader
into an ordinary in-memory build (still byte-identical — the deduped
stream *is* the graph) and only the v3 path is truly out-of-core.
"""

from __future__ import annotations

import copy
import hashlib
import heapq
import itertools
import json
import mmap
import pickle
import shutil
import struct
import tempfile
import time
from array import array
from pathlib import Path

from repro.exceptions import GraphError, SnapshotError
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.triples import iter_triples_chunked
from repro.storage.shards import (
    MANIFEST_MAGIC,
    MANIFEST_NAME,
    SHARD_MAGIC,
    SHARD_VERSION,
    ShardStreamWriter,
    _SHARD_HEADER,
    _align,
    write_table_shard,
)
from repro.storage.snapshot import _PICKLE_PROTOCOL, GraphStore
from repro.storage.store import VerticalPartitionStore
from repro.storage.table import ColumnarEdgeTable, np
from repro.storage.vocabulary import MappedVocabulary

#: Disk record layouts for the spill files (all little-endian).
_TERM_RECORD = struct.Struct("<IQ")  # term length, occurrence — then term bytes
_OCC_RECORD = struct.Struct("<QQI")  # occurrence, byte rank, term length — then term
_ORDERED_RECORD = struct.Struct("<QI")  # byte rank, term length — then term bytes
_ROW_WIDTH = 3  # (subject_id, object_id, seq) int64 row-run records
_CSR_WIDTH = 4  # (node_id, seq, label_id, other_id) int64 CSR-run records

_DTYPE = "<i8"
_BYTE_DTYPE = "u1"


class BuildPlan:
    """Buffer sizes derived from ``memory_budget_mb``.

    The budget is split across the structures that are live at the same
    time; every figure is clamped to a floor that keeps tiny budgets
    functional (they just spill more).
    """

    def __init__(self, memory_budget_mb: int) -> None:
        if memory_budget_mb <= 0:
            raise SnapshotError(
                f"memory budget must be positive, got {memory_budget_mb} MB"
            )
        budget = memory_budget_mb * 1_000_000
        #: Parsed triples resident per read chunk (~300 B per Triple of
        #: three short strings).
        self.chunk_triples = max(1024, min(budget // 6 // 300, 1_000_000))
        #: Pass-1 term-buffer entries before a spill (~150 B per dict slot
        #: + short string + int).
        self.term_buffer = max(1024, budget // 3 // 150)
        #: Pass-2 buffered rows across all labels before a spill (24 B of
        #: payload per row; array('q') storage, so no per-row objects).
        self.row_buffer = max(1024, budget // 3 // 48)
        #: Bounded term → id cache entries for pass-2 lookups (~120 B per
        #: entry; cleared, not evicted, at the cap).
        self.lookup_cache = max(1024, budget // 6 // 120)
        #: int64 elements per I/O chunk when scanning runs and writing
        #: shard arrays.
        self.io_elements = max(8192, min(budget // 6 // 8, 4_000_000))


# ----------------------------------------------------------------------
# spill-run I/O helpers
# ----------------------------------------------------------------------
def _iter_term_run(path: Path):
    """Yield ``(term_bytes, occurrence)`` records from a byte-sorted run."""
    with open(path, "rb", buffering=1 << 20) as handle:
        while True:
            head = handle.read(_TERM_RECORD.size)
            if not head:
                return
            length, occurrence = _TERM_RECORD.unpack(head)
            yield handle.read(length), occurrence


def _iter_occ_run(path: Path):
    """Yield ``(occurrence, byte_rank, term_bytes)`` from an occ-sorted run."""
    with open(path, "rb", buffering=1 << 20) as handle:
        while True:
            head = handle.read(_OCC_RECORD.size)
            if not head:
                return
            occurrence, rank, length = _OCC_RECORD.unpack(head)
            yield occurrence, rank, handle.read(length)


def _iter_row_segments(path: Path, segments: list[int], io_elements: int):
    """Yield each sorted segment of a label run file as row-tuple iterators."""
    offset = 0
    for rows in segments:
        yield _iter_rows(path, offset, rows, io_elements)
        offset += rows * _ROW_WIDTH * 8


def _iter_rows(path: Path, offset: int, rows: int, io_elements: int):
    """Yield ``(subject, object, seq)`` tuples from one sorted segment."""
    per_read = max(1, io_elements // _ROW_WIDTH)
    with open(path, "rb", buffering=1 << 20) as handle:
        handle.seek(offset)
        remaining = rows
        while remaining:
            take = min(per_read, remaining)
            block = handle.read(take * _ROW_WIDTH * 8)
            chunk = np.frombuffer(block, dtype=np.int64).reshape(-1, _ROW_WIDTH)
            if not len(chunk):
                raise SnapshotError(
                    f"row run {path!s} is shorter than its recorded segments"
                )
            remaining -= len(chunk)
            for row in chunk:
                yield (int(row[0]), int(row[1]), int(row[2]))


def _iter_csr_run(path: Path, io_elements: int):
    """Yield ``(node, seq, label, other)`` tuples from one sorted CSR run."""
    per_read = max(1, io_elements // _CSR_WIDTH)
    with open(path, "rb", buffering=1 << 20) as handle:
        while True:
            block = handle.read(per_read * _CSR_WIDTH * 8)
            if not block:
                return
            chunk = np.frombuffer(block, dtype=np.int64).reshape(-1, _CSR_WIDTH)
            for row in chunk:
                yield (int(row[0]), int(row[1]), int(row[2]), int(row[3]))


# ----------------------------------------------------------------------
# pass 1: external-sort the vocabulary
# ----------------------------------------------------------------------
def _spill_term_run(buffer: dict[str, int], scratch: Path, index: int) -> Path:
    """Write one byte-sorted ``(term, first occurrence)`` run to disk."""
    path = scratch / f"terms.{index:05d}.run"
    items = sorted(
        (term.encode("utf-8"), occurrence) for term, occurrence in buffer.items()
    )
    with open(path, "wb", buffering=1 << 20) as handle:
        for encoded, occurrence in items:
            handle.write(_TERM_RECORD.pack(len(encoded), occurrence))
            handle.write(encoded)
    return path


def _build_vocabulary_arena(
    source: Path,
    fmt: str,
    arena_path: Path,
    scratch: Path,
    plan: BuildPlan,
) -> tuple[dict, int, int]:
    """Pass 1: stream the dump into the v3 vocabulary arena shard.

    Returns ``(manifest entry, term count, raw triple count)``.  Peak
    memory is one term buffer + one occurrence buffer; the only O(nodes)
    structure is the int64 sort permutation the arena itself stores.
    """
    buffer: dict[str, int] = {}
    runs: list[Path] = []
    occurrence = 0
    triples = 0
    for chunk in iter_triples_chunked(source, fmt=fmt, chunk_size=plan.chunk_triples):
        for subject, _, obj in chunk:
            if subject not in buffer:
                buffer[subject] = occurrence
            occurrence += 1
            if obj not in buffer:
                buffer[obj] = occurrence
            occurrence += 1
        triples += len(chunk)
        if len(buffer) >= plan.term_buffer:
            runs.append(_spill_term_run(buffer, scratch, len(runs)))
            buffer = {}
    if buffer:
        runs.append(_spill_term_run(buffer, scratch, len(runs)))
        buffer = {}
    if triples == 0:
        # Match the in-memory path: GraphStatistics refuses empty graphs.
        raise GraphError("cannot compute statistics of an empty graph")

    # Merge the byte-sorted runs: assign each distinct term its rank in
    # UTF-8 byte order (the arena's binary-search permutation) and keep
    # its minimum occurrence, re-spilling sorted-by-occurrence runs for
    # the second external sort.
    occ_runs: list[Path] = []
    occ_buffer: list[tuple[int, int, bytes]] = []
    blob_bytes = 0
    terms = 0

    def spill_occ_buffer() -> None:
        occ_buffer.sort()
        path = scratch / f"occ.{len(occ_runs):05d}.run"
        with open(path, "wb", buffering=1 << 20) as handle:
            for occ, rank, encoded in occ_buffer:
                handle.write(_OCC_RECORD.pack(occ, rank, len(encoded)))
                handle.write(encoded)
        occ_runs.append(path)
        occ_buffer.clear()

    merged = heapq.merge(*(_iter_term_run(path) for path in runs))
    for encoded, group in itertools.groupby(merged, key=lambda item: item[0]):
        first = min(occ for _, occ in group)
        occ_buffer.append((first, terms, encoded))
        blob_bytes += len(encoded)
        terms += 1
        if len(occ_buffer) >= plan.term_buffer:
            spill_occ_buffer()
    if occ_buffer:
        spill_occ_buffer()
    for path in runs:
        path.unlink()

    # Merge by occurrence → terms stream past in dense-id order.  The
    # arena writer needs two scans (offsets + permutation, then the
    # blob), so the merged order lands in one flat file first.
    ordered_path = scratch / "terms.ordered"
    with open(ordered_path, "wb", buffering=1 << 20) as handle:
        for _, rank, encoded in heapq.merge(*(_iter_occ_run(p) for p in occ_runs)):
            handle.write(_ORDERED_RECORD.pack(rank, len(encoded)))
            handle.write(encoded)
    for path in occ_runs:
        path.unlink()

    writer = ShardStreamWriter(
        arena_path,
        {"kind": "vocabulary", "terms": terms},
        [
            ("offsets", terms + 1, _DTYPE),
            ("sorted_ids", terms, _DTYPE),
            ("blob", blob_bytes, _BYTE_DTYPE),
        ],
    )
    # sorted_ids[rank] = id — the inverse permutation, O(terms) int64 by
    # construction (the arena stores exactly this array).
    sorted_ids = np.empty(terms, dtype=np.int64)
    offsets = array("q", [0])
    position = 0
    with open(ordered_path, "rb", buffering=1 << 20) as handle:
        for term_id in range(terms):
            rank, length = _ORDERED_RECORD.unpack(handle.read(_ORDERED_RECORD.size))
            handle.seek(length, 1)
            position += length
            sorted_ids[rank] = term_id
            offsets.append(position)
            if len(offsets) >= plan.io_elements:
                writer.append("offsets", np.frombuffer(offsets, dtype=np.int64))
                offsets = array("q")
    if len(offsets):
        writer.append("offsets", np.frombuffer(offsets, dtype=np.int64))
    writer.append("sorted_ids", sorted_ids)
    del sorted_ids
    blob_chunk = bytearray()
    with open(ordered_path, "rb", buffering=1 << 20) as handle:
        for _ in range(terms):
            _, length = _ORDERED_RECORD.unpack(handle.read(_ORDERED_RECORD.size))
            blob_chunk += handle.read(length)
            if len(blob_chunk) >= plan.io_elements:
                writer.append("blob", np.frombuffer(blob_chunk, dtype=np.uint8))
                blob_chunk = bytearray()
    if blob_chunk:
        writer.append("blob", np.frombuffer(blob_chunk, dtype=np.uint8))
    entry = writer.close()
    ordered_path.unlink()
    return {"terms": terms, **entry}, terms, triples


def _map_arena(path: Path) -> MappedVocabulary:
    """Open the just-written arena shard as a :class:`MappedVocabulary`.

    A private mini-reader: the full :class:`ShardedSnapshotReader` needs a
    manifest, which by design does not exist until the build finishes.
    """
    with open(path, "rb") as handle:
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    magic, version, header_length = _SHARD_HEADER.unpack_from(mapped, 0)
    if magic != SHARD_MAGIC or version != SHARD_VERSION:
        raise SnapshotError(f"freshly written arena {path!s} failed to verify")
    header = json.loads(
        mapped[_SHARD_HEADER.size : _SHARD_HEADER.size + header_length].decode("utf-8")
    )
    base = _align(_SHARD_HEADER.size + header_length)
    views = {}
    for name, entry in header["arrays"].items():
        start = base + entry["offset"]
        dtype = np.uint8 if entry["dtype"] == _BYTE_DTYPE else np.int64
        views[name] = np.frombuffer(
            mapped, dtype=dtype, count=entry["count"], offset=start
        )
    return MappedVocabulary(views["offsets"], views["sorted_ids"], views["blob"])


# ----------------------------------------------------------------------
# pass 2: route rows to per-label spill runs
# ----------------------------------------------------------------------
def _spill_row_buffers(
    buffers: dict[int, array],
    run_dir: Path,
    segments: dict[int, list[int]],
) -> None:
    """Sort, locally dedup, and append every label buffer to its run file."""
    for label_id in sorted(buffers):
        flat = buffers[label_id]
        rows = np.frombuffer(flat, dtype=np.int64).reshape(-1, _ROW_WIDTH)
        order = np.lexsort((rows[:, 2], rows[:, 1], rows[:, 0]))
        rows = rows[order]
        # Duplicates are adjacent after the sort; keep the first (minimum
        # seq) so the eventual stream-order restore matches add_edge's
        # first-wins dedup.
        if len(rows) > 1:
            keep = np.empty(len(rows), dtype=bool)
            keep[0] = True
            keep[1:] = (rows[1:, 0] != rows[:-1, 0]) | (rows[1:, 1] != rows[:-1, 1])
            rows = rows[keep]
        with open(run_dir / f"{label_id:05d}.rows", "ab") as handle:
            handle.write(np.ascontiguousarray(rows).tobytes())
        segments.setdefault(label_id, []).append(len(rows))
    buffers.clear()


def _route_rows(
    source: Path,
    fmt: str,
    vocabulary: MappedVocabulary,
    run_dir: Path,
    plan: BuildPlan,
    expected_triples: int,
) -> tuple[list[str], dict[int, list[int]]]:
    """Pass 2: map terms to ids and spill per-label sorted row runs.

    Returns the labels in first-appearance order (= dense label ids and
    table-shard order, exactly as ``KnowledgeGraph`` label insertion
    produces) and each label's run segment row counts.
    """
    label_ids: dict[str, int] = {}
    segments: dict[int, list[int]] = {}
    buffers: dict[int, array] = {}
    cache: dict[str, int] = {}
    buffered_rows = 0
    seq = 0
    id_of = vocabulary.id_of
    for chunk in iter_triples_chunked(source, fmt=fmt, chunk_size=plan.chunk_triples):
        # Resolve each distinct term in the chunk once: the binary search
        # against the arena is the expensive step, and real dumps repeat
        # terms heavily within a chunk.
        for subject, label, obj in chunk:
            row_ids = []
            for term in (subject, obj):
                term_id = cache.get(term)
                if term_id is None:
                    # Hold resolved ids in row_ids, not the cache: the
                    # clear below may evict the subject while the object
                    # is being resolved.
                    if len(cache) >= plan.lookup_cache:
                        cache.clear()
                    term_id = id_of(term)
                    if term_id is None:
                        raise SnapshotError(
                            f"term {term!r} missing from the pass-1 arena; "
                            "the source changed between streaming passes"
                        )
                    cache[term] = term_id
                row_ids.append(term_id)
            label_id = label_ids.get(label)
            if label_id is None:
                label_id = label_ids.setdefault(label, len(label_ids))
            buffer = buffers.get(label_id)
            if buffer is None:
                buffer = buffers.setdefault(label_id, array("q"))
            buffer.append(row_ids[0])
            buffer.append(row_ids[1])
            buffer.append(seq)
            seq += 1
        buffered_rows += len(chunk)
        if buffered_rows >= plan.row_buffer:
            _spill_row_buffers(buffers, run_dir, segments)
            buffered_rows = 0
    if buffers:
        _spill_row_buffers(buffers, run_dir, segments)
    if seq != expected_triples:
        raise SnapshotError(
            f"source yielded {seq} triples on pass 2 but {expected_triples} "
            "on pass 1; the dump changed while being built"
        )
    return list(label_ids), segments


# ----------------------------------------------------------------------
# finalize: per-label merge → table shard + statistics/CSR runs
# ----------------------------------------------------------------------
def _finalize_label(task: dict) -> dict:
    """Merge one label's runs and write its table shard + side outputs.

    Runs in a worker process when ``workers > 1`` — everything in ``task``
    and the return value is plain picklable data.  Peak memory is the
    label's deduped columns (the same per-label transient the in-memory
    shard writer has).
    """
    label = task["label"]
    run_path = Path(task["run_path"])
    scratch = Path(task["scratch"])
    shard_path = Path(task["shard_path"])
    label_id = task["label_id"]
    io_elements = task["io_elements"]

    merged = heapq.merge(
        *_iter_row_segments(run_path, task["segments"], io_elements)
    )
    subjects = array("q")
    objects = array("q")
    seqs = array("q")
    previous_subject = previous_object = None
    for subject, obj, seq in merged:
        if subject == previous_subject and obj == previous_object:
            continue  # duplicate triple: keep the first occurrence
        previous_subject, previous_object = subject, obj
        subjects.append(subject)
        objects.append(obj)
        seqs.append(seq)
    subjects = np.frombuffer(subjects, dtype=np.int64)
    objects = np.frombuffer(objects, dtype=np.int64)
    seqs = np.frombuffer(seqs, dtype=np.int64)
    # Restore stream order: the in-memory table's row order is the order
    # add_edge saw the (deduped) triples.
    order = np.argsort(seqs, kind="stable")
    final_subjects = np.ascontiguousarray(subjects[order])
    final_objects = np.ascontiguousarray(objects[order])
    table = ColumnarEdgeTable.from_mapped(label, final_subjects, final_objects)
    entry = write_table_shard(shard_path, table)

    # Participation statistics: np.unique returns sorted nodes, so each
    # label contributes pre-sorted (node, count) columns the statistics
    # assembly can k-way merge without re-sorting.  One .npy per column —
    # the assembly opens them with mmap_mode="r" so merging every label
    # at once never materializes more than an I/O chunk per label.
    out_nodes, out_counts = np.unique(final_subjects, return_counts=True)
    in_nodes, in_counts = np.unique(final_objects, return_counts=True)
    stats_prefix = scratch / f"stats.{label_id:05d}"
    np.save(f"{stats_prefix}.out_nodes.npy", out_nodes)
    np.save(f"{stats_prefix}.out_counts.npy", out_counts.astype(np.int64))
    np.save(f"{stats_prefix}.in_nodes.npy", in_nodes)
    np.save(f"{stats_prefix}.in_counts.npy", in_counts.astype(np.int64))

    # CSR runs: this label's rows sorted by (node, seq); the global merge
    # across labels then yields every node's adjacency in stream order —
    # the per-node slice order the in-memory CSR writer preserves.
    label_column = np.full(len(seqs), label_id, dtype=np.int64)
    out_run = scratch / f"csr_out.{label_id:05d}.run"
    out_order = np.lexsort((seqs, subjects))
    np.column_stack(
        (subjects[out_order], seqs[out_order], label_column, objects[out_order])
    ).tofile(out_run)
    in_run = scratch / f"csr_in.{label_id:05d}.run"
    in_order = np.lexsort((seqs, objects))
    np.column_stack(
        (objects[in_order], seqs[in_order], label_column, subjects[in_order])
    ).tofile(in_run)

    return {
        "label": label,
        "label_id": label_id,
        "rows": int(len(seqs)),
        "entry": entry,
        "stats_prefix": str(stats_prefix),
        "csr_out": str(out_run),
        "csr_in": str(in_run),
        "out_entries": int(len(out_nodes)),
        "in_entries": int(len(in_nodes)),
    }


def _run_label_partitions(
    tasks: list[dict], workers: int
) -> list[dict]:
    """Run every per-label finalize task, fanning out when ``workers > 1``.

    Each worker owns disjoint labels (a label is exactly one task), so
    output files never contend and the result is byte-identical for any
    worker count.
    """
    if workers <= 1 or len(tasks) <= 1:
        return [_finalize_label(task) for task in tasks]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        return list(pool.map(_finalize_label, tasks, chunksize=1))


# ----------------------------------------------------------------------
# finalize: statistics + graph CSR shards
# ----------------------------------------------------------------------
def _iter_stat_column(
    prefix: str, direction: str, stride: int, stat_label_id: int, io_elements: int
):
    """Yield sorted ``(composite key, count)`` pairs for one label column.

    The columns open as read-only memmaps, so merging every label's
    stream at once keeps only an I/O chunk per label resident.
    """
    nodes = np.load(f"{prefix}.{direction}_nodes.npy", mmap_mode="r")
    counts = np.load(f"{prefix}.{direction}_counts.npy", mmap_mode="r")
    for start in range(0, len(nodes), io_elements):
        keys = nodes[start : start + io_elements] * stride + stat_label_id
        values = np.asarray(counts[start : start + io_elements])
        for index in range(len(keys)):
            yield int(keys[index]), int(values[index])


def _write_statistics_shard_streaming(
    path: Path,
    results: list[dict],
    labels: list[str],
    scratch: Path,
    plan: BuildPlan,
) -> dict:
    """Stream the per-label sorted stat columns into the statistics shard.

    Reproduces ``write_statistics_shard`` byte-for-byte: stat labels are
    sorted alphabetically, composite keys are ``node * num_labels +
    label`` in globally sorted order (unique by construction, so a k-way
    merge of the per-label sorted columns is exactly the in-memory sort).
    The counts column trails its keys column in the shard layout, so the
    merge streams keys to the writer directly and spools counts to a
    scratch file scanned back afterwards — never a whole column in memory.
    """
    stat_labels = sorted(labels)
    stat_ids = {label: index for index, label in enumerate(stat_labels)}
    stride = max(len(stat_labels), 1)
    out_total = sum(result["out_entries"] for result in results)
    in_total = sum(result["in_entries"] for result in results)
    writer = ShardStreamWriter(
        path,
        {"kind": "statistics", "labels": stat_labels},
        [
            ("out_keys", out_total, _DTYPE),
            ("out_counts", out_total, _DTYPE),
            ("in_keys", in_total, _DTYPE),
            ("in_counts", in_total, _DTYPE),
        ],
    )
    for direction in ("out", "in"):
        streams = [
            _iter_stat_column(
                result["stats_prefix"],
                direction,
                stride,
                stat_ids[result["label"]],
                plan.io_elements,
            )
            for result in results
        ]
        spool_path = scratch / f"stats_{direction}.counts"
        keys_buffer = array("q")
        counts_buffer = array("q")
        with open(spool_path, "wb", buffering=1 << 20) as spool:
            for key, count in heapq.merge(*streams):
                keys_buffer.append(key)
                counts_buffer.append(count)
                if len(keys_buffer) >= plan.io_elements:
                    writer.append(
                        f"{direction}_keys", np.frombuffer(keys_buffer, dtype=np.int64)
                    )
                    spool.write(counts_buffer.tobytes())
                    keys_buffer = array("q")
                    counts_buffer = array("q")
            if len(keys_buffer):
                writer.append(
                    f"{direction}_keys", np.frombuffer(keys_buffer, dtype=np.int64)
                )
                spool.write(counts_buffer.tobytes())
        with open(spool_path, "rb", buffering=1 << 20) as spool:
            while True:
                block = spool.read(plan.io_elements * 8)
                if not block:
                    break
                writer.append(
                    f"{direction}_counts", np.frombuffer(block, dtype=np.int64)
                )
        spool_path.unlink()
    entry = writer.close()
    return {"entries": int(out_total + in_total), **entry}


def _write_graph_shard_streaming(
    path: Path,
    results: list[dict],
    labels: list[str],
    num_nodes: int,
    num_edges: int,
    scratch: Path,
    plan: BuildPlan,
) -> dict:
    """Merge the per-label CSR runs into the graph CSR shard.

    Index pointers come from per-label degree histograms (O(nodes) int64,
    the documented floor); the adjacency columns stream through a single
    global ``(node, seq)`` merge per direction, spooled to one flat file
    so the two column arrays can be written in catalog order.
    """
    writer = ShardStreamWriter(
        path,
        {"kind": "graph", "nodes": num_nodes, "edges": num_edges, "labels": labels},
        [
            ("out_indptr", num_nodes + 1, _DTYPE),
            ("out_objects", num_edges, _DTYPE),
            ("out_labels", num_edges, _DTYPE),
            ("in_indptr", num_nodes + 1, _DTYPE),
            ("in_subjects", num_edges, _DTYPE),
            ("in_labels", num_edges, _DTYPE),
        ],
    )
    for direction, other_name in (("out", "out_objects"), ("in", "in_subjects")):
        degrees = np.zeros(num_nodes, dtype=np.int64)
        for result in results:
            prefix = result["stats_prefix"]
            nodes = np.load(f"{prefix}.{direction}_nodes.npy", mmap_mode="r")
            counts = np.load(f"{prefix}.{direction}_counts.npy", mmap_mode="r")
            degrees[nodes] += counts
        indptr = np.empty(num_nodes + 1, dtype=np.int64)
        indptr[0] = 0
        np.cumsum(degrees, out=indptr[1:])
        del degrees
        writer.append(f"{direction}_indptr", indptr)
        del indptr

        merged_path = scratch / f"csr_{direction}.merged"
        buffer = array("q")
        with open(merged_path, "wb", buffering=1 << 20) as handle:
            for row in heapq.merge(
                *(
                    _iter_csr_run(Path(result[f"csr_{direction}"]), plan.io_elements)
                    for result in results
                )
            ):
                buffer.extend(row)
                if len(buffer) >= plan.io_elements:
                    handle.write(buffer.tobytes())
                    buffer = array("q")
            if len(buffer):
                handle.write(buffer.tobytes())
        per_read = max(1, plan.io_elements // _CSR_WIDTH)
        for array_name, column in ((other_name, 3), (f"{direction}_labels", 2)):
            with open(merged_path, "rb", buffering=1 << 20) as handle:
                while True:
                    block = handle.read(per_read * _CSR_WIDTH * 8)
                    if not block:
                        break
                    chunk = np.frombuffer(block, dtype=np.int64).reshape(
                        -1, _CSR_WIDTH
                    )
                    writer.append(array_name, np.ascontiguousarray(chunk[:, column]))
        merged_path.unlink()
    entry = writer.close()
    return {"nodes": num_nodes, "edges": num_edges, **entry}


# ----------------------------------------------------------------------
# sections + manifest (mirrors GraphStore._save_sharded byte-for-byte)
# ----------------------------------------------------------------------
def _store_skeleton_bytes() -> bytes:
    """The pickled v3 store skeleton, byte-identical to the in-memory save.

    ``_save_sharded`` pickles a copy of the built store with its tables,
    vocabulary and lazy state stripped — which leaves only the constructor
    defaults.  Building one from an empty graph reproduces the identical
    ``__dict__`` (same keys, same insertion order, same values).
    """
    skeleton = copy.copy(VerticalPartitionStore(KnowledgeGraph()))
    skeleton._tables = {}
    skeleton._lazy_loader = None
    skeleton._lazy_rows = None
    skeleton._vocabulary = None
    return pickle.dumps(skeleton, protocol=_PICKLE_PROTOCOL)


def _write_v3_snapshot(
    source: Path,
    output: Path,
    fmt: str,
    workers: int,
    plan: BuildPlan,
    scratch: Path,
    report: dict,
) -> None:
    """The out-of-core v3 pipeline (see the module docstring for stages)."""
    output.mkdir(parents=True, exist_ok=True)
    (output / "tables").mkdir(exist_ok=True)
    run_dir = scratch / "rows"
    run_dir.mkdir()

    started = time.perf_counter()
    vocabulary_entry, num_nodes, total_triples = _build_vocabulary_arena(
        source, fmt, output / "vocabulary.arena", scratch, plan
    )
    vocabulary_entry["file"] = "vocabulary.arena"
    report["pass1_seconds"] = time.perf_counter() - started
    report["triples_read"] = total_triples
    report["nodes"] = num_nodes

    started = time.perf_counter()
    vocabulary = _map_arena(output / "vocabulary.arena")
    labels, segments = _route_rows(
        source, fmt, vocabulary, run_dir, plan, total_triples
    )
    report["pass2_seconds"] = time.perf_counter() - started
    report["spill_runs"] = sum(len(runs) for runs in segments.values())

    started = time.perf_counter()
    tasks = [
        {
            "label": label,
            "label_id": label_id,
            "run_path": str(run_dir / f"{label_id:05d}.rows"),
            "segments": segments[label_id],
            "scratch": str(scratch),
            # Table order is label first-appearance order — identical to
            # the in-memory save's enumerate(store.labels()).
            "shard_path": str(output / "tables" / f"{label_id:05d}.shard"),
            "io_elements": plan.io_elements,
        }
        for label_id, label in enumerate(labels)
    ]
    results = _run_label_partitions(tasks, workers)
    results.sort(key=lambda result: result["label_id"])
    num_edges = sum(result["rows"] for result in results)
    report["finalize_labels_seconds"] = time.perf_counter() - started
    report["edges"] = num_edges
    report["labels"] = len(labels)
    report["duplicates"] = total_triples - num_edges

    started = time.perf_counter()
    sections: dict[str, dict] = {}
    total = 0
    statistics_header = {
        "kind": "mapped-statistics",
        "total_edges": num_edges,
        "label_counts": {
            result["label"]: result["rows"] for result in results
        },
    }
    payloads = [
        ("statistics", pickle.dumps(statistics_header, protocol=_PICKLE_PROTOCOL)),
        ("store", _store_skeleton_bytes()),
    ]
    for name, payload in payloads:
        file_name = f"{name}.section"
        (output / file_name).write_bytes(payload)
        sections[name] = {
            "file": file_name,
            "bytes": len(payload),
            "sha256": hashlib.sha256(payload).hexdigest(),
        }
        total += len(payload)

    manifest = {
        "magic": MANIFEST_MAGIC,
        "format_version": 3,
        "pickle_protocol": _PICKLE_PROTOCOL,
        "meta": {
            "intern_entities": True,
            "columnar": True,
            "num_nodes": num_nodes,
            "num_edges": num_edges,
            "num_labels": len(labels),
        },
        "sections": sections,
    }
    manifest["vocabulary"] = vocabulary_entry
    total += vocabulary_entry["bytes"]

    graph_entry = _write_graph_shard_streaming(
        output / "graph.csr", results, labels, num_nodes, num_edges, scratch, plan
    )
    graph_entry["file"] = "graph.csr"
    manifest["graph"] = graph_entry
    total += graph_entry["bytes"]

    statistics_entry = _write_statistics_shard_streaming(
        output / "statistics.counts", results, labels, scratch, plan
    )
    statistics_entry["file"] = "statistics.counts"
    manifest["statistics_counts"] = statistics_entry
    total += statistics_entry["bytes"]

    tables = []
    for result in results:
        entry = {
            "label": result["label"],
            "rows": result["rows"],
            **result["entry"],
        }
        entry["file"] = f"tables/{result['label_id']:05d}.shard"
        tables.append(entry)
        total += entry["bytes"]
    manifest["tables"] = tables

    # The manifest is the commit point: until this write lands, the
    # directory is an unreadable work area, never a torn snapshot.
    manifest_bytes = json.dumps(manifest, indent=1, sort_keys=True).encode("utf-8")
    (output / MANIFEST_NAME).write_bytes(manifest_bytes)
    report["finalize_shards_seconds"] = time.perf_counter() - started
    report["bytes_written"] = total + len(manifest_bytes)


def build_streaming_snapshot(
    source: str | Path,
    output: str | Path,
    *,
    fmt: str = "auto",
    snapshot_format: str = "v3",
    workers: int = 1,
    memory_budget_mb: int = 256,
    tmp_dir: str | Path | None = None,
) -> dict:
    """Build a snapshot from a triple dump without materializing the graph.

    Parameters mirror ``gqbe build-index --streaming``: ``fmt`` is the
    triple file format (``auto`` sniffs, ``.gz`` decompresses
    transparently), ``workers`` fans the per-label shard writers out over
    processes, and ``memory_budget_mb`` bounds the streaming state (see
    the module docstring for exactly what scales with data instead).

    Only ``v3`` streams; ``v1``/``v2`` have no mapped layout to stream
    into, so they build in memory from the same chunked reader (identical
    output, without the bounded-memory property).  Returns a report dict
    with row counts, per-stage timings and spill statistics.  The output
    is byte-identical to ``GraphStore.build`` + ``save`` over
    ``load_graph`` of the same dump — the repo's standing equivalence
    discipline, enforced by ``tests/test_streaming_build.py``.
    """
    if np is None:  # pragma: no cover - numpy-less installs only
        raise SnapshotError("the streaming build requires numpy")
    source = Path(source)
    output = Path(output)
    if snapshot_format not in ("v1", "v2", "v3"):
        raise SnapshotError(
            f"unknown snapshot format {snapshot_format!r}; choose v1, v2 or v3"
        )
    plan = BuildPlan(memory_budget_mb)
    report: dict = {
        "format": snapshot_format,
        "streaming": snapshot_format == "v3",
        "workers": workers,
        "memory_budget_mb": memory_budget_mb,
    }
    overall = time.perf_counter()
    if snapshot_format in ("v1", "v2"):
        graph = KnowledgeGraph()
        triples = 0
        for chunk in iter_triples_chunked(
            source, fmt=fmt, chunk_size=plan.chunk_triples
        ):
            for subject, label, obj in chunk:
                graph.add_edge(subject, label, obj)
            triples += len(chunk)
        bundle = GraphStore.build(graph)
        report["bytes_written"] = bundle.save(output, format=snapshot_format)
        report["triples_read"] = triples
        report["nodes"] = graph.num_nodes
        report["edges"] = graph.num_edges
        report["labels"] = graph.num_labels
        report["duplicates"] = triples - graph.num_edges
        report["spill_runs"] = 0
        report["total_seconds"] = time.perf_counter() - overall
        return report

    scratch = Path(
        tempfile.mkdtemp(
            prefix="gqbe-build-",
            dir=str(tmp_dir) if tmp_dir is not None else str(output.parent),
        )
    )
    try:
        _write_v3_snapshot(source, output, fmt, workers, plan, scratch, report)
    except OSError as error:
        raise SnapshotError(
            f"streaming build of {output!s} failed: {error}"
        ) from error
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    report["total_seconds"] = time.perf_counter() - overall
    return report
