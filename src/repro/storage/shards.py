"""Sharded snapshot formats v2/v3: a directory of memory-mappable shards.

The v1 snapshot (:mod:`repro.storage.snapshot`) is one pickle-backed
file: loading deserializes every edge table into private process memory,
so a graph must fit in RAM per process and every serving worker pays a
full copy.  Format v2 splits the offline state into a *directory* of
independently verifiable shards:

``MANIFEST.json``
    The envelope: magic, format version, the snapshot ``meta`` mapping,
    and a catalog of every other file with its SHA-256 digest, byte size
    and (for table shards) label and row count.  Reading the manifest is
    the whole cost of opening a sharded snapshot.
``graph.section`` / ``statistics.section`` / ``store.section``
    Independent pickles of the three v1 sections — except that the store
    section is a *skeleton*: vocabulary, engine flags, no tables.  Each
    deserializes lazily on first access, exactly like the v1 blobs.
``tables/NNNNN.shard``
    One binary shard per label's
    :class:`~repro.storage.table.ColumnarEdgeTable`: the two int64 id
    columns **plus the persisted probe indexes** (both CSR-style sorted
    group indexes and the pair-membership index), written as raw
    little-endian arrays at 64-byte-aligned offsets.  A shard is opened
    with one ``mmap`` and the arrays become zero-copy read-only
    ``np.frombuffer`` views — no deserialization, no sorting, no copy —
    so N worker processes mapping the same snapshot share one set of
    physical pages, and a label table that no query probes is never
    faulted in at all.

Format **v3** maps the two sections v2 still pickled:

``vocabulary.arena``
    The entity vocabulary as a string arena: every term's UTF-8 bytes
    concatenated in id order (``blob``), an int64 offset column
    (``offsets``, ``n + 1`` entries) and a byte-order sort permutation
    of the ids (``sorted_ids``).  Reopens as a zero-copy
    :class:`~repro.storage.vocabulary.MappedVocabulary`: ``term_of`` is
    an offset slice, ``id_of`` a binary search — no dict rebuild.
``graph.csr``
    The data graph as CSR adjacency over the interned ids: ``out_indptr``
    / ``out_objects`` / ``out_labels`` and ``in_indptr`` / ``in_subjects``
    / ``in_labels`` (label ids index the label list carried in the shard
    header).  Per-node slices preserve the original adjacency-list
    orders, which is what keeps neighborhood extraction — and therefore
    every ranked answer — byte-identical to the pickled graph.  Reopens
    as a :class:`~repro.graph.mapped.MappedKnowledgeGraph`.

A v3 directory has **no** ``graph.section`` and its ``store.section``
skeleton carries no vocabulary, so the only per-worker private memory
left is the (comparatively small) statistics section plus interpreter
state.  v2 directories keep loading unchanged.

Shard binary layout (little-endian)::

    offset  size  field
    0       8     magic ``b"GQBESHRD"``
    8       4     shard format version (uint32, currently 1)
    12      4     header JSON length H (uint32)
    16      H     header JSON (kind-specific fields + array catalog)
    ...           arrays, each starting at a 64-byte-aligned offset

The header's ``arrays`` mapping gives each array's item count, byte
offset *relative to the data base* — the first 64-byte boundary after
the header — and dtype (``"<i8"`` int64, the default, or ``"u1"`` raw
bytes for the vocabulary blob), so header length and array layout never
depend on each other.

Integrity: every file's SHA-256 is recorded in the manifest.  Sections
are verified when they deserialize; a binary shard is verified the first
time it is opened (one streamed read that also warms the page cache),
then structurally validated (offset bounds, CSR monotonicity) before any
view is handed out, so corruption is still caught per shard without
forcing an eager read of shards the workload never touches.  Like v1,
the section pickles are **trusted local artifacts** — load only
snapshots you built yourself.

Opened shards are hinted with ``madvise(MADV_WILLNEED)`` (where the
platform supports it) so the kernel reads ahead while the engine is
still planning; the store issues the open itself for every label a join
plan is about to probe (see
:meth:`~repro.storage.store.VerticalPartitionStore.prefetch_labels`).
"""

from __future__ import annotations

import hashlib
import json
import mmap
import struct
from collections.abc import Callable, Sequence
from os import PathLike
from pathlib import Path

from repro.exceptions import SnapshotError
from repro.graph.delta import DeltaKnowledgeGraph
from repro.graph.mapped import MappedKnowledgeGraph
from repro.storage.table import ColumnarEdgeTable, _SortedGroupIndex, np
from repro.storage.vocabulary import MappedVocabulary

SHARD_MAGIC = b"GQBESHRD"
SHARD_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"
MANIFEST_MAGIC = "GQBESNAP2"
#: Every sharded-directory format this build reads (the writer emits the
#: version ``GraphStore.save`` was asked for: 2 or 3).
SUPPORTED_SHARDED_VERSIONS = (2, 3)
_ALIGNMENT = 64
_SHARD_HEADER = struct.Struct("<8sII")

#: int64, little-endian — the default dtype of a shard array.
_DTYPE = "<i8"
#: Raw bytes — the vocabulary blob's dtype.
_BYTE_DTYPE = "u1"
_ITEMSIZES = {_DTYPE: 8, _BYTE_DTYPE: 1}


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(1 << 20)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
class ShardStreamWriter:
    """Incrementally write one binary shard without materializing it.

    The array catalog — ``(name, count, dtype)`` per array, in file order —
    must be declared up front (the header JSON embeds every offset), but the
    array *contents* are then appended chunk by chunk, so peak memory is one
    chunk rather than one shard.  The byte layout (header struct, catalog
    JSON, 64-byte-aligned zero-padded arrays) is identical to what the
    one-shot :func:`_write_shard_file` produced historically; that function
    is now a thin wrapper over this class, which is what pins the streaming
    build's shards byte-identical to the in-memory build's.

    Chunks must arrive in catalog order; ``close`` verifies every declared
    element was written and returns the manifest entry.  A shard left behind
    by a crash is harmless — the snapshot manifest is always written last.
    """

    def __init__(
        self,
        path: Path,
        header_fields: dict,
        array_specs: Sequence[tuple[str, int, str]],
    ) -> None:
        catalog: dict[str, dict] = {}
        relative = 0
        for name, count, dtype in array_specs:
            if dtype not in _ITEMSIZES:
                raise SnapshotError(f"unknown shard array dtype {dtype!r}")
            if name in catalog:
                raise SnapshotError(f"duplicate shard array name {name!r}")
            relative = _align(relative)
            catalog[name] = {
                "offset": relative,
                "count": int(count),
                "dtype": dtype,
            }
            relative += int(count) * _ITEMSIZES[dtype]
        header_bytes = json.dumps(
            {**header_fields, "arrays": catalog}, sort_keys=True
        ).encode("utf-8")
        self._base = _align(_SHARD_HEADER.size + len(header_bytes))
        self._total = self._base + relative
        self._catalog = catalog
        self._order = [name for name, _, _ in array_specs]
        self._cursor = 0  # index into _order
        self._written = 0  # elements written into the current array
        self._digest = hashlib.sha256()
        self._position = 0
        self._handle = open(path, "wb")
        prefix = bytearray(self._base)
        _SHARD_HEADER.pack_into(
            prefix, 0, SHARD_MAGIC, SHARD_VERSION, len(header_bytes)
        )
        prefix[_SHARD_HEADER.size : _SHARD_HEADER.size + len(header_bytes)] = (
            header_bytes
        )
        self._emit(bytes(prefix))

    def _emit(self, data: bytes) -> None:
        self._handle.write(data)
        self._digest.update(data)
        self._position += len(data)

    def _pad_to(self, target: int) -> None:
        if target > self._position:
            self._emit(bytes(target - self._position))

    def _finish_current(self) -> None:
        """Assert the current array is complete and advance past it."""
        name = self._order[self._cursor]
        expected = self._catalog[name]["count"]
        if self._written != expected:
            raise SnapshotError(
                f"shard array {name!r} is incomplete: declared {expected} "
                f"elements, got {self._written}"
            )
        self._cursor += 1
        self._written = 0

    def append(self, name: str, data: "np.ndarray") -> None:
        """Append a chunk of array ``name`` (arrays strictly in catalog order)."""
        while self._cursor < len(self._order) and self._order[self._cursor] != name:
            self._finish_current()
        if self._cursor >= len(self._order):
            raise SnapshotError(f"shard array {name!r} is not in the catalog")
        entry = self._catalog[name]
        itemsize = _ITEMSIZES[entry["dtype"]]
        chunk = np.ascontiguousarray(
            data, dtype=np.uint8 if itemsize == 1 else np.int64
        )
        if self._written == 0:
            self._pad_to(self._base + entry["offset"])
        if self._written + len(chunk) > entry["count"]:
            raise SnapshotError(
                f"shard array {name!r} overflows its declared count "
                f"({entry['count']})"
            )
        self._emit(chunk.tobytes())
        self._written += len(chunk)

    def close(self) -> dict:
        """Finish the shard; returns ``{"bytes", "sha256"}`` for the manifest."""
        while self._cursor < len(self._order):
            self._finish_current()
        self._pad_to(self._total)
        self._handle.close()
        return {"bytes": self._total, "sha256": self._digest.hexdigest()}

    def abort(self) -> None:
        """Close the file handle without completeness checks (error paths)."""
        self._handle.close()


def _write_shard_file(
    path: Path, header_fields: dict, arrays: dict[str, "np.ndarray"]
) -> dict:
    """Write one binary shard; returns ``{"bytes", "sha256"}`` for the manifest.

    ``arrays`` may mix int64 and uint8 (byte-blob) arrays; each lands at
    a 64-byte-aligned offset and is cataloged in the header JSON with its
    dtype, so readers never guess a layout.
    """
    specs = [
        (name, len(data), _BYTE_DTYPE if data.dtype.itemsize == 1 else _DTYPE)
        for name, data in arrays.items()
    ]
    writer = ShardStreamWriter(path, header_fields, specs)
    try:
        for name, data in arrays.items():
            writer.append(name, data)
    # gqbe: ignore[EXC001] -- last-resort net: whatever append raises
    # (I/O failure, bad array shape), the half-written shard file must be
    # closed before the error propagates; the exception itself is re-raised.
    except Exception:
        writer.abort()
        raise
    return writer.close()


def _table_arrays(table: ColumnarEdgeTable) -> tuple[dict[str, "np.ndarray"], int]:
    """The arrays a shard persists for ``table`` (indexes prebuilt)."""
    table.build_indexes()
    arrays: dict[str, np.ndarray] = {
        "subjects": np.ascontiguousarray(table.subject_ids(), dtype=_DTYPE),
        "objects": np.ascontiguousarray(table.object_ids(), dtype=_DTYPE),
    }
    pair_stride = 0
    if len(table):
        subject_index = table._subject_group_index()
        object_index = table._object_group_index()
        table._ensure_pair_index()
        arrays["subject_order"] = np.ascontiguousarray(subject_index.order, dtype=_DTYPE)
        arrays["subject_keys"] = np.ascontiguousarray(subject_index.keys, dtype=_DTYPE)
        arrays["subject_bounds"] = np.ascontiguousarray(subject_index.bounds, dtype=_DTYPE)
        arrays["object_order"] = np.ascontiguousarray(object_index.order, dtype=_DTYPE)
        arrays["object_keys"] = np.ascontiguousarray(object_index.keys, dtype=_DTYPE)
        arrays["object_bounds"] = np.ascontiguousarray(object_index.bounds, dtype=_DTYPE)
        arrays["pair_keys"] = np.ascontiguousarray(table._pair_keys, dtype=_DTYPE)
        pair_stride = table._pair_stride
    return arrays, pair_stride


def write_table_shard(path: Path, table: ColumnarEdgeTable) -> dict:
    """Write one label table as a binary shard; returns its catalog entry.

    The returned mapping (file-relative name excluded — the caller knows
    where it put the file) carries ``sha256``, ``bytes``, ``rows`` and
    ``label`` for the manifest.
    """
    arrays, pair_stride = _table_arrays(table)
    entry = _write_shard_file(
        path,
        {
            "label": table.label,
            "rows": len(table),
            "pair_stride": int(pair_stride),
        },
        arrays,
    )
    return {"label": table.label, "rows": len(table), **entry}


def write_vocabulary_shard(path: Path, vocabulary) -> dict:
    """Write a vocabulary as a mapped string arena; returns its manifest entry.

    ``vocabulary`` is anything iterating its terms in id order
    (:class:`~repro.storage.vocabulary.Vocabulary` or a
    :class:`~repro.storage.vocabulary.MappedVocabulary` being resaved).
    """
    encoded = [term.encode("utf-8") for term in vocabulary]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    if encoded:
        np.cumsum([len(term) for term in encoded], out=offsets[1:])
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8)
    # Sorted by UTF-8 bytes (not str order — they differ beyond ASCII);
    # id_of binary-searches this permutation against encoded probes.
    sorted_ids = np.array(
        sorted(range(len(encoded)), key=encoded.__getitem__), dtype=np.int64
    )
    entry = _write_shard_file(
        path,
        {"kind": "vocabulary", "terms": len(encoded)},
        {"offsets": offsets, "sorted_ids": sorted_ids, "blob": blob},
    )
    return {"terms": len(encoded), **entry}


def _encode_count_column(
    items, vocabulary, label_ids: dict[str, int], num_labels: int
) -> tuple["np.ndarray", "np.ndarray"]:
    """Sorted (composite key, count) columns for one participation dict."""
    pairs = []
    for (term, label), count in items:
        node_id = vocabulary.id_of(term)
        if node_id is None:
            raise SnapshotError(
                "cannot write a statistics shard: participation count "
                f"references entity {term!r}, which is not in the "
                "vocabulary (the statistics and store do not belong "
                "together)"
            )
        pairs.append((node_id * num_labels + label_ids[label], int(count)))
    pairs.sort()
    keys = np.array([key for key, _ in pairs], dtype=np.int64)
    counts = np.array([count for _, count in pairs], dtype=np.int64)
    return keys, counts


def write_statistics_shard(path: Path, out_counts, in_counts, vocabulary) -> dict:
    """Write the (node, label) participation counts as mapped columns.

    ``out_counts`` / ``in_counts`` are the statistics' two participation
    dicts (or mapped views being resaved — anything with ``.items()``
    over ``((term, label), count)``).  Each becomes a pair of int64
    columns — composite keys ``node_id * num_labels + label_id`` in
    sorted order, and the counts — that reopen as zero-copy binary-
    searchable views; the label list rides in the shard header.
    """
    labels = sorted(
        {label for (_, label), _ in out_counts.items()}
        | {label for (_, label), _ in in_counts.items()}
    )
    label_ids = {label: index for index, label in enumerate(labels)}
    num_labels = max(len(labels), 1)
    out_keys, out_values = _encode_count_column(
        out_counts.items(), vocabulary, label_ids, num_labels
    )
    in_keys, in_values = _encode_count_column(
        in_counts.items(), vocabulary, label_ids, num_labels
    )
    entry = _write_shard_file(
        path,
        {"kind": "statistics", "labels": labels},
        {
            "out_keys": out_keys,
            "out_counts": out_values,
            "in_keys": in_keys,
            "in_counts": in_values,
        },
    )
    return {"entries": int(len(out_keys) + len(in_keys)), **entry}


def _graph_csr_arrays(graph, vocabulary) -> tuple[list[str], dict[str, "np.ndarray"]]:
    """CSR adjacency arrays for ``graph`` over ``vocabulary`` ids.

    Per-node slices preserve the graph's adjacency-list orders — the
    invariant that keeps mapped neighborhood extraction byte-identical.
    """
    if isinstance(graph, MappedKnowledgeGraph):
        return list(graph.label_strings), {
            "out_indptr": np.ascontiguousarray(graph.out_indptr, dtype=_DTYPE),
            "out_objects": np.ascontiguousarray(graph.out_objects, dtype=_DTYPE),
            "out_labels": np.ascontiguousarray(graph.out_label_ids, dtype=_DTYPE),
            "in_indptr": np.ascontiguousarray(graph.in_indptr, dtype=_DTYPE),
            "in_subjects": np.ascontiguousarray(graph.in_subjects, dtype=_DTYPE),
            "in_labels": np.ascontiguousarray(graph.in_label_ids, dtype=_DTYPE),
        }
    if isinstance(graph, DeltaKnowledgeGraph):
        # Compaction: fold the delta overlay back into CSR columns.  The
        # merged per-node order (base slice, then delta appends) is the
        # order every live reader saw, so the compacted generation keeps
        # answering byte-identically.
        labels, out_indptr, out_objects, out_labels, in_indptr, in_subjects, in_labels = (
            graph.csr_lists()
        )
        return labels, {
            "out_indptr": np.array(out_indptr, dtype=_DTYPE),
            "out_objects": np.array(out_objects, dtype=_DTYPE),
            "out_labels": np.array(out_labels, dtype=_DTYPE),
            "in_indptr": np.array(in_indptr, dtype=_DTYPE),
            "in_subjects": np.array(in_subjects, dtype=_DTYPE),
            "in_labels": np.array(in_labels, dtype=_DTYPE),
        }
    labels = list(graph.labels)
    label_ids = {label: index for index, label in enumerate(labels)}
    num_nodes = graph.num_nodes
    id_of = vocabulary.id_of
    term_of = vocabulary.term_of
    out_adjacency = graph.out_adjacency
    in_adjacency = graph.in_adjacency
    out_indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    in_indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    out_objects: list[int] = []
    out_labels: list[int] = []
    in_subjects: list[int] = []
    in_labels: list[int] = []
    for node_id in range(num_nodes):
        term = term_of(node_id)
        for edge in out_adjacency.get(term, ()):
            out_objects.append(id_of(edge.object))
            out_labels.append(label_ids[edge.label])
        out_indptr[node_id + 1] = len(out_objects)
        for edge in in_adjacency.get(term, ()):
            in_subjects.append(id_of(edge.subject))
            in_labels.append(label_ids[edge.label])
        in_indptr[node_id + 1] = len(in_subjects)
    return labels, {
        "out_indptr": out_indptr,
        "out_objects": np.array(out_objects, dtype=np.int64),
        "out_labels": np.array(out_labels, dtype=np.int64),
        "in_indptr": in_indptr,
        "in_subjects": np.array(in_subjects, dtype=np.int64),
        "in_labels": np.array(in_labels, dtype=np.int64),
    }


def write_graph_shard(path: Path, graph, vocabulary) -> dict:
    """Write the data graph as a CSR adjacency shard; returns its entry.

    Node ids are ``vocabulary`` ids, so the graph shard and the
    vocabulary arena of one snapshot decode each other; the label list
    rides in the shard header.
    """
    if len(vocabulary) < graph.num_nodes:
        raise SnapshotError(
            "cannot write a graph CSR shard: the vocabulary has "
            f"{len(vocabulary)} terms but the graph has {graph.num_nodes} "
            "nodes (the store and graph do not belong together)"
        )
    labels, arrays = _graph_csr_arrays(graph, vocabulary)
    entry = _write_shard_file(
        path,
        {
            "kind": "graph",
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "labels": labels,
        },
        arrays,
    )
    return {"nodes": graph.num_nodes, "edges": graph.num_edges, **entry}


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
def _close_quietly(mapped: mmap.mmap) -> None:
    """Close a map unless numpy views still reference it (GC frees it then)."""
    try:
        mapped.close()
    except BufferError:  # views created before validation failed still exist
        pass


class ShardedSnapshotReader:
    """Opens a v2/v3 snapshot directory and hands out sections and shards.

    Construction reads and validates only ``MANIFEST.json``.  Sections,
    table shards and (v3) the vocabulary arena / graph CSR load lazily
    through :meth:`load_section` / :meth:`load_table` /
    :meth:`load_vocabulary` / :meth:`load_graph`; the reader counts what
    it opened (:attr:`tables_opened`, :attr:`opened_labels`,
    :attr:`sections_loaded`) so tests and ``/stats`` can prove that a
    warm start touched nothing it did not need.
    """

    def __init__(self, directory: str | PathLike, prefetch: bool = True) -> None:
        self.directory = Path(directory)
        self.prefetch = prefetch
        manifest_path = self.directory / MANIFEST_NAME
        try:
            raw = manifest_path.read_bytes()
        except OSError as error:
            raise SnapshotError(
                f"cannot read snapshot manifest {manifest_path!s}: {error}"
            ) from error
        try:
            manifest = json.loads(raw)
        except ValueError as error:
            raise SnapshotError(
                f"snapshot manifest {manifest_path!s} is not valid JSON: {error}"
            ) from error
        if not isinstance(manifest, dict) or manifest.get("magic") != MANIFEST_MAGIC:
            raise SnapshotError(
                f"{manifest_path!s} is not a v2/v3 snapshot manifest (magic "
                f"{manifest.get('magic') if isinstance(manifest, dict) else None!r}, "
                f"expected {MANIFEST_MAGIC!r}) — a v1 single-file snapshot "
                "cannot be wrapped in a directory; rebuild with "
                "`gqbe build-index --format v3`"
            )
        version = manifest.get("format_version")
        if version not in SUPPORTED_SHARDED_VERSIONS:
            supported = "/".join(str(v) for v in SUPPORTED_SHARDED_VERSIONS)
            raise SnapshotError(
                f"snapshot {self.directory!s} uses format version {version}; "
                f"this build supports versions {supported} — rebuild it with "
                "`gqbe build-index --format v3`"
            )
        self.manifest = manifest
        self.format_version: int = version
        self.meta: dict = dict(manifest.get("meta", {}))
        self._tables: dict[str, dict] = {
            entry["label"]: entry for entry in manifest.get("tables", [])
        }
        self.sections_loaded: list[str] = []
        self.opened_labels: list[str] = []
        #: The mmap objects backing opened shards (kept alive here so the
        #: frombuffer views never outlive their buffer).
        self._maps: list[mmap.mmap] = []

    # ------------------------------------------------------------------
    @property
    def tables_opened(self) -> int:
        """How many table shards have been mapped so far."""
        return len(self.opened_labels)

    @property
    def has_mapped_vocabulary(self) -> bool:
        """Whether this snapshot carries a vocabulary arena shard (v3)."""
        return "vocabulary" in self.manifest

    @property
    def has_mapped_graph(self) -> bool:
        """Whether this snapshot carries a graph CSR shard (v3)."""
        return "graph" in self.manifest

    @property
    def has_mapped_statistics(self) -> bool:
        """Whether this snapshot carries a statistics counts shard.

        v3 snapshots written since the statistics columns landed carry
        one; older v3 directories pickle the full statistics section and
        keep loading unchanged.
        """
        return "statistics_counts" in self.manifest

    def label_rows(self) -> dict[str, int]:
        """Per-label row counts straight from the manifest (no shard I/O)."""
        return {label: entry["rows"] for label, entry in self._tables.items()}

    # ------------------------------------------------------------------
    def _verify_file(self, name: str, expected: str) -> Path:
        path = self.directory / name
        try:
            actual = _sha256_file(path)
        except OSError as error:
            raise SnapshotError(
                f"cannot read snapshot shard {path!s}: {error}"
            ) from error
        if actual != expected:
            raise SnapshotError(
                f"snapshot shard {path!s} is corrupt (checksum mismatch)"
            )
        return path

    def load_section(self, name: str) -> bytes:
        """Read and verify one section file; returns its pickle bytes.

        One read: the returned bytes are exactly the bytes that were
        hashed (no verify-then-reread window, and no double I/O on the
        biggest non-shard files).
        """
        sections = self.manifest.get("sections", {})
        entry = sections.get(name)
        if entry is None:
            raise SnapshotError(
                f"snapshot {self.directory!s} has no {name!r} section in its manifest"
            )
        path = self.directory / entry["file"]
        try:
            data = path.read_bytes()
        except OSError as error:
            raise SnapshotError(
                f"cannot read snapshot shard {path!s}: {error}"
            ) from error
        if hashlib.sha256(data).hexdigest() != entry["sha256"]:
            raise SnapshotError(
                f"snapshot shard {path!s} is corrupt (checksum mismatch)"
            )
        self.sections_loaded.append(name)
        return data

    # ------------------------------------------------------------------
    def _map_shard(
        self, entry: dict
    ) -> tuple[Path, mmap.mmap, dict, Callable[[str], "np.ndarray | None"]]:
        """Verify, map and parse one binary shard; returns its view factory.

        The caller must either adopt the mmap (append it to
        :attr:`_maps`) or close it; on any :class:`SnapshotError` the
        map is closed here.
        """
        if np is None:  # pragma: no cover - numpy-less installs only
            raise SnapshotError(
                "sharded snapshots require numpy to map their binary shards"
            )
        path = self._verify_file(entry["file"], entry["sha256"])
        try:
            with open(path, "rb") as handle:
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as error:
            raise SnapshotError(
                f"cannot map snapshot shard {path!s}: {error}"
            ) from error
        if self.prefetch:
            try:
                # Read-ahead hint: the kernel starts faulting the shard in
                # while the engine is still planning (no-op where absent).
                mapped.madvise(mmap.MADV_WILLNEED)
            # gqbe: ignore[EXC002] -- madvise is a purely advisory
            # read-ahead hint; its failure changes timing, not
            # correctness, so it must never surface as SnapshotError.
            except (AttributeError, ValueError, OSError):  # pragma: no cover
                pass
        try:
            header, view = self._parse_shard(path, mapped)
        except SnapshotError:
            _close_quietly(mapped)
            raise
        return path, mapped, header, view

    def _parse_shard(
        self, path: Path, mapped: mmap.mmap
    ) -> tuple[dict, Callable[[str], "np.ndarray | None"]]:
        if len(mapped) < _SHARD_HEADER.size:
            raise SnapshotError(f"snapshot shard {path!s} is truncated (no header)")
        magic, version, header_length = _SHARD_HEADER.unpack_from(mapped, 0)
        if magic != SHARD_MAGIC:
            raise SnapshotError(
                f"snapshot shard {path!s} has a bad magic ({magic!r})"
            )
        if version != SHARD_VERSION:
            raise SnapshotError(
                f"snapshot shard {path!s} uses shard version {version}; "
                f"this build supports {SHARD_VERSION}"
            )
        header_end = _SHARD_HEADER.size + header_length
        if len(mapped) < header_end:
            raise SnapshotError(f"snapshot shard {path!s} is truncated (header)")
        try:
            header = json.loads(mapped[_SHARD_HEADER.size : header_end])
        except ValueError as error:
            raise SnapshotError(
                f"snapshot shard {path!s} has an unreadable header: {error}"
            ) from error
        base = _align(header_end)

        def view(name: str) -> "np.ndarray | None":
            spec = header.get("arrays", {}).get(name)
            if spec is None:
                return None
            dtype = spec.get("dtype", _DTYPE)
            start = base + spec["offset"]
            end = start + spec["count"] * _ITEMSIZES.get(dtype, 8)
            if end > len(mapped):
                raise SnapshotError(
                    f"snapshot shard {path!s} is truncated: array {name!r} "
                    f"ends at byte {end}, file has {len(mapped)}"
                )
            return np.frombuffer(
                mapped, dtype=dtype, count=spec["count"], offset=start
            )

        return header, view

    # ------------------------------------------------------------------
    def load_table(self, label: str) -> ColumnarEdgeTable:
        """Map one label's shard as a read-only :class:`ColumnarEdgeTable`."""
        entry = self._tables.get(label)
        if entry is None:
            raise SnapshotError(
                f"snapshot {self.directory!s} has no shard for label {label!r}"
            )
        path, mapped, header, view = self._map_shard(entry)
        try:
            table = self._table_from_header(path, header, view, label, entry["rows"])
        except SnapshotError:
            _close_quietly(mapped)
            raise
        self._maps.append(mapped)
        self.opened_labels.append(label)
        return table

    def _table_from_header(
        self, path: Path, header: dict, view, label: str, rows: int
    ) -> ColumnarEdgeTable:
        if header.get("label") != label or header.get("rows") != rows:
            raise SnapshotError(
                f"snapshot shard {path!s} does not match its manifest entry "
                f"(label {header.get('label')!r} rows {header.get('rows')!r}, "
                f"expected {label!r}/{rows})"
            )
        subjects = view("subjects")
        objects = view("objects")
        if subjects is None or objects is None or len(subjects) != rows:
            raise SnapshotError(
                f"snapshot shard {path!s} is missing its id columns"
            )
        subject_index = object_index = None
        order = view("subject_order")
        if order is not None:
            subject_index = _SortedGroupIndex.from_arrays(
                view("subject_keys"), view("subject_bounds"), order
            )
            object_index = _SortedGroupIndex.from_arrays(
                view("object_keys"), view("object_bounds"), view("object_order")
            )
        return ColumnarEdgeTable.from_mapped(
            label,
            subjects,
            objects,
            subject_index=subject_index,
            object_index=object_index,
            pair_keys=view("pair_keys"),
            pair_stride=int(header.get("pair_stride", 0)),
        )

    # ------------------------------------------------------------------
    def load_vocabulary(self) -> MappedVocabulary:
        """Map the v3 vocabulary arena as a :class:`MappedVocabulary`."""
        entry = self.manifest.get("vocabulary")
        if entry is None:
            raise SnapshotError(
                f"snapshot {self.directory!s} has no vocabulary arena shard "
                "(v2 snapshots carry the vocabulary inside store.section)"
            )
        path, mapped, header, view = self._map_shard(entry)
        try:
            vocabulary = self._vocabulary_from_header(path, header, view)
        except SnapshotError:
            _close_quietly(mapped)
            raise
        self._maps.append(mapped)
        self.sections_loaded.append("vocabulary")
        return vocabulary

    def _vocabulary_from_header(self, path: Path, header: dict, view) -> MappedVocabulary:
        if header.get("kind") != "vocabulary":
            raise SnapshotError(
                f"snapshot shard {path!s} is not a vocabulary arena "
                f"(kind {header.get('kind')!r})"
            )
        terms = header.get("terms")
        offsets = view("offsets")
        sorted_ids = view("sorted_ids")
        blob = view("blob")
        if (
            not isinstance(terms, int)
            or offsets is None
            or sorted_ids is None
            or blob is None
            or len(offsets) != terms + 1
            or len(sorted_ids) != terms
        ):
            raise SnapshotError(
                f"snapshot shard {path!s} is missing vocabulary arena arrays"
            )
        if int(offsets[0]) != 0 or (terms and bool((np.diff(offsets) < 0).any())):
            raise SnapshotError(
                f"snapshot shard {path!s} has a corrupt vocabulary arena: "
                "offsets are not monotonically non-decreasing"
            )
        if int(offsets[-1]) != len(blob):
            raise SnapshotError(
                f"snapshot shard {path!s} has a corrupt vocabulary arena: "
                f"offsets address byte {int(offsets[-1])} of a "
                f"{len(blob)}-byte blob (offsets out of range)"
            )
        if terms and (
            int(sorted_ids.min()) < 0 or int(sorted_ids.max()) >= terms
        ):
            raise SnapshotError(
                f"snapshot shard {path!s} has a corrupt vocabulary arena: "
                "sort permutation references ids outside the term range"
            )
        # The permutation must actually sort the terms by UTF-8 bytes —
        # id_of binary-searches it, and a scrambled permutation would
        # silently turn present terms into UnknownEntityError instead of
        # corruption.  Full string comparison per adjacent pair would be
        # an O(n) Python sweep per worker open (against this format's
        # whole point), so the check is the vectorized first-byte
        # projection: gross scrambles fail here, and the per-file
        # SHA-256 already caught random corruption before this point.
        if terms > 1 and len(blob):
            starts = offsets[:-1][sorted_ids]
            lengths = (offsets[1:] - offsets[:-1])[sorted_ids]
            # Signed: np.diff on the raw uint8 gather would wrap mod 256
            # and hide every descent.
            first_bytes = np.where(
                lengths > 0,
                blob[np.minimum(starts, len(blob) - 1)].astype(np.int64),
                -1,  # the empty term sorts before every byte
            )
            if bool((np.diff(first_bytes) < 0).any()):
                raise SnapshotError(
                    f"snapshot shard {path!s} has a corrupt vocabulary "
                    "arena: the sort permutation is not in term byte order"
                )
        return MappedVocabulary(offsets, sorted_ids, blob)

    # ------------------------------------------------------------------
    def load_statistics_counts(self) -> tuple[list[str], tuple]:
        """Map the statistics counts shard; returns ``(labels, columns)``.

        ``columns`` is ``(out_keys, out_counts, in_keys, in_counts)`` —
        zero-copy int64 views ready for
        :class:`~repro.graph.statistics.MappedGraphStatistics`.
        """
        entry = self.manifest.get("statistics_counts")
        if entry is None:
            raise SnapshotError(
                f"snapshot {self.directory!s} has no statistics counts shard"
            )
        path, mapped, header, view = self._map_shard(entry)
        try:
            result = self._statistics_from_header(path, header, view)
        except SnapshotError:
            _close_quietly(mapped)
            raise
        self._maps.append(mapped)
        self.sections_loaded.append("statistics_counts")
        return result

    def _statistics_from_header(self, path: Path, header: dict, view):
        if header.get("kind") != "statistics":
            raise SnapshotError(
                f"snapshot shard {path!s} is not a statistics counts shard "
                f"(kind {header.get('kind')!r})"
            )
        labels = header.get("labels")
        if not isinstance(labels, list):
            raise SnapshotError(
                f"snapshot shard {path!s} has a malformed statistics header"
            )
        columns = []
        for side in ("out", "in"):
            keys = view(f"{side}_keys")
            counts = view(f"{side}_counts")
            if keys is None or counts is None or len(keys) != len(counts):
                raise SnapshotError(
                    f"snapshot shard {path!s} is missing its {side} "
                    "participation columns"
                )
            if len(keys) and (
                bool((np.diff(keys) <= 0).any()) or int(counts.min()) < 1
            ):
                raise SnapshotError(
                    f"snapshot shard {path!s} has corrupt statistics "
                    f"columns: {side} keys must be strictly increasing "
                    "and counts positive"
                )
            columns.extend((keys, counts))
        return labels, tuple(columns)

    # ------------------------------------------------------------------
    def load_graph(self, vocabulary: MappedVocabulary) -> MappedKnowledgeGraph:
        """Map the v3 graph CSR shard as a :class:`MappedKnowledgeGraph`."""
        entry = self.manifest.get("graph")
        if entry is None:
            raise SnapshotError(
                f"snapshot {self.directory!s} has no graph CSR shard "
                "(v2 snapshots carry the graph as graph.section)"
            )
        path, mapped, header, view = self._map_shard(entry)
        try:
            graph = self._graph_from_header(path, header, view, vocabulary)
        except SnapshotError:
            _close_quietly(mapped)
            raise
        self._maps.append(mapped)
        self.sections_loaded.append("graph")
        return graph

    def _graph_from_header(
        self, path: Path, header: dict, view, vocabulary: MappedVocabulary
    ) -> MappedKnowledgeGraph:
        if header.get("kind") != "graph":
            raise SnapshotError(
                f"snapshot shard {path!s} is not a graph CSR shard "
                f"(kind {header.get('kind')!r})"
            )
        nodes = header.get("nodes")
        edges = header.get("edges")
        labels = header.get("labels")
        if not isinstance(nodes, int) or not isinstance(edges, int) or not isinstance(labels, list):
            raise SnapshotError(
                f"snapshot shard {path!s} has a malformed graph CSR header"
            )
        arrays = {}
        for name in (
            "out_indptr",
            "out_objects",
            "out_labels",
            "in_indptr",
            "in_subjects",
            "in_labels",
        ):
            array = view(name)
            if array is None:
                raise SnapshotError(
                    f"snapshot shard {path!s} is missing CSR array {name!r}"
                )
            arrays[name] = array
        for name in ("out_indptr", "in_indptr"):
            indptr = arrays[name]
            if len(indptr) != nodes + 1:
                raise SnapshotError(
                    f"snapshot shard {path!s} has a corrupt graph CSR: "
                    f"{name} has {len(indptr)} entries for {nodes} nodes"
                )
            if len(indptr) and (
                int(indptr[0]) != 0
                or int(indptr[-1]) != edges
                or bool((np.diff(indptr) < 0).any())
            ):
                raise SnapshotError(
                    f"snapshot shard {path!s} has a corrupt graph CSR: "
                    f"{name} is non-monotonic or does not span the "
                    f"{edges} edges"
                )
        for name, bound in (
            ("out_objects", nodes),
            ("out_labels", len(labels)),
            ("in_subjects", nodes),
            ("in_labels", len(labels)),
        ):
            column = arrays[name]
            if len(column) != edges:
                raise SnapshotError(
                    f"snapshot shard {path!s} has a corrupt graph CSR: "
                    f"{name} has {len(column)} entries for {edges} edges"
                )
            if edges and (
                int(column.min()) < 0 or int(column.max()) >= bound
            ):
                raise SnapshotError(
                    f"snapshot shard {path!s} has a corrupt graph CSR: "
                    f"{name} references ids outside [0, {bound})"
                )
        return MappedKnowledgeGraph(
            vocabulary,
            labels,
            arrays["out_indptr"],
            arrays["out_objects"],
            arrays["out_labels"],
            arrays["in_indptr"],
            arrays["in_subjects"],
            arrays["in_labels"],
        )
