"""Sharded snapshot format v2: a directory of memory-mappable shards.

The v1 snapshot (:mod:`repro.storage.snapshot`) is one pickle-backed
file: loading deserializes every edge table into private process memory,
so a graph must fit in RAM per process and every serving worker pays a
full copy.  Format v2 splits the offline state into a *directory* of
independently verifiable shards:

``MANIFEST.json``
    The envelope: magic, format version, the snapshot ``meta`` mapping,
    and a catalog of every other file with its SHA-256 digest, byte size
    and (for table shards) label and row count.  Reading the manifest is
    the whole cost of opening a v2 snapshot.
``graph.section`` / ``statistics.section`` / ``store.section``
    Independent pickles of the three v1 sections — except that the store
    section is a *skeleton*: vocabulary, engine flags, no tables.  Each
    deserializes lazily on first access, exactly like the v1 blobs.
``tables/NNNNN.shard``
    One binary shard per label's
    :class:`~repro.storage.table.ColumnarEdgeTable`: the two int64 id
    columns **plus the persisted probe indexes** (both CSR-style sorted
    group indexes and the pair-membership index), written as raw
    little-endian arrays at 64-byte-aligned offsets.  A shard is opened
    with one ``mmap`` and the arrays become zero-copy read-only
    ``np.frombuffer`` views — no deserialization, no sorting, no copy —
    so N worker processes mapping the same snapshot share one set of
    physical pages, and a label table that no query probes is never
    faulted in at all.

Shard binary layout (little-endian)::

    offset  size  field
    0       8     magic ``b"GQBESHRD"``
    8       4     shard format version (uint32, currently 1)
    12      4     header JSON length H (uint32)
    16      H     header JSON (label, rows, pair_stride, array catalog)
    ...           int64 arrays, each starting at a 64-byte-aligned offset

The header's ``arrays`` mapping gives each array's item count and byte
offset *relative to the data base* — the first 64-byte boundary after
the header — so header length and array layout never depend on each
other.  The writer emits ``subjects``/``objects`` and, when the table is
non-empty, ``subject_order``/``subject_keys``/``subject_bounds``,
``object_order``/``object_keys``/``object_bounds`` and ``pair_keys``.

Integrity: every file's SHA-256 is recorded in the manifest.  Sections
are verified when they deserialize; a table shard is verified the first
time it is opened (one streamed read that also warms the page cache),
so corruption is still caught per shard without forcing an eager read
of shards the workload never touches.  Like v1, the section pickles are
**trusted local artifacts** — load only snapshots you built yourself.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import pickle
import struct
from os import PathLike
from pathlib import Path

from repro.exceptions import SnapshotError
from repro.storage.table import ColumnarEdgeTable, _SortedGroupIndex, np

SHARD_MAGIC = b"GQBESHRD"
SHARD_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"
MANIFEST_MAGIC = "GQBESNAP2"
SHARDED_FORMAT_VERSION = 2
_ALIGNMENT = 64
_SHARD_HEADER = struct.Struct("<8sII")

#: int64, little-endian — the only dtype a shard stores.
_DTYPE = "<i8"
_ITEMSIZE = 8


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(1 << 20)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
def _table_arrays(table: ColumnarEdgeTable) -> tuple[dict[str, "np.ndarray"], int]:
    """The arrays a shard persists for ``table`` (indexes prebuilt)."""
    table.build_indexes()
    arrays: dict[str, np.ndarray] = {
        "subjects": np.ascontiguousarray(table.subject_ids(), dtype=_DTYPE),
        "objects": np.ascontiguousarray(table.object_ids(), dtype=_DTYPE),
    }
    pair_stride = 0
    if len(table):
        subject_index = table._subject_group_index()
        object_index = table._object_group_index()
        table._ensure_pair_index()
        arrays["subject_order"] = np.ascontiguousarray(subject_index.order, dtype=_DTYPE)
        arrays["subject_keys"] = np.ascontiguousarray(subject_index.keys, dtype=_DTYPE)
        arrays["subject_bounds"] = np.ascontiguousarray(subject_index.bounds, dtype=_DTYPE)
        arrays["object_order"] = np.ascontiguousarray(object_index.order, dtype=_DTYPE)
        arrays["object_keys"] = np.ascontiguousarray(object_index.keys, dtype=_DTYPE)
        arrays["object_bounds"] = np.ascontiguousarray(object_index.bounds, dtype=_DTYPE)
        arrays["pair_keys"] = np.ascontiguousarray(table._pair_keys, dtype=_DTYPE)
        pair_stride = table._pair_stride
    return arrays, pair_stride


def write_table_shard(path: Path, table: ColumnarEdgeTable) -> dict:
    """Write one label table as a binary shard; returns its catalog entry.

    The returned mapping (file-relative name excluded — the caller knows
    where it put the file) carries ``sha256``, ``bytes``, ``rows`` and
    ``label`` for the manifest.
    """
    arrays, pair_stride = _table_arrays(table)
    # Array offsets are recorded *relative to the data base* — the first
    # 64-byte boundary after the header — so the header text can be laid
    # out without a fixed-point iteration between its own length and the
    # offsets it contains.
    catalog: dict[str, dict[str, int]] = {}
    relative = 0
    for name, data in arrays.items():
        relative = _align(relative)
        catalog[name] = {"offset": relative, "count": int(len(data))}
        relative += len(data) * _ITEMSIZE
    header_bytes = json.dumps(
        {
            "label": table.label,
            "rows": len(table),
            "pair_stride": int(pair_stride),
            "arrays": catalog,
        },
        sort_keys=True,
    ).encode("utf-8")
    base = _align(_SHARD_HEADER.size + len(header_bytes))
    total = base + relative
    buffer = bytearray(total)
    _SHARD_HEADER.pack_into(buffer, 0, SHARD_MAGIC, SHARD_VERSION, len(header_bytes))
    buffer[_SHARD_HEADER.size : _SHARD_HEADER.size + len(header_bytes)] = header_bytes
    for name, data in arrays.items():
        start = base + catalog[name]["offset"]
        buffer[start : start + len(data) * _ITEMSIZE] = data.tobytes()
    # Hash and write the bytearray directly — converting to bytes would
    # hold up to three shard-sized buffers at once on the largest label.
    path.write_bytes(buffer)
    return {
        "label": table.label,
        "rows": len(table),
        "bytes": total,
        "sha256": hashlib.sha256(buffer).hexdigest(),
    }


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
class ShardedSnapshotReader:
    """Opens a v2 snapshot directory and hands out sections and tables.

    Construction reads and validates only ``MANIFEST.json``.  Sections
    and table shards load lazily through :meth:`load_section` /
    :meth:`load_table`; the reader counts what it opened
    (:attr:`tables_opened`, :attr:`opened_labels`,
    :attr:`sections_loaded`) so tests and ``/stats`` can prove that a
    warm start touched nothing it did not need.
    """

    def __init__(self, directory: str | PathLike) -> None:
        self.directory = Path(directory)
        manifest_path = self.directory / MANIFEST_NAME
        try:
            raw = manifest_path.read_bytes()
        except OSError as error:
            raise SnapshotError(
                f"cannot read snapshot manifest {manifest_path!s}: {error}"
            ) from error
        try:
            manifest = json.loads(raw)
        except ValueError as error:
            raise SnapshotError(
                f"snapshot manifest {manifest_path!s} is not valid JSON: {error}"
            ) from error
        if not isinstance(manifest, dict) or manifest.get("magic") != MANIFEST_MAGIC:
            raise SnapshotError(
                f"{manifest_path!s} is not a v2 snapshot manifest (magic "
                f"{manifest.get('magic') if isinstance(manifest, dict) else None!r}, "
                f"expected {MANIFEST_MAGIC!r}) — a v1 single-file snapshot "
                "cannot be wrapped in a directory; rebuild with "
                "`gqbe build-index --format v2`"
            )
        version = manifest.get("format_version")
        if version != SHARDED_FORMAT_VERSION:
            raise SnapshotError(
                f"snapshot {self.directory!s} uses format version {version}; "
                f"this build supports version {SHARDED_FORMAT_VERSION} — "
                "rebuild it with `gqbe build-index --format v2`"
            )
        self.manifest = manifest
        self.meta: dict = dict(manifest.get("meta", {}))
        self._tables: dict[str, dict] = {
            entry["label"]: entry for entry in manifest.get("tables", [])
        }
        self.sections_loaded: list[str] = []
        self.opened_labels: list[str] = []
        #: The mmap objects backing opened shards (kept alive here so the
        #: frombuffer views never outlive their buffer).
        self._maps: list[mmap.mmap] = []

    # ------------------------------------------------------------------
    @property
    def tables_opened(self) -> int:
        """How many table shards have been mapped so far."""
        return len(self.opened_labels)

    def label_rows(self) -> dict[str, int]:
        """Per-label row counts straight from the manifest (no shard I/O)."""
        return {label: entry["rows"] for label, entry in self._tables.items()}

    # ------------------------------------------------------------------
    def _verify_file(self, name: str, expected: str) -> Path:
        path = self.directory / name
        try:
            actual = _sha256_file(path)
        except OSError as error:
            raise SnapshotError(
                f"cannot read snapshot shard {path!s}: {error}"
            ) from error
        if actual != expected:
            raise SnapshotError(
                f"snapshot shard {path!s} is corrupt (checksum mismatch)"
            )
        return path

    def load_section(self, name: str) -> bytes:
        """Read and verify one section file; returns its pickle bytes.

        One read: the returned bytes are exactly the bytes that were
        hashed (no verify-then-reread window, and no double I/O on the
        biggest non-shard files).
        """
        sections = self.manifest.get("sections", {})
        entry = sections.get(name)
        if entry is None:
            raise SnapshotError(
                f"snapshot {self.directory!s} has no {name!r} section in its manifest"
            )
        path = self.directory / entry["file"]
        try:
            data = path.read_bytes()
        except OSError as error:
            raise SnapshotError(
                f"cannot read snapshot shard {path!s}: {error}"
            ) from error
        if hashlib.sha256(data).hexdigest() != entry["sha256"]:
            raise SnapshotError(
                f"snapshot shard {path!s} is corrupt (checksum mismatch)"
            )
        self.sections_loaded.append(name)
        return data

    def load_table(self, label: str) -> ColumnarEdgeTable:
        """Map one label's shard as a read-only :class:`ColumnarEdgeTable`."""
        if np is None:  # pragma: no cover - numpy-less installs only
            raise SnapshotError(
                "v2 snapshots require numpy to map their columnar shards"
            )
        entry = self._tables.get(label)
        if entry is None:
            raise SnapshotError(
                f"snapshot {self.directory!s} has no shard for label {label!r}"
            )
        path = self._verify_file(entry["file"], entry["sha256"])
        try:
            with open(path, "rb") as handle:
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as error:
            raise SnapshotError(
                f"cannot map snapshot shard {path!s}: {error}"
            ) from error
        try:
            table = self._table_from_map(path, mapped, label, entry["rows"])
        except SnapshotError:
            mapped.close()
            raise
        self._maps.append(mapped)
        self.opened_labels.append(label)
        return table

    def _table_from_map(
        self, path: Path, mapped: mmap.mmap, label: str, rows: int
    ) -> ColumnarEdgeTable:
        if len(mapped) < _SHARD_HEADER.size:
            raise SnapshotError(f"snapshot shard {path!s} is truncated (no header)")
        magic, version, header_length = _SHARD_HEADER.unpack_from(mapped, 0)
        if magic != SHARD_MAGIC:
            raise SnapshotError(
                f"snapshot shard {path!s} has a bad magic ({magic!r})"
            )
        if version != SHARD_VERSION:
            raise SnapshotError(
                f"snapshot shard {path!s} uses shard version {version}; "
                f"this build supports {SHARD_VERSION}"
            )
        header_end = _SHARD_HEADER.size + header_length
        if len(mapped) < header_end:
            raise SnapshotError(f"snapshot shard {path!s} is truncated (header)")
        try:
            header = json.loads(mapped[_SHARD_HEADER.size : header_end])
        except ValueError as error:
            raise SnapshotError(
                f"snapshot shard {path!s} has an unreadable header: {error}"
            ) from error
        if header.get("label") != label or header.get("rows") != rows:
            raise SnapshotError(
                f"snapshot shard {path!s} does not match its manifest entry "
                f"(label {header.get('label')!r} rows {header.get('rows')!r}, "
                f"expected {label!r}/{rows})"
            )
        base = _align(header_end)

        def view(name: str) -> "np.ndarray | None":
            spec = header.get("arrays", {}).get(name)
            if spec is None:
                return None
            start = base + spec["offset"]
            end = start + spec["count"] * _ITEMSIZE
            if end > len(mapped):
                raise SnapshotError(
                    f"snapshot shard {path!s} is truncated: array {name!r} "
                    f"ends at byte {end}, file has {len(mapped)}"
                )
            return np.frombuffer(
                mapped, dtype=_DTYPE, count=spec["count"], offset=start
            )

        subjects = view("subjects")
        objects = view("objects")
        if subjects is None or objects is None or len(subjects) != rows:
            raise SnapshotError(
                f"snapshot shard {path!s} is missing its id columns"
            )
        subject_index = object_index = None
        order = view("subject_order")
        if order is not None:
            subject_index = _SortedGroupIndex.from_arrays(
                view("subject_keys"), view("subject_bounds"), order
            )
            object_index = _SortedGroupIndex.from_arrays(
                view("object_keys"), view("object_bounds"), view("object_order")
            )
        return ColumnarEdgeTable.from_mapped(
            label,
            subjects,
            objects,
            subject_index=subject_index,
            object_index=object_index,
            pair_keys=view("pair_keys"),
            pair_stride=int(header.get("pair_stride", 0)),
        )
