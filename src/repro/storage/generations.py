"""Snapshot generations: the on-disk layout behind LSM-style compaction.

A served snapshot is immutable; live ingest accumulates an in-memory
delta overlay on top of it.  Compaction folds (base + delta) into a
fresh, fully self-contained snapshot written **next to** the base:

    serve-data.snap          <- generation 0: whatever the user built
    serve-data.snap.gen1     <- first compaction
    serve-data.snap.gen2     <- second compaction, and so on

Each generation is an ordinary snapshot (v3 directory or v1 file —
``GraphStore.load`` auto-detects), so every existing tool opens it
directly.  Crash safety comes from two rules:

* a generation is written to ``<target>.tmp`` first and moved into
  place with one atomic ``os.replace`` — a half-written generation is
  only ever visible under a ``.tmp`` name;
* within the tmp directory the manifest is written **last** (the v1
  envelope's digest plays the same role), so even a torn rename — or a
  tmp dir surviving a crash — fails validation cheaply instead of
  loading garbage.

:func:`resolve_latest_generation` is the startup/restart entry point:
it picks the highest generation that actually validates, and sweeps up
orphaned ``.tmp`` wreckage from a compaction that died mid-write.
"""

from __future__ import annotations

import re
import shutil
from os import PathLike
from pathlib import Path

from repro.exceptions import SnapshotError

_GENERATION = re.compile(r"^(?P<stem>.+)\.gen(?P<number>\d+)$")
_TMP_SUFFIX = ".tmp"


def generation_root(path: str | PathLike) -> Path:
    """The generation-0 path: strips a trailing ``.genN`` if present."""
    path = Path(path)
    match = _GENERATION.match(path.name)
    if match:
        return path.with_name(match.group("stem"))
    return path


def generation_number(path: str | PathLike) -> int:
    """Which generation ``path`` names (0 for the root snapshot)."""
    match = _GENERATION.match(Path(path).name)
    return int(match.group("number")) if match else 0


def generation_path(root: str | PathLike, number: int) -> Path:
    """The path of generation ``number`` for ``root`` (0 is the root)."""
    root = generation_root(root)
    if number == 0:
        return root
    return root.with_name(f"{root.name}.gen{number}")


def list_generations(path: str | PathLike) -> list[tuple[int, Path]]:
    """Every generation present on disk, ``(number, path)``, ascending.

    Includes the root as generation 0 when it exists; ``.tmp`` wreckage
    is never listed.
    """
    root = generation_root(path)
    generations: list[tuple[int, Path]] = []
    if root.exists():
        generations.append((0, root))
    pattern = re.compile(
        rf"^{re.escape(root.name)}\.gen(?P<number>\d+)$"
    )
    if root.parent.is_dir():
        for sibling in root.parent.iterdir():
            match = pattern.match(sibling.name)
            if match:
                generations.append((int(match.group("number")), sibling))
    generations.sort(key=lambda item: item[0])
    return generations


def next_generation_path(path: str | PathLike) -> Path:
    """Where the next compaction should land for ``path``'s family."""
    generations = list_generations(path)
    highest = generations[-1][0] if generations else 0
    return generation_path(path, highest + 1)


def orphan_tmp_paths(path: str | PathLike) -> list[Path]:
    """``<root>.genN.tmp`` leftovers from compactions that died mid-write."""
    root = generation_root(path)
    pattern = re.compile(
        rf"^{re.escape(root.name)}\.gen\d+{re.escape(_TMP_SUFFIX)}$"
    )
    if not root.parent.is_dir():
        return []
    return sorted(
        sibling
        for sibling in root.parent.iterdir()
        if pattern.match(sibling.name)
    )


def _remove(path: Path) -> None:
    if path.is_dir():
        shutil.rmtree(path, ignore_errors=True)
    else:
        try:
            path.unlink()
        # gqbe: ignore[EXC002] -- best-effort orphan/prune cleanup: a
        # leftover file that cannot be unlinked (already gone, perms)
        # is harmless wreckage, not a snapshot-read failure to report.
        except OSError:
            pass


def resolve_latest_generation(
    path: str | PathLike, clean_orphans: bool = True
) -> Path:
    """The newest generation of ``path``'s family that validates.

    Candidates are tried highest-number first; validation reads only
    the manifest/envelope (``read_snapshot_meta``), so a generation
    whose write never completed — possible only for ``.tmp`` wreckage
    or external tampering, since the manifest is written last and the
    rename is atomic — is skipped instead of loaded.  With
    ``clean_orphans`` (the default) ``.tmp`` leftovers are deleted.
    Returns ``path`` unchanged when nothing newer validates.
    """
    from repro.storage.snapshot import read_snapshot_meta

    if clean_orphans:
        for orphan in orphan_tmp_paths(path):
            _remove(orphan)
    for _, candidate in reversed(list_generations(path)):
        try:
            read_snapshot_meta(candidate)
        except SnapshotError:
            continue
        return candidate
    return Path(path)


def prune_generations(current: str | PathLike, keep: int = 2) -> list[Path]:
    """Delete generations older than the ``keep`` newest; returns them.

    ``current`` is the generation just swapped in; the root snapshot
    (generation 0) is the user's artifact and is never deleted.  Only
    generations strictly older than ``current`` are candidates — a
    *newer* sibling means another writer is active and is left alone.
    """
    current_number = generation_number(current)
    candidates = [
        (number, path)
        for number, path in list_generations(current)
        if 0 < number <= current_number
    ]
    removed: list[Path] = []
    for number, path in candidates[:-keep] if keep > 0 else candidates:
        _remove(path)
        removed.append(path)
    return removed
