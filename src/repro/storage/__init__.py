"""Relational-style storage and join engine for query graph evaluation.

GQBE stores the data graph with the *vertical partitioning* scheme
(Sec. V-A): one two-column ``(subj, obj)`` table per distinct edge label,
hash-indexed on both columns and kept in memory.  Evaluating a query graph
is then a multi-way join over these tables; this package provides:

* :mod:`repro.storage.vocabulary` — the entity interning layer: entities
  are mapped to dense int ids once, offline, so the join engine hashes and
  compares machine ints instead of strings,
* :class:`~repro.storage.table.ColumnarEdgeTable` — the default per-label
  table: parallel ``array('q')``/numpy id columns with lazily built sorted
  probe indexes (:class:`~repro.storage.table.EdgeTable` is the tuple-row
  reference layout),
* :class:`~repro.storage.store.VerticalPartitionStore` — the collection of
  all per-label tables for a data graph plus their shared vocabulary,
* :mod:`repro.storage.plan` — join-order planning for a query graph,
* :mod:`repro.storage.join` — the hash-join evaluator (vectorized numpy
  kernels with scalar tails for tiny relations), including the one-edge
  *extension* step used by the lattice exploration to reuse a child query
  graph's materialized answers,
* :mod:`repro.storage.snapshot` — versioned on-disk snapshots of the
  whole offline state (:class:`~repro.storage.snapshot.GraphStore`) for
  instant warm starts.
"""

from repro.storage.join import (
    ColumnarRelation,
    Relation,
    evaluate_query_edges,
    extend_with_edge,
)
from repro.storage.plan import JoinPlan, plan_join_order
from repro.storage.snapshot import GraphStore, read_snapshot_meta
from repro.storage.store import VerticalPartitionStore
from repro.storage.table import ColumnarEdgeTable, EdgeTable
from repro.storage.vocabulary import (
    IdentityVocabulary,
    MappedVocabulary,
    Vocabulary,
)

__all__ = [
    "EdgeTable",
    "ColumnarEdgeTable",
    "Vocabulary",
    "IdentityVocabulary",
    "MappedVocabulary",
    "VerticalPartitionStore",
    "GraphStore",
    "read_snapshot_meta",
    "JoinPlan",
    "plan_join_order",
    "Relation",
    "ColumnarRelation",
    "evaluate_query_edges",
    "extend_with_edge",
]
