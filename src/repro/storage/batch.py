"""Batch-scoped join memoization: evaluate shared lattice prefixes once.

One query's best-first exploration evaluates many lattice nodes *from
scratch* (the minimal query trees, Sec. V-B); a batch of queries over the
same graph multiplies that work.  Because join plans are deterministic and
sorted by table cardinality (:mod:`repro.storage.plan`), plans of
overlapping query graphs share long **prefixes** — both across the lattice
nodes of one MQG and across the MQGs of different queries whose
neighborhoods overlap (MQG nodes are data-graph entities, so shared graph
regions produce literally identical edges).

:class:`JoinMemoArena` is the per-batch cache that exploits this.
:meth:`GQBE.query_batch <repro.core.gqbe.GQBE.query_batch>` creates one
arena, threads it through every exploration of the batch, and discards it
when the batch completes.  The arena memoizes three exact (byte-identical)
units of work:

* **join plans** per edge set — :func:`~repro.storage.plan.plan_join_order`
  is a pure function of the edges and the store's cardinalities;
* **plan-prefix relations** — the intermediate relation after joining the
  first ``i`` edges of a plan is a pure function of that ordered prefix
  (identical rows in identical order), including its ``max_rows`` overflow
  behavior, which is memoized as an :data:`OVERFLOW` marker;
* **first-edge scans** per ``(label, self-loop, injective)`` — the initial
  full-table scan of a plan differs between query graphs only in its
  variable *names*, so the scanned id payload is cached once per label and
  re-wrapped under each caller's variable names.

Equivalence argument (pinned by ``tests/test_batch_equivalence.py``): every
memoized value is produced by the exact code path a sequential query would
run, keyed by everything that path depends on.  Replaying a memo hit is
therefore indistinguishable from recomputing — same rows, same row order,
same exceptions — so a batch returns answers byte-identical to N sequential
:meth:`~repro.core.gqbe.GQBE.query` calls, with identical exploration
statistics.

Memory stays bounded: the arena lives only as long as its batch, and
relations larger than ``cache_row_cap`` rows are never cached (the work is
redone instead, exactly as without an arena).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.graph.knowledge_graph import Edge
from repro.storage.join import ColumnarRelation, Relation, extend_with_edge
from repro.storage.plan import JoinPlan, plan_join_order
from repro.storage.store import VerticalPartitionStore


class _Overflow:
    """Sentinel memo value: this prefix exceeded ``max_rows`` when joined."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return "OVERFLOW"


#: Memoized marker for plan prefixes whose join raised ``max_rows`` overflow.
OVERFLOW = _Overflow()


class JoinMemoArena:
    """Cross-query memo of join plans, plan-prefix relations and base scans.

    Create one arena per batch of queries that share a store and a config
    (``max_rows`` is fixed at construction and callers must only use the
    arena for joins with the same cap — :func:`~repro.storage.join.
    evaluate_query_edges` enforces this).  All memoized relations are
    treated as immutable and may be shared between explorers.

    Parameters
    ----------
    max_rows:
        The ``max_join_rows`` cap the batch runs under (``None`` for no
        cap).  Part of every memo's implicit key.
    cache_row_cap:
        Relations with more rows than this are computed but not cached,
        bounding the arena's memory at roughly
        ``entries * cache_row_cap * width`` ids.  ``None`` caches
        everything.
    """

    __slots__ = (
        "max_rows",
        "cache_row_cap",
        "_plans",
        "_prefixes",
        "_first_edges",
        "_edge_ids",
        "_extended",
        "plan_hits",
        "plan_misses",
        "prefix_hits",
        "prefix_misses",
        "first_edge_hits",
        "first_edge_misses",
        "extended_hits",
        "extended_misses",
    )

    def __init__(
        self, max_rows: int | None = None, cache_row_cap: int | None = 1_000_000
    ) -> None:
        self.max_rows = max_rows
        self.cache_row_cap = cache_row_cap
        self._plans: dict[frozenset[Edge], JoinPlan] = {}
        #: ordered plan prefix -> Relation | OVERFLOW
        self._prefixes: dict[tuple[Edge, ...], object] = {}
        #: (label, is_self_loop, injective) -> layout-specific payload
        self._first_edges: dict[tuple[str, bool, bool], object] = {}
        #: arena-interned edge id, assigned on first sight of each Edge;
        #: lets hot-path memo keys hash small ints instead of Edge tuples.
        self._edge_ids: dict[Edge, int] = {}
        #: edge-id set -> Relation | OVERFLOW, from child-extension evaluations
        self._extended: dict[frozenset[int], object] = {}
        self.plan_hits = 0
        self.plan_misses = 0
        self.prefix_hits = 0
        self.prefix_misses = 0
        self.first_edge_hits = 0
        self.first_edge_misses = 0
        self.extended_hits = 0
        self.extended_misses = 0

    # ------------------------------------------------------------------
    # join plans
    # ------------------------------------------------------------------
    def plan_for(
        self, edges: Sequence[Edge], store: VerticalPartitionStore
    ) -> JoinPlan:
        """The (memoized) deterministic join plan for ``edges``."""
        key = frozenset(edges)
        plan = self._plans.get(key)
        if plan is None:
            self.plan_misses += 1
            plan = plan_join_order(edges, store)
            self._plans[key] = plan
        else:
            self.plan_hits += 1
        return plan

    # ------------------------------------------------------------------
    # plan-prefix relations
    # ------------------------------------------------------------------
    def longest_prefix(
        self, order: tuple[Edge, ...]
    ) -> tuple[int, "Relation | ColumnarRelation | _Overflow | None"]:
        """Longest memoized prefix of ``order``: ``(length, value)``.

        ``(0, None)`` when nothing is cached.  The value is either the
        memoized relation of that prefix or :data:`OVERFLOW`.
        """
        prefixes = self._prefixes
        for length in range(len(order), 0, -1):
            value = prefixes.get(order[:length])
            if value is not None:
                self.prefix_hits += 1
                return length, value
        self.prefix_misses += 1
        return 0, None

    def remember_prefix(
        self,
        prefix: tuple[Edge, ...],
        value: "Relation | ColumnarRelation | _Overflow",
    ) -> None:
        """Memoize the relation (or overflow marker) of one plan prefix."""
        if value is not OVERFLOW:
            cap = self.cache_row_cap
            if cap is not None and value.num_rows > cap:
                return
        self._prefixes[prefix] = value

    # ------------------------------------------------------------------
    # child-extension relations (mask-level, across queries)
    # ------------------------------------------------------------------
    def intern_edges(self, edges: Sequence[Edge]) -> list[int]:
        """Arena-wide small-int ids for ``edges`` (one dict hit per edge).

        Explorers call this once per lattice space so that per-evaluation
        memo keys (:meth:`extended_get`) are built from int ids — hashing
        a handful of small ints per lookup instead of re-hashing Edge
        string tuples on the exploration's hot path.
        """
        ids = self._edge_ids
        out = []
        for edge in edges:
            known = ids.get(edge)
            if known is None:
                known = len(ids)
                ids[edge] = known
            out.append(known)
        return out

    def extended_get(
        self, edges: frozenset[int]
    ) -> "Relation | ColumnarRelation | _Overflow | None":
        """A memoized child-extension result for this exact edge set.

        A lattice node's match relation is a pure function of its edge set
        *as a row multiset*; any evaluation that extends a fully evaluated
        child produces that multiset (possibly in a different row order)
        and overflows ``max_rows`` iff the multiset is larger than the cap.
        Everything the exploration observes — row counts, emptiness, the
        recorded answer set — is row-order independent, so serving one
        child-extension's result to another is exact.  From-scratch
        evaluations are **not** served from this memo: they can overflow on
        an intermediate prefix even when the final multiset fits the cap,
        so replaying an extension result for them could diverge from the
        sequential skip behavior (they use the prefix memo instead).
        """
        value = self._extended.get(edges)
        if value is None:
            self.extended_misses += 1
            return None
        self.extended_hits += 1
        return value

    def extended_put(
        self,
        edges: frozenset[int],
        value: "Relation | ColumnarRelation | _Overflow",
    ) -> None:
        """Memoize one child-extension evaluation (or its overflow)."""
        if value is not OVERFLOW:
            cap = self.cache_row_cap
            if cap is not None and value.num_rows > cap:
                return
        self._extended[edges] = value

    # ------------------------------------------------------------------
    # first-edge scans
    # ------------------------------------------------------------------
    def first_edge_relation(
        self,
        store: VerticalPartitionStore,
        edge: Edge,
        injective: bool,
    ) -> "Relation | ColumnarRelation":
        """The first-edge relation of a plan, cached per label.

        The full-table scan that opens every join plan depends on the edge
        only through its *label*, whether it is a self-loop and the
        injectivity flag; the variable names merely rename the columns.
        The scanned payload is cached under that key and re-wrapped with
        the caller's variable names, preserving row order exactly.  No
        ``max_rows`` handling happens here: callers cap the returned
        relation's row count themselves (the first-edge output never
        exceeds the table size, so a post-hoc count check is equivalent to
        the engine's incremental one).  Scans larger than
        ``cache_row_cap`` are returned but not cached, like every other
        memo in the arena.
        """
        self_loop = edge.subject == edge.object
        key = (edge.label, self_loop, injective)
        payload = self._first_edges.get(key)
        if payload is None:
            self.first_edge_misses += 1
            relation = extend_with_edge(
                store,
                _empty_probe(store),
                edge,
                injective=injective,
                max_rows=None,
            )
            cap = self.cache_row_cap
            if cap is not None and relation.num_rows > cap:
                return relation
            if isinstance(relation, ColumnarRelation):
                payload = ("columns", relation.columns)
            else:
                payload = ("rows", relation.rows)
            self._first_edges[key] = payload
            return relation
        self.first_edge_hits += 1
        variables = (
            (edge.subject,) if self_loop else (edge.subject, edge.object)
        )
        kind, data = payload
        if kind == "columns":
            return ColumnarRelation(variables, columns=data)
        return Relation(variables, rows=data)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Hit/miss counters (diagnostics, the serve ``/stats`` endpoint)."""
        return {
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "prefix_hits": self.prefix_hits,
            "prefix_misses": self.prefix_misses,
            "first_edge_hits": self.first_edge_hits,
            "first_edge_misses": self.first_edge_misses,
            "extended_hits": self.extended_hits,
            "extended_misses": self.extended_misses,
            "cached_plans": len(self._plans),
            "cached_prefixes": len(self._prefixes),
            "cached_first_edges": len(self._first_edges),
            "cached_extensions": len(self._extended),
        }

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"{type(self).__name__}(prefixes={len(self._prefixes)}, "
            f"plans={len(self._plans)}, hits={self.prefix_hits})"
        )


def _empty_probe(store: VerticalPartitionStore) -> "Relation | ColumnarRelation":
    """A zero-column probe relation matching the store's layout."""
    if store.is_columnar:
        return ColumnarRelation(variables=(), columns=[])
    return Relation(variables=(), rows=[])
