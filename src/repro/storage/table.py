"""Per-label two-column edge tables with hash indexes (Sec. V-A).

The vertical-partitioning scheme stores every edge label as its own
``(subj, obj)`` table.  For efficient hash joins, each table carries two
in-memory hash indexes, one keyed on ``subj`` and one on ``obj``, mirroring
the paper's description of building both hash tables before any query
arrives.

Rows hold **interned entity ids** (dense ints produced by the store's
:class:`~repro.storage.vocabulary.Vocabulary`), so every probe, membership
test and injectivity check hashes machine ints instead of entity strings.
The table itself is agnostic to the id type: a store built with the
:class:`~repro.storage.vocabulary.IdentityVocabulary` fills it with raw
strings and everything still works (the reference engine used in tests).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.storage.vocabulary import EntityId

#: One ``(subj, obj)`` row of interned entity ids.
Row = tuple[EntityId, EntityId]


class EdgeTable:
    """All edges of a single label, as a two-column ``(subj, obj)`` table."""

    __slots__ = ("_label", "_rows", "_by_subject", "_by_object", "_row_set")

    def __init__(self, label: str, rows: Iterable[Row] = ()) -> None:
        self._label = label
        self._rows: list[Row] = []
        self._by_subject: dict[EntityId, list[Row]] = {}
        self._by_object: dict[EntityId, list[Row]] = {}
        self._row_set: set[Row] = set()
        for subject, obj in rows:
            self.add_row(subject, obj)

    @property
    def label(self) -> str:
        """The edge label this table stores."""
        return self._label

    def add_row(self, subject: EntityId, obj: EntityId) -> None:
        """Insert one ``(subj, obj)`` row (duplicates are ignored)."""
        row = (subject, obj)
        if row in self._row_set:
            return
        self._row_set.add(row)
        self._rows.append(row)
        bucket = self._by_subject.get(subject)
        if bucket is None:
            self._by_subject[subject] = [row]
        else:
            bucket.append(row)
        bucket = self._by_object.get(obj)
        if bucket is None:
            self._by_object[obj] = [row]
        else:
            bucket.append(row)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in self._row_set

    def rows(self) -> list[Row]:
        """All rows, in insertion order."""
        return list(self._rows)

    @property
    def row_set(self) -> set[Row]:
        """The row set itself — the join's filter path probes it directly.

        Callers must treat it as read-only.
        """
        return self._row_set

    @property
    def by_subject(self) -> dict[EntityId, list[Row]]:
        """The subject hash index itself (read-only for callers).

        The join's probe loops hit this once per probe row; handing out
        the dict avoids a method call and a default-argument allocation
        per probe.
        """
        return self._by_subject

    @property
    def by_object(self) -> dict[EntityId, list[Row]]:
        """The object hash index itself (read-only for callers)."""
        return self._by_object

    def probe_subject(self, subject: EntityId) -> list[Row]:
        """Rows whose ``subj`` equals ``subject`` (hash lookup)."""
        return self._by_subject.get(subject, [])

    def probe_object(self, obj: EntityId) -> list[Row]:
        """Rows whose ``obj`` equals ``obj`` (hash lookup)."""
        return self._by_object.get(obj, [])

    def has_row(self, subject: EntityId, obj: EntityId) -> bool:
        """Whether the exact ``(subject, obj)`` row exists."""
        return (subject, obj) in self._row_set

    def subjects(self) -> set[EntityId]:
        """Distinct values in the ``subj`` column."""
        return set(self._by_subject)

    def objects(self) -> set[EntityId]:
        """Distinct values in the ``obj`` column."""
        return set(self._by_object)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(label={self._label!r}, rows={len(self._rows)})"
