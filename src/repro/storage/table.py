"""Per-label two-column edge tables with hash indexes (Sec. V-A).

The vertical-partitioning scheme stores every edge label as its own
``(subj, obj)`` table.  For efficient hash joins, each table carries
per-column lookup indexes, mirroring the paper's description of building
both hash tables before any query arrives.

Two layouts implement the same table contract:

* :class:`ColumnarEdgeTable` — the default engine.  Rows live as two
  parallel int64 id columns; probes are answered from lazily built,
  numpy-sorted CSR-style group indexes so a whole *vector* of probe
  keys is matched in a handful of C-level array operations
  (:meth:`~ColumnarEdgeTable.probe_expand_subject` and friends).
* :class:`EdgeTable` — the original tuple-row layout with per-key dict
  buckets.  It is kept as the reference engine for the columnar
  equivalence tests and as the fallback when numpy is unavailable or when
  the store runs on raw entity strings.

A :class:`ColumnarEdgeTable` works over either of two column backings:

* **owned** — mutable ``array('q')`` columns filled by :meth:`add_row`
  (the cold offline build, and every v1 snapshot);
* **mapped** — read-only int64 views over a memory-mapped v2 snapshot
  shard (:meth:`ColumnarEdgeTable.from_mapped`), including the persisted
  probe indexes, so opening a table costs no copy and no sort.  The first
  mutation *promotes* the table copy-on-write: the mapped buffers are
  copied into fresh owned columns, the stale mapped indexes are dropped,
  and the table behaves like any owned table from then on (the backing
  file is never written through).

Rows hold **interned entity ids** (dense ints produced by the store's
:class:`~repro.storage.vocabulary.Vocabulary`), so every probe, membership
test and injectivity check compares machine ints instead of entity
strings.  :class:`EdgeTable` is agnostic to the id type: a store built
with the :class:`~repro.storage.vocabulary.IdentityVocabulary` fills it
with raw strings and everything still works (the string reference engine
used in tests).  :class:`ColumnarEdgeTable` requires int ids.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Iterator, Sequence

from repro.storage.vocabulary import EntityId

try:  # numpy is optional: without it the store falls back to EdgeTable.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

#: One ``(subj, obj)`` row of interned entity ids.
Row = tuple[EntityId, EntityId]


class EdgeTable:
    """All edges of a single label, as a two-column ``(subj, obj)`` table."""

    __slots__ = ("_label", "_rows", "_by_subject", "_by_object", "_row_set")

    def __init__(self, label: str, rows: Iterable[Row] = ()) -> None:
        self._label = label
        self._rows: list[Row] = []
        self._by_subject: dict[EntityId, list[Row]] = {}
        self._by_object: dict[EntityId, list[Row]] = {}
        self._row_set: set[Row] = set()
        for subject, obj in rows:
            self.add_row(subject, obj)

    @property
    def label(self) -> str:
        """The edge label this table stores."""
        return self._label

    def add_row(self, subject: EntityId, obj: EntityId) -> None:
        """Insert one ``(subj, obj)`` row (duplicates are ignored)."""
        row = (subject, obj)
        if row in self._row_set:
            return
        self._row_set.add(row)
        self._rows.append(row)
        bucket = self._by_subject.get(subject)
        if bucket is None:
            self._by_subject[subject] = [row]
        else:
            bucket.append(row)
        bucket = self._by_object.get(obj)
        if bucket is None:
            self._by_object[obj] = [row]
        else:
            bucket.append(row)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in self._row_set

    def rows(self) -> list[Row]:
        """All rows, in insertion order."""
        return list(self._rows)

    @property
    def row_set(self) -> set[Row]:
        """The row set itself — the join's filter path probes it directly.

        Callers must treat it as read-only.
        """
        return self._row_set

    @property
    def by_subject(self) -> dict[EntityId, list[Row]]:
        """The subject hash index itself (read-only for callers).

        The join's probe loops hit this once per probe row; handing out
        the dict avoids a method call and a default-argument allocation
        per probe.
        """
        return self._by_subject

    @property
    def by_object(self) -> dict[EntityId, list[Row]]:
        """The object hash index itself (read-only for callers)."""
        return self._by_object

    def probe_subject(self, subject: EntityId) -> list[Row]:
        """Rows whose ``subj`` equals ``subject`` (hash lookup)."""
        return self._by_subject.get(subject, [])

    def probe_object(self, obj: EntityId) -> list[Row]:
        """Rows whose ``obj`` equals ``obj`` (hash lookup)."""
        return self._by_object.get(obj, [])

    def has_row(self, subject: EntityId, obj: EntityId) -> bool:
        """Whether the exact ``(subject, obj)`` row exists."""
        return (subject, obj) in self._row_set

    def subjects(self) -> set[EntityId]:
        """Distinct values in the ``subj`` column."""
        return set(self._by_subject)

    def objects(self) -> set[EntityId]:
        """Distinct values in the ``obj`` column."""
        return set(self._by_object)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(label={self._label!r}, rows={len(self._rows)})"


class _SortedGroupIndex:
    """CSR-style group index over one id column.

    ``order`` is a stable permutation sorting the column; equal keys keep
    their insertion order, so expanding a probe enumerates matches in the
    same order as :class:`EdgeTable`'s dict buckets.  ``keys`` holds the
    distinct sorted key values and ``bounds[i]:bounds[i+1]`` delimits the
    rows of ``keys[i]`` inside ``order``.
    """

    __slots__ = ("keys", "bounds", "order")

    def __init__(self, column: "np.ndarray") -> None:
        self.order = np.argsort(column, kind="stable")
        sorted_keys = column[self.order]
        self.keys, starts = np.unique(sorted_keys, return_index=True)
        self.bounds = np.append(starts, len(sorted_keys))

    @classmethod
    def from_arrays(
        cls, keys: "np.ndarray", bounds: "np.ndarray", order: "np.ndarray"
    ) -> "_SortedGroupIndex":
        """Adopt prebuilt (possibly memory-mapped, read-only) index arrays.

        The v2 snapshot shards persist the three arrays exactly as this
        class lays them out, so a warm start rebuilds nothing: the index
        is a handle over the mapped buffers.
        """
        index = cls.__new__(cls)
        index.keys = keys
        index.bounds = bounds
        index.order = order
        return index

    def __getstate__(self):
        return (self.keys, self.bounds, self.order)

    def __setstate__(self, state):
        self.keys, self.bounds, self.order = state

    def lookup(self, probe: "np.ndarray") -> tuple["np.ndarray", "np.ndarray"]:
        """Per-probe-key ``(counts, starts)`` into :attr:`order`.

        Keys absent from the column get count 0 (their start is unused).
        The index is only built for non-empty columns, so ``keys`` always
        has at least one entry.
        """
        position = np.searchsorted(self.keys, probe)
        safe = np.minimum(position, len(self.keys) - 1)
        found = self.keys[safe] == probe
        starts = self.bounds[safe]
        counts = np.where(found, self.bounds[safe + 1] - starts, 0)
        return counts, starts


class ColumnarEdgeTable:
    """All edges of one label as two parallel id columns (struct-of-arrays).

    Rows are appended to ``array('q')`` columns at build time (no per-row
    dict buckets), and the probe indexes are materialized lazily with
    numpy sorts on first use — so the offline build pays only two C-level
    appends per edge and the index cost is amortized at C speed.  Any
    mutation after an index was built invalidates the cached indexes.

    A table opened from a v2 snapshot shard (:meth:`from_mapped`) holds
    read-only mapped int64 views instead of owned columns; the first
    :meth:`add_row` promotes it copy-on-write (see the module docstring).

    Only interned **int** ids are supported; the string reference path
    keeps using :class:`EdgeTable`.
    """

    __slots__ = (
        "_label",
        "_subjects",
        "_objects",
        "_row_set",
        "_subject_np",
        "_object_np",
        "_subject_index",
        "_object_index",
        "_subject_buckets",
        "_object_buckets",
        "_pair_keys",
        "_pair_stride",
        "_mapped",
    )

    def __init__(self, label: str, rows: Iterable[tuple[int, int]] = ()) -> None:
        if np is None:  # pragma: no cover - numpy-less installs only
            raise RuntimeError(
                "ColumnarEdgeTable requires numpy; build the store with "
                "columnar=False to use the tuple-row engine"
            )
        self._label = label
        self._subjects = array("q")
        self._objects = array("q")
        self._row_set: set[tuple[int, int]] = set()
        self._mapped = False
        self._invalidate()
        for subject, obj in rows:
            self.add_row(subject, obj)

    @classmethod
    def from_mapped(
        cls,
        label: str,
        subjects: "np.ndarray",
        objects: "np.ndarray",
        subject_index: _SortedGroupIndex | None = None,
        object_index: _SortedGroupIndex | None = None,
        pair_keys: "np.ndarray | None" = None,
        pair_stride: int = 0,
    ) -> "ColumnarEdgeTable":
        """Open a table over read-only (memory-mapped) int64 columns.

        ``subjects``/``objects`` — and the optional persisted probe
        indexes — are adopted as-is, zero-copy.  The columns must be
        parallel, deduplicated ``(subj, obj)`` rows in insertion order,
        which is exactly what the v2 shard writer persists.
        """
        if np is None:  # pragma: no cover - numpy-less installs only
            raise RuntimeError("mapped ColumnarEdgeTable requires numpy")
        table = cls.__new__(cls)
        table._label = label
        table._subjects = None
        table._objects = None
        table._row_set = None
        table._subject_np = subjects
        table._object_np = objects
        table._subject_index = subject_index
        table._object_index = object_index
        table._subject_buckets = None
        table._object_buckets = None
        table._pair_keys = pair_keys
        table._pair_stride = pair_stride
        table._mapped = True
        return table

    @property
    def is_mapped(self) -> bool:
        """Whether the columns are read-only mapped buffers (pre-promotion)."""
        return self._mapped

    def _promote_to_owned(self) -> None:
        """Copy-on-write: turn mapped buffers into owned mutable columns.

        The mapped probe indexes describe the pre-mutation columns, so
        they are dropped with the rest of the derived state; the backing
        snapshot file is never written through.  The dedup set is a pure
        function of the (value-identical) columns, so a set the caller
        already built survives promotion.
        """
        subjects = array("q", self._subject_np.tolist())
        objects = array("q", self._object_np.tolist())
        row_set = self._row_set
        self._subjects = subjects
        self._objects = objects
        self._mapped = False
        self._invalidate()
        self._row_set = row_set

    def _invalidate(self) -> None:
        self._subject_np = None
        self._object_np = None
        self._subject_index = None
        self._object_index = None
        self._subject_buckets = None
        self._object_buckets = None
        self._pair_keys = None
        self._pair_stride = 0

    # Explicit (get/set)state: spelling the state out keeps the snapshot
    # layout stable, and the dedup set — a pure function of the columns —
    # is dropped from it (rebuilt lazily by :meth:`_dedup_set`), which is
    # the single largest python-object cost of loading a table.  A mapped
    # table pickles as its owned equivalent: the columns convert to
    # ``array('q')`` and the mapped flag clears.  The probe indexes are
    # *kept* — pickling an ndarray view copies its data, so the result is
    # self-contained (no mmap handle leaks) and a v2→v1 resave still
    # ships warm indexes, the v1 format's documented guarantee.
    def __getstate__(self):
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        state["_row_set"] = None
        state["_subject_buckets"] = None
        state["_object_buckets"] = None
        if self._mapped:
            state["_subjects"] = array("q", self._subject_np.tolist())
            state["_objects"] = array("q", self._object_np.tolist())
            state["_subject_np"] = None
            state["_object_np"] = None
            state["_mapped"] = False
        return state

    def __setstate__(self, state):
        for slot in self.__slots__:
            # Tolerate pickles written before a slot existed (e.g. v1
            # snapshots from an older build that had no ``_mapped`` flag).
            object.__setattr__(self, slot, state.get(slot, None))
        if self._mapped is None:
            object.__setattr__(self, "_mapped", False)

    def _dedup_set(self) -> set[tuple[int, int]]:
        if self._row_set is None:
            self._row_set = set(zip(*self._column_values()))
        return self._row_set

    def _column_values(self) -> tuple[Sequence[int], Sequence[int]]:
        """Both columns as plain-``int`` sequences, in insertion order.

        Scalar consumers (dict buckets, dedup sets, row iteration) get
        the same value types whether the table is owned or mapped, so
        downstream hashing and answers stay byte-identical across modes.
        """
        if self._mapped:
            return self._subject_np.tolist(), self._object_np.tolist()
        return self._subjects, self._objects

    @property
    def label(self) -> str:
        """The edge label this table stores."""
        return self._label

    def _has_derived_state(self) -> bool:
        return (
            self._subject_np is not None
            or self._object_np is not None
            or self._subject_index is not None
            or self._object_index is not None
            or self._subject_buckets is not None
            or self._object_buckets is not None
            or self._pair_keys is not None
        )

    def add_row(self, subject: int, obj: int) -> None:
        """Append one ``(subj, obj)`` row (duplicates are ignored).

        On a mapped table the first accepted row triggers copy-on-write
        promotion to owned columns.
        """
        row = (subject, obj)
        dedup = self._dedup_set()
        if row in dedup:
            return
        if self._mapped:
            self._promote_to_owned()  # keeps the dedup set just built
        dedup.add(row)
        self._subjects.append(subject)
        self._objects.append(obj)
        # Every derived structure (numpy columns, sorted indexes, scalar
        # buckets, the pair index) is a snapshot of the columns; drop them
        # all as soon as any of them exists and the columns change.
        if self._has_derived_state():
            self._invalidate()

    def __len__(self) -> int:
        if self._mapped:
            return len(self._subject_np)
        return len(self._subjects)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return zip(*self._column_values())

    def __contains__(self, row: object) -> bool:
        return row in self._dedup_set()

    def rows(self) -> list[tuple[int, int]]:
        """All rows as tuples, in insertion order (tests and diagnostics)."""
        return list(zip(*self._column_values()))

    def has_row(self, subject: int, obj: int) -> bool:
        """Whether the exact ``(subject, obj)`` row exists."""
        return (subject, obj) in self._dedup_set()

    def subjects(self) -> set[int]:
        """Distinct values in the ``subj`` column."""
        return set(self._column_values()[0])

    def objects(self) -> set[int]:
        """Distinct values in the ``obj`` column."""
        return set(self._column_values()[1])

    # ------------------------------------------------------------------
    # columnar access (the vectorized join engine's surface)
    # ------------------------------------------------------------------
    def subject_ids(self) -> "np.ndarray":
        """The ``subj`` column as an int64 array (cached copy).

        Must be a real copy (``np.array``), not ``np.asarray``: the
        latter returns a buffer-exporting *view* of the ``array('q')``,
        which both pins the column against future appends (BufferError)
        and would silently alias mutations.
        """
        if self._subject_np is None:
            self._subject_np = np.array(self._subjects, dtype=np.int64)
        return self._subject_np

    def object_ids(self) -> "np.ndarray":
        """The ``obj`` column as an int64 array (cached copy)."""
        if self._object_np is None:
            self._object_np = np.array(self._objects, dtype=np.int64)
        return self._object_np

    def _subject_group_index(self) -> _SortedGroupIndex:
        if self._subject_index is None:
            self._subject_index = _SortedGroupIndex(self.subject_ids())
        return self._subject_index

    def _object_group_index(self) -> _SortedGroupIndex:
        if self._object_index is None:
            self._object_index = _SortedGroupIndex(self.object_ids())
        return self._object_index

    def build_indexes(self) -> None:
        """Materialize every lazy index now (snapshot builds call this so a
        loaded snapshot starts with warm probe indexes)."""
        if len(self):
            self._subject_group_index()
            self._object_group_index()
            self._ensure_pair_index()

    def subject_buckets(self) -> dict[int, list[int]]:
        """Scalar probe index: subject -> matched ``obj`` values, in row
        insertion order (lazy; used by the join's small-relation tail,
        where per-key dict lookups beat whole-array numpy calls)."""
        if self._subject_buckets is None:
            buckets: dict[int, list[int]] = {}
            for subject, obj in zip(*self._column_values()):
                bucket = buckets.get(subject)
                if bucket is None:
                    buckets[subject] = [obj]
                else:
                    bucket.append(obj)
            self._subject_buckets = buckets
        return self._subject_buckets

    def object_buckets(self) -> dict[int, list[int]]:
        """Scalar probe index: object -> matched ``subj`` values, in row
        insertion order (lazy)."""
        if self._object_buckets is None:
            buckets: dict[int, list[int]] = {}
            for subject, obj in zip(*self._column_values()):
                bucket = buckets.get(obj)
                if bucket is None:
                    buckets[obj] = [subject]
                else:
                    bucket.append(subject)
            self._object_buckets = buckets
        return self._object_buckets

    def probe_counts_subject(self, keys: "np.ndarray") -> "np.ndarray":
        """Number of rows matching each probe key on the ``subj`` column."""
        if not len(self):
            return np.zeros(len(keys), dtype=np.int64)
        return self._subject_group_index().lookup(keys)[0]

    def probe_counts_object(self, keys: "np.ndarray") -> "np.ndarray":
        """Number of rows matching each probe key on the ``obj`` column."""
        if not len(self):
            return np.zeros(len(keys), dtype=np.int64)
        return self._object_group_index().lookup(keys)[0]

    def _expand(
        self, index: _SortedGroupIndex, keys: "np.ndarray", values: "np.ndarray"
    ) -> tuple["np.ndarray", "np.ndarray"]:
        counts, starts = index.lookup(keys)
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        probe_idx = np.repeat(np.arange(len(keys), dtype=np.int64), counts)
        offsets = np.cumsum(counts)
        # Position of each expanded slot within its probe key's group.
        local = np.arange(total, dtype=np.int64) - np.repeat(offsets - counts, counts)
        source_rows = index.order[np.repeat(starts, counts) + local]
        return probe_idx, values[source_rows]

    def probe_expand_subject(
        self, keys: "np.ndarray"
    ) -> tuple["np.ndarray", "np.ndarray"]:
        """Vectorized subject probe for a whole column of keys.

        Returns ``(probe_idx, objects)``: for every match, the position of
        the probe key that produced it and the matched row's ``obj`` value.
        Matches of one key appear in row insertion order, exactly like the
        dict buckets of :class:`EdgeTable`.
        """
        if not len(self):
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return self._expand(self._subject_group_index(), keys, self.object_ids())

    def probe_expand_object(
        self, keys: "np.ndarray"
    ) -> tuple["np.ndarray", "np.ndarray"]:
        """Vectorized object probe: ``(probe_idx, subjects)`` per match."""
        if not len(self):
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return self._expand(self._object_group_index(), keys, self.subject_ids())

    def _ensure_pair_index(self) -> None:
        if self._pair_keys is None:
            # Encode (subj, obj) as subj * stride + obj.  Ids are dense
            # vocabulary indexes, so stride fits comfortably in int64
            # (overflow would need ~3e9 distinct entities).
            self._pair_stride = int(self.object_ids().max()) + 1 if len(self) else 1
            self._pair_keys = np.sort(
                self.subject_ids() * self._pair_stride + self.object_ids()
            )

    def contains_pairs(
        self, subjects: "np.ndarray", objects: "np.ndarray"
    ) -> "np.ndarray":
        """Vectorized row membership: a bool per ``(subjects[i], objects[i])``."""
        if not len(self):
            return np.zeros(len(subjects), dtype=bool)
        self._ensure_pair_index()
        keys = subjects * self._pair_stride + objects
        # Objects outside the stride cannot encode an existing pair.
        in_range = (objects >= 0) & (objects < self._pair_stride)
        position = np.searchsorted(self._pair_keys, keys)
        safe = np.minimum(position, len(self._pair_keys) - 1)
        return in_range & (self._pair_keys[safe] == keys)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(label={self._label!r}, rows={len(self)})"
