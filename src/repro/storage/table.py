"""Per-label two-column edge tables with hash indexes (Sec. V-A).

The vertical-partitioning scheme stores every edge label as its own
``(subj, obj)`` table.  For efficient hash joins, each table carries two
in-memory hash indexes, one keyed on ``subj`` and one on ``obj``, mirroring
the paper's description of building both hash tables before any query
arrives.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


class EdgeTable:
    """All edges of a single label, as a two-column ``(subj, obj)`` table."""

    def __init__(self, label: str, rows: Iterable[tuple[str, str]] = ()) -> None:
        self._label = label
        self._rows: list[tuple[str, str]] = []
        self._by_subject: dict[str, list[tuple[str, str]]] = {}
        self._by_object: dict[str, list[tuple[str, str]]] = {}
        self._row_set: set[tuple[str, str]] = set()
        for subject, obj in rows:
            self.add_row(subject, obj)

    @property
    def label(self) -> str:
        """The edge label this table stores."""
        return self._label

    def add_row(self, subject: str, obj: str) -> None:
        """Insert one ``(subj, obj)`` row (duplicates are ignored)."""
        row = (subject, obj)
        if row in self._row_set:
            return
        self._row_set.add(row)
        self._rows.append(row)
        self._by_subject.setdefault(subject, []).append(row)
        self._by_object.setdefault(obj, []).append(row)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in self._row_set

    def rows(self) -> list[tuple[str, str]]:
        """All rows, in insertion order."""
        return list(self._rows)

    def probe_subject(self, subject: str) -> list[tuple[str, str]]:
        """Rows whose ``subj`` equals ``subject`` (hash lookup)."""
        return self._by_subject.get(subject, [])

    def probe_object(self, obj: str) -> list[tuple[str, str]]:
        """Rows whose ``obj`` equals ``obj`` (hash lookup)."""
        return self._by_object.get(obj, [])

    def has_row(self, subject: str, obj: str) -> bool:
        """Whether the exact ``(subject, obj)`` row exists."""
        return (subject, obj) in self._row_set

    def subjects(self) -> set[str]:
        """Distinct values in the ``subj`` column."""
        return set(self._by_subject)

    def objects(self) -> set[str]:
        """Distinct values in the ``obj`` column."""
        return set(self._by_object)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(label={self._label!r}, rows={len(self._rows)})"
