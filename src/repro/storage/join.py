"""Hash-join evaluation of query graphs over the vertical-partition store.

A query graph's nodes act as join variables; its edges are lookups into the
per-label tables.  The evaluator materializes *relations*: sets of variable
bindings (one row per candidate answer graph).  Definition 3 of the paper
requires the node mapping to be a bijection, so rows never bind two distinct
query nodes to the same data entity when ``injective=True`` (the default).

Column names (the ``variables``) are query-graph node strings, but the row
*values* are whatever ids the store's vocabulary produced — dense ints for
the interning :class:`~repro.storage.vocabulary.Vocabulary`, raw strings
for the :class:`~repro.storage.vocabulary.IdentityVocabulary` reference
path.  The join logic is id-type agnostic; callers that need entity strings
decode rows through ``store.vocabulary`` when materializing answers.

Two entry points are provided:

* :func:`evaluate_query_edges` — evaluate a whole query graph from scratch
  using a right-deep chain of hash joins in a planned order.
* :func:`extend_with_edge` — the incremental step used by the lattice
  exploration (Sec. V-B): take the materialized answers of a child query
  graph ``Q' = Q − e`` as the probe relation and join one more edge ``e``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.exceptions import LatticeError
from repro.graph.knowledge_graph import Edge
from repro.storage.plan import plan_join_order
from repro.storage.store import VerticalPartitionStore
from repro.storage.vocabulary import EntityId


class Relation:
    """A set of variable bindings produced by joining query-graph edges.

    Attributes
    ----------
    variables:
        Query-graph node names, in column order.
    rows:
        Interned entity-id tuples aligned with ``variables`` (ints under
        the interning vocabulary, strings under the identity vocabulary).
    """

    __slots__ = ("variables", "rows", "_index")

    def __init__(
        self,
        variables: tuple[str, ...],
        rows: list[tuple[EntityId, ...]] | None = None,
        index: dict[str, int] | None = None,
    ) -> None:
        self.variables = variables
        self.rows = rows if rows is not None else []
        # Schema-preserving operations (join filters, self-match removal)
        # pass the probe relation's column index through instead of
        # rebuilding the dict.
        self._index = (
            index
            if index is not None
            else {var: i for i, var in enumerate(variables)}
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(variables={self.variables!r}, "
            f"rows={len(self.rows)})"
        )

    @property
    def num_rows(self) -> int:
        """Number of binding rows."""
        return len(self.rows)

    def is_empty(self) -> bool:
        """Whether the relation has no rows."""
        return not self.rows

    def has_variable(self, variable: str) -> bool:
        """Whether ``variable`` is one of the columns."""
        return variable in self._index

    def column(self, variable: str) -> int:
        """Column index of ``variable``; raises ``KeyError`` if absent."""
        return self._index[variable]

    def bindings(self) -> Iterable[dict[str, EntityId]]:
        """Yield each row as a ``{variable: entity id}`` mapping."""
        for row in self.rows:
            yield dict(zip(self.variables, row))

    def project(self, variables: Sequence[str]) -> list[tuple[EntityId, ...]]:
        """Project rows onto ``variables`` (order preserved, duplicates kept)."""
        indexes = [self._index[var] for var in variables]
        return [tuple(row[i] for i in indexes) for row in self.rows]

    def distinct_projection(self, variables: Sequence[str]) -> set[tuple[EntityId, ...]]:
        """Distinct projection of rows onto ``variables``."""
        return set(self.project(variables))


def _empty_relation() -> Relation:
    return Relation(variables=(), rows=[])


def extend_with_edge(
    store: VerticalPartitionStore,
    relation: Relation,
    edge: Edge,
    injective: bool = True,
    max_rows: int | None = None,
) -> Relation:
    """Join one more query-graph ``edge`` onto an existing ``relation``.

    The edge's subject/object are query-graph node names.  Whichever of the
    two is already a column of ``relation`` is used to probe the hash index
    of the edge's label table; unbound endpoints become new columns.

    Parameters
    ----------
    store:
        The vertical-partition store of the data graph.
    relation:
        Materialized bindings of the query graph evaluated so far.  Must be
        non-degenerate: at least one endpoint of ``edge`` must already be a
        column, unless ``relation`` has no columns at all (first edge).
    injective:
        Enforce the Definition-3 bijection (no two query nodes bound to the
        same entity).
    max_rows:
        Optional cap on the size of the output; exceeding it raises
        :class:`~repro.exceptions.LatticeError` so callers can fall back or
        abort gracefully rather than exhaust memory.  The cap is enforced
        on every appended row, including the self-loop
        (``subject_var == object_var``) path of the first edge.
    """
    table = store.table_or_empty(edge.label)
    subject_var, object_var = edge.subject, edge.object

    if not relation.variables:
        variables = (
            (subject_var,) if subject_var == object_var else (subject_var, object_var)
        )
        rows: list[tuple[EntityId, ...]] = []
        for subj, obj in table:
            if subject_var == object_var:
                if subj != obj:
                    continue
                candidate = (subj,)
            else:
                candidate = (subj, obj)
                if injective and subj == obj:
                    continue
            rows.append(candidate)
            if max_rows is not None and len(rows) > max_rows:
                raise LatticeError(
                    f"intermediate relation exceeded max_rows={max_rows}"
                )
        return Relation(variables=variables, rows=rows)

    has_subject = relation.has_variable(subject_var)
    has_object = relation.has_variable(object_var)
    if not has_subject and not has_object:
        raise LatticeError(
            f"edge {edge!r} shares no variable with the probe relation "
            f"{relation.variables!r}; join plans must stay connected"
        )

    new_variables = relation.variables
    if not has_subject:
        new_variables = new_variables + (subject_var,)
    if not has_object and object_var != subject_var:
        new_variables = new_variables + (object_var,)

    # Probe rows produced under ``injective=True`` are injective already,
    # so a one-column extension violates injectivity exactly when the new
    # value is already present in the row — a C-level membership test
    # instead of building a set per candidate row.  (Callers must not mix
    # an ``injective=False`` probe relation into an ``injective=True``
    # extension; the explorers never do.)
    out_rows: list[tuple[EntityId, ...]] = []
    append = out_rows.append

    if has_subject and has_object:
        subject_col = relation.column(subject_var)
        object_col = relation.column(object_var)
        row_set = table.row_set
        for row in relation.rows:
            if (row[subject_col], row[object_col]) in row_set:
                append(row)
        # Pure filter: the output never outgrows the (already capped) input,
        # but honor an explicitly smaller cap.
        if max_rows is not None and len(out_rows) > max_rows:
            raise LatticeError(f"intermediate relation exceeded max_rows={max_rows}")
        return Relation(new_variables, out_rows, index=relation._index)
    elif has_subject:
        # A self-loop edge (subject_var == object_var) can never reach this
        # branch: both lookups hit the same column, so it either takes the
        # filter branch above or the first-edge path.
        subject_col = relation.column(subject_var)
        by_subject = table.by_subject
        for row in relation.rows:
            bound = row[subject_col]
            matches = by_subject.get(bound)
            if not matches:
                continue
            for _, obj in matches:
                if injective and obj in row:
                    continue
                append(row + (obj,))
            if max_rows is not None and len(out_rows) > max_rows:
                raise LatticeError(
                    f"intermediate relation exceeded max_rows={max_rows}"
                )
    else:
        object_col = relation.column(object_var)
        by_object = table.by_object
        for row in relation.rows:
            bound = row[object_col]
            matches = by_object.get(bound)
            if not matches:
                continue
            for subj, _ in matches:
                if injective and subj in row:
                    continue
                append(row + (subj,))
            if max_rows is not None and len(out_rows) > max_rows:
                raise LatticeError(
                    f"intermediate relation exceeded max_rows={max_rows}"
                )

    return Relation(new_variables, out_rows)


def evaluate_query_edges(
    store: VerticalPartitionStore,
    edges: Sequence[Edge],
    injective: bool = True,
    max_rows: int | None = None,
) -> Relation:
    """Evaluate a weakly connected query graph given as a list of edges.

    Returns the relation whose columns are the query graph's nodes and whose
    rows are all matches (answer-graph node mappings).  The relation is
    empty if the query graph has no answers.
    """
    if not edges:
        return _empty_relation()
    plan = plan_join_order(edges, store)
    relation = _empty_relation()
    for edge in plan:
        relation = extend_with_edge(
            store, relation, edge, injective=injective, max_rows=max_rows
        )
        if relation.is_empty():
            # Preserve the full schema so projections still work downstream.
            missing = [
                node
                for e in plan
                for node in (e.subject, e.object)
                if node not in relation.variables
            ]
            ordered_missing = tuple(dict.fromkeys(missing))
            return Relation(variables=relation.variables + ordered_missing, rows=[])
    return relation
