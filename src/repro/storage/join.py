"""Hash-join evaluation of query graphs over the vertical-partition store.

A query graph's nodes act as join variables; its edges are lookups into the
per-label tables.  The evaluator materializes *relations*: sets of variable
bindings (one row per candidate answer graph).  Definition 3 of the paper
requires the node mapping to be a bijection, so rows never bind two distinct
query nodes to the same data entity when ``injective=True`` (the default).

Two entry points are provided:

* :func:`evaluate_query_edges` — evaluate a whole query graph from scratch
  using a right-deep chain of hash joins in a planned order.
* :func:`extend_with_edge` — the incremental step used by the lattice
  exploration (Sec. V-B): take the materialized answers of a child query
  graph ``Q' = Q − e`` as the probe relation and join one more edge ``e``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.exceptions import LatticeError
from repro.graph.knowledge_graph import Edge
from repro.storage.plan import plan_join_order
from repro.storage.store import VerticalPartitionStore


@dataclass
class Relation:
    """A set of variable bindings produced by joining query-graph edges.

    Attributes
    ----------
    variables:
        Query-graph node names, in column order.
    rows:
        Data-entity tuples aligned with ``variables``.
    """

    variables: tuple[str, ...]
    rows: list[tuple[str, ...]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._index = {var: i for i, var in enumerate(self.variables)}

    @property
    def num_rows(self) -> int:
        """Number of binding rows."""
        return len(self.rows)

    def is_empty(self) -> bool:
        """Whether the relation has no rows."""
        return not self.rows

    def has_variable(self, variable: str) -> bool:
        """Whether ``variable`` is one of the columns."""
        return variable in self._index

    def column(self, variable: str) -> int:
        """Column index of ``variable``; raises ``KeyError`` if absent."""
        return self._index[variable]

    def bindings(self) -> Iterable[dict[str, str]]:
        """Yield each row as a ``{variable: entity}`` mapping."""
        for row in self.rows:
            yield dict(zip(self.variables, row))

    def project(self, variables: Sequence[str]) -> list[tuple[str, ...]]:
        """Project rows onto ``variables`` (order preserved, duplicates kept)."""
        indexes = [self._index[var] for var in variables]
        return [tuple(row[i] for i in indexes) for row in self.rows]

    def distinct_projection(self, variables: Sequence[str]) -> set[tuple[str, ...]]:
        """Distinct projection of rows onto ``variables``."""
        return set(self.project(variables))


def _empty_relation() -> Relation:
    return Relation(variables=(), rows=[])


def _row_violates_injectivity(row: tuple[str, ...]) -> bool:
    return len(set(row)) != len(row)


def extend_with_edge(
    store: VerticalPartitionStore,
    relation: Relation,
    edge: Edge,
    injective: bool = True,
    max_rows: int | None = None,
) -> Relation:
    """Join one more query-graph ``edge`` onto an existing ``relation``.

    The edge's subject/object are query-graph node names.  Whichever of the
    two is already a column of ``relation`` is used to probe the hash index
    of the edge's label table; unbound endpoints become new columns.

    Parameters
    ----------
    store:
        The vertical-partition store of the data graph.
    relation:
        Materialized bindings of the query graph evaluated so far.  Must be
        non-degenerate: at least one endpoint of ``edge`` must already be a
        column, unless ``relation`` has no columns at all (first edge).
    injective:
        Enforce the Definition-3 bijection (no two query nodes bound to the
        same entity).
    max_rows:
        Optional cap on the size of the output; exceeding it raises
        :class:`~repro.exceptions.LatticeError` so callers can fall back or
        abort gracefully rather than exhaust memory.
    """
    table = store.table_or_empty(edge.label)
    subject_var, object_var = edge.subject, edge.object

    if not relation.variables:
        variables = (
            (subject_var,) if subject_var == object_var else (subject_var, object_var)
        )
        rows: list[tuple[str, ...]] = []
        for subj, obj in table:
            if subject_var == object_var:
                if subj == obj:
                    rows.append((subj,))
                continue
            candidate = (subj, obj)
            if injective and _row_violates_injectivity(candidate):
                continue
            rows.append(candidate)
            if max_rows is not None and len(rows) > max_rows:
                raise LatticeError(
                    f"intermediate relation exceeded max_rows={max_rows}"
                )
        return Relation(variables=variables, rows=rows)

    has_subject = relation.has_variable(subject_var)
    has_object = relation.has_variable(object_var)
    if not has_subject and not has_object:
        raise LatticeError(
            f"edge {edge!r} shares no variable with the probe relation "
            f"{relation.variables!r}; join plans must stay connected"
        )

    new_variables = relation.variables
    if not has_subject:
        new_variables = new_variables + (subject_var,)
    if not has_object and object_var != subject_var:
        new_variables = new_variables + (object_var,)

    out_rows: list[tuple[str, ...]] = []
    subject_col = relation.column(subject_var) if has_subject else None
    object_col = relation.column(object_var) if has_object else None

    for row in relation.rows:
        if has_subject and has_object:
            if table.has_row(row[subject_col], row[object_col]):
                out_rows.append(row)
        elif has_subject:
            bound = row[subject_col]
            for _, obj in table.probe_subject(bound):
                if subject_var == object_var and obj != bound:
                    continue
                new_row = row if subject_var == object_var else row + (obj,)
                if injective and _row_violates_injectivity(new_row):
                    continue
                out_rows.append(new_row)
        else:
            bound = row[object_col]
            for subj, _ in table.probe_object(bound):
                new_row = row + (subj,)
                if injective and _row_violates_injectivity(new_row):
                    continue
                out_rows.append(new_row)
        if max_rows is not None and len(out_rows) > max_rows:
            raise LatticeError(f"intermediate relation exceeded max_rows={max_rows}")

    return Relation(variables=new_variables, rows=out_rows)


def evaluate_query_edges(
    store: VerticalPartitionStore,
    edges: Sequence[Edge],
    injective: bool = True,
    max_rows: int | None = None,
) -> Relation:
    """Evaluate a weakly connected query graph given as a list of edges.

    Returns the relation whose columns are the query graph's nodes and whose
    rows are all matches (answer-graph node mappings).  The relation is
    empty if the query graph has no answers.
    """
    if not edges:
        return _empty_relation()
    plan = plan_join_order(edges, store)
    relation = _empty_relation()
    for edge in plan:
        relation = extend_with_edge(
            store, relation, edge, injective=injective, max_rows=max_rows
        )
        if relation.is_empty():
            # Preserve the full schema so projections still work downstream.
            missing = [
                node
                for e in plan
                for node in (e.subject, e.object)
                if node not in relation.variables
            ]
            ordered_missing = tuple(dict.fromkeys(missing))
            return Relation(variables=relation.variables + ordered_missing, rows=[])
    return relation
