"""Hash-join evaluation of query graphs over the vertical-partition store.

A query graph's nodes act as join variables; its edges are lookups into the
per-label tables.  The evaluator materializes *relations*: sets of variable
bindings (one row per candidate answer graph).  Definition 3 of the paper
requires the node mapping to be a bijection, so rows never bind two distinct
query nodes to the same data entity when ``injective=True`` (the default).

Column names (the ``variables``) are query-graph node strings, but the row
*values* are whatever ids the store's vocabulary produced — dense ints for
the interning :class:`~repro.storage.vocabulary.Vocabulary`, raw strings
for the :class:`~repro.storage.vocabulary.IdentityVocabulary` reference
path.  The join logic is id-type agnostic; callers that need entity strings
decode rows through ``store.vocabulary`` when materializing answers.

Two relation layouts back the same join semantics:

* :class:`ColumnarRelation` — the default engine: one int64 numpy array
  per variable.  Probes, filters and injectivity checks run as whole-array
  operations (:func:`_extend_columnar`); a store built ``columnar=True``
  produces these.
* :class:`Relation` — the original list-of-tuple-rows layout, kept as the
  reference engine (and the only engine for string ids / numpy-less
  installs).

Both are produced by the same two entry points, which dispatch on the
store's layout:

* :func:`evaluate_query_edges` — evaluate a whole query graph from scratch
  using a right-deep chain of hash joins in a planned order.
* :func:`extend_with_edge` — the incremental step used by the lattice
  exploration (Sec. V-B): take the materialized answers of a child query
  graph ``Q' = Q − e`` as the probe relation and join one more edge ``e``.

The two engines are equivalent by construction — identical rows, row
counts and ``max_rows`` overflow behavior — and the equivalence is pinned
end-to-end by ``tests/test_columnar_equivalence.py``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro._kernels import kernels
from repro.exceptions import LatticeError
from repro.graph.knowledge_graph import Edge
from repro.storage.plan import plan_join_order
from repro.storage.store import VerticalPartitionStore
from repro.storage.vocabulary import EntityId

try:  # numpy is optional: without it only the tuple-row engine runs.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

#: Probe expansions larger than this many candidate rows are processed in
#: slices so a hub-heavy join cannot materialize an arbitrarily large
#: intermediate array before the ``max_rows`` cap gets a chance to fire.
_EXPANSION_CHUNK_ROWS = 1 << 20

#: Probe relations at or below this many rows take the scalar tail of the
#: columnar engine: python loops over dict buckets, exactly mirroring the
#: tuple-row engine.  Fixed numpy call overhead (~a few µs per kernel)
#: dominates whole-array wins below roughly this size, and lattice
#: explorations evaluate thousands of such tiny relations per query.
_SCALAR_TAIL_ROWS = 64


class Relation:
    """A set of variable bindings produced by joining query-graph edges.

    Attributes
    ----------
    variables:
        Query-graph node names, in column order.
    rows:
        Interned entity-id tuples aligned with ``variables`` (ints under
        the interning vocabulary, strings under the identity vocabulary).
    """

    __slots__ = ("variables", "rows", "_index")

    def __init__(
        self,
        variables: tuple[str, ...],
        rows: list[tuple[EntityId, ...]] | None = None,
        index: dict[str, int] | None = None,
    ) -> None:
        self.variables = variables
        self.rows = rows if rows is not None else []
        # Schema-preserving operations (join filters, self-match removal)
        # pass the probe relation's column index through instead of
        # rebuilding the dict.
        self._index = (
            index
            if index is not None
            else {var: i for i, var in enumerate(variables)}
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(variables={self.variables!r}, "
            f"rows={len(self.rows)})"
        )

    @property
    def num_rows(self) -> int:
        """Number of binding rows."""
        return len(self.rows)

    def is_empty(self) -> bool:
        """Whether the relation has no rows."""
        return not self.rows

    def has_variable(self, variable: str) -> bool:
        """Whether ``variable`` is one of the columns."""
        return variable in self._index

    def column(self, variable: str) -> int:
        """Column index of ``variable``; raises ``KeyError`` if absent."""
        return self._index[variable]

    def bindings(self) -> Iterable[dict[str, EntityId]]:
        """Yield each row as a ``{variable: entity id}`` mapping."""
        for row in self.rows:
            yield dict(zip(self.variables, row))

    def project(self, variables: Sequence[str]) -> list[tuple[EntityId, ...]]:
        """Project rows onto ``variables`` (order preserved, duplicates kept)."""
        indexes = [self._index[var] for var in variables]
        return [tuple(row[i] for i in indexes) for row in self.rows]

    def distinct_projection(self, variables: Sequence[str]) -> set[tuple[EntityId, ...]]:
        """Distinct projection of rows onto ``variables``."""
        return set(self.project(variables))

    def to_rows(self) -> list[tuple[EntityId, ...]]:
        """The rows as a fresh list of tuples (shared accessor with
        :class:`ColumnarRelation` for tests and answer materialization)."""
        return list(self.rows)


class ColumnarRelation:
    """A set of variable bindings with a dual columnar/row layout.

    The columnar twin of :class:`Relation`: logically the same ordered
    multiset of rows, physically stored as one int64 numpy array per
    variable (``columns[i]`` binds ``variables[i]``), as a cached list of
    python-int tuple rows, or both.  The engine's bulk kernels read
    :attr:`columns`; its scalar tails (tiny relations, where fixed numpy
    call overhead dominates) read :meth:`to_rows`.  Each layout
    materializes lazily from the other on first use and is then cached,
    so chains of scalar extensions never touch numpy and chains of bulk
    extensions never build tuples.  Callers must treat both layouts as
    immutable.

    Only produced by stores built over the interning vocabulary (int ids).
    """

    __slots__ = ("variables", "_columns", "_rows", "_index")

    def __init__(
        self,
        variables: tuple[str, ...],
        columns: "list[np.ndarray] | None" = None,
        index: dict[str, int] | None = None,
        rows: list[tuple[int, ...]] | None = None,
    ) -> None:
        if columns is None and rows is None:
            raise ValueError("a ColumnarRelation needs columns or rows")
        self.variables = variables
        self._columns = columns
        self._rows = rows
        self._index = (
            index
            if index is not None
            else {var: i for i, var in enumerate(variables)}
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(variables={self.variables!r}, "
            f"rows={self.num_rows})"
        )

    @property
    def columns(self) -> "list[np.ndarray]":
        """The column arrays (materialized from cached rows if needed)."""
        if self._columns is None:
            self._columns = _columns_from_rows(self._rows, len(self.variables))
        return self._columns

    @property
    def num_rows(self) -> int:
        """Number of binding rows."""
        if self._rows is not None:
            return len(self._rows)
        return len(self._columns[0]) if self._columns else 0

    def is_empty(self) -> bool:
        """Whether the relation has no rows."""
        return self.num_rows == 0

    def has_variable(self, variable: str) -> bool:
        """Whether ``variable`` is one of the columns."""
        return variable in self._index

    def column(self, variable: str) -> int:
        """Column index of ``variable``; raises ``KeyError`` if absent."""
        return self._index[variable]

    def column_values(self, variable: str) -> "np.ndarray":
        """The binding column of ``variable`` (the array itself)."""
        return self.columns[self._index[variable]]

    @property
    def rows(self) -> list[tuple[int, ...]]:
        """The rows as python-int tuples (cached; treat as read-only)."""
        return self.to_rows()

    def to_rows(self) -> list[tuple[int, ...]]:
        """The rows as a list of python-int tuples (row order preserved,
        materialized from the columns on first call, then cached)."""
        if self._rows is None:
            if not self._columns:
                self._rows = []
            else:
                self._rows = list(
                    zip(*(column.tolist() for column in self._columns))
                )
        return self._rows

    def bindings(self) -> Iterable[dict[str, int]]:
        """Yield each row as a ``{variable: entity id}`` mapping."""
        for row in self.to_rows():
            yield dict(zip(self.variables, row))

    def project(self, variables: Sequence[str]) -> list[tuple[int, ...]]:
        """Project rows onto ``variables`` (order preserved, duplicates kept)."""
        indexes = [self._index[var] for var in variables]
        return [tuple(row[i] for i in indexes) for row in self.to_rows()]

    def distinct_projection(self, variables: Sequence[str]) -> set[tuple[int, ...]]:
        """Distinct projection of rows onto ``variables``."""
        return set(self.project(variables))

    def prefers_columns(self) -> bool:
        """Whether bulk (vectorized) processing should be used.

        True for relations that are already column-backed and larger than
        the scalar-tail threshold; rows-backed or tiny relations are
        cheaper to process with the scalar code paths.
        """
        return self._columns is not None and self.num_rows > _SCALAR_TAIL_ROWS


def _empty_relation(store: VerticalPartitionStore) -> "Relation | ColumnarRelation":
    if store.is_columnar:
        return ColumnarRelation(variables=(), columns=[])
    return Relation(variables=(), rows=[])


def _raise_max_rows(max_rows: int) -> None:
    raise LatticeError(f"intermediate relation exceeded max_rows={max_rows}")


def _columns_from_rows(rows: list[tuple[int, ...]], width: int) -> "list[np.ndarray]":
    """Rebuild int64 column arrays from materialized tuple rows."""
    if not rows:
        return [np.empty(0, dtype=np.int64) for _ in range(width)]
    matrix = np.array(rows, dtype=np.int64)
    return [matrix[:, i] for i in range(width)]


def _extend_columnar_scalar(
    table,
    relation: "ColumnarRelation",
    subject_var: str,
    object_var: str,
    has_subject: bool,
    has_object: bool,
    injective: bool,
    max_rows: int | None,
) -> "ColumnarRelation":
    """The scalar tail of the columnar engine, for tiny probe relations.

    Mirrors the tuple-row engine's loops statement for statement (same
    match order, same injectivity test, same per-probe-row ``max_rows``
    check) over the columnar table's lazy dict buckets.  Inputs and
    outputs use the relation's row layout, so scalar chains never touch
    numpy; the column arrays materialize lazily only if a later bulk
    kernel asks for them.
    """
    in_rows = relation.to_rows()
    if has_subject and has_object:
        out_rows = kernels.filter_pairs(
            in_rows,
            relation.column(subject_var),
            relation.column(object_var),
            table._dedup_set(),
        )
        if max_rows is not None and len(out_rows) > max_rows:
            _raise_max_rows(max_rows)
        return ColumnarRelation(
            relation.variables, rows=out_rows, index=relation._index
        )

    if has_subject:
        buckets = table.subject_buckets()
        bound_col = relation.column(subject_var)
        new_variable = object_var
    else:
        buckets = table.object_buckets()
        bound_col = relation.column(object_var)
        new_variable = subject_var
    new_variables = relation.variables + (new_variable,)

    out_rows = kernels.probe_tail(
        in_rows, buckets, bound_col, injective,
        -1 if max_rows is None else max_rows,
    )
    if out_rows is None:
        _raise_max_rows(max_rows)
    return ColumnarRelation(new_variables, rows=out_rows)


def _extend_columnar(
    store: VerticalPartitionStore,
    relation: "ColumnarRelation",
    edge: Edge,
    injective: bool,
    max_rows: int | None,
) -> "ColumnarRelation":
    """Vectorized one-edge hash join over columnar tables and relations.

    Mirrors the tuple-row engine branch for branch: first edge, pure
    filter (both endpoints bound) and one-sided probe.  The ``max_rows``
    cap raises exactly when the tuple-row engine would (its incremental
    checks fire iff the final surviving row count exceeds the cap); probe
    expansions above :data:`_EXPANSION_CHUNK_ROWS` candidate rows are
    processed in probe-row slices so the check can fire before a huge
    intermediate is fully materialized.
    """
    table = store.table_or_empty(edge.label)
    subject_var, object_var = edge.subject, edge.object

    if not relation.variables:
        subjects, objects = table.subject_ids(), table.object_ids()
        if subject_var == object_var:
            loops = subjects[subjects == objects]
            out = ColumnarRelation((subject_var,), [loops])
        else:
            if injective:
                keep = subjects != objects
                subjects, objects = subjects[keep], objects[keep]
            out = ColumnarRelation((subject_var, object_var), [subjects, objects])
        if max_rows is not None and out.num_rows > max_rows:
            _raise_max_rows(max_rows)
        return out

    has_subject = relation.has_variable(subject_var)
    has_object = relation.has_variable(object_var)
    if not has_subject and not has_object:
        raise LatticeError(
            f"edge {edge!r} shares no variable with the probe relation "
            f"{relation.variables!r}; join plans must stay connected"
        )

    if not relation.prefers_columns():
        return _extend_columnar_scalar(
            table, relation, subject_var, object_var,
            has_subject, has_object, injective, max_rows,
        )

    if has_subject and has_object:
        keep = table.contains_pairs(
            relation.columns[relation.column(subject_var)],
            relation.columns[relation.column(object_var)],
        )
        out = ColumnarRelation(
            relation.variables,
            [column[keep] for column in relation.columns],
            index=relation._index,
        )
        if max_rows is not None and out.num_rows > max_rows:
            _raise_max_rows(max_rows)
        return out

    # One-sided probe: expand each probe row by its matches in the table.
    if has_subject:
        bound = relation.columns[relation.column(subject_var)]
        count_matches = table.probe_counts_subject
        expand = table.probe_expand_subject
        new_variable = object_var
    else:
        bound = relation.columns[relation.column(object_var)]
        count_matches = table.probe_counts_object
        expand = table.probe_expand_object
        new_variable = subject_var
    new_variables = relation.variables + (new_variable,)

    def probe_slice(lo: int, hi: int) -> tuple["np.ndarray", "np.ndarray"]:
        probe_idx, new_values = expand(bound[lo:hi])
        if injective and len(new_values):
            violates = np.zeros(len(new_values), dtype=bool)
            for column in relation.columns:
                violates |= column[lo:hi][probe_idx] == new_values
            keep = ~violates
            probe_idx, new_values = probe_idx[keep], new_values[keep]
        return probe_idx + lo, new_values

    # The counts pre-pass exists only to bound memory under a row cap; the
    # uncapped hot path goes straight to one expansion (a single index
    # lookup).
    if max_rows is None:
        probe_idx, new_values = probe_slice(0, relation.num_rows)
    else:
        counts = count_matches(bound)
        total_candidates = int(counts.sum())
        if total_candidates <= _EXPANSION_CHUNK_ROWS:
            probe_idx, new_values = probe_slice(0, relation.num_rows)
            if len(new_values) > max_rows:
                _raise_max_rows(max_rows)
        else:
            # Split the probe rows so each slice expands to at most
            # roughly one chunk of candidate rows, raising as soon as the
            # surviving row count crosses the cap.
            boundaries = np.searchsorted(
                np.cumsum(counts),
                np.arange(
                    _EXPANSION_CHUNK_ROWS, total_candidates, _EXPANSION_CHUNK_ROWS
                ),
                side="left",
            )
            cut_points = [0, *(int(b) + 1 for b in boundaries), relation.num_rows]
            pieces: list[tuple[np.ndarray, np.ndarray]] = []
            kept = 0
            for lo, hi in zip(cut_points, cut_points[1:]):
                if lo >= hi:
                    continue
                piece = probe_slice(lo, hi)
                kept += len(piece[0])
                if kept > max_rows:
                    _raise_max_rows(max_rows)
                pieces.append(piece)
            probe_idx = np.concatenate([piece[0] for piece in pieces])
            new_values = np.concatenate([piece[1] for piece in pieces])

    out_columns = [column[probe_idx] for column in relation.columns]
    out_columns.append(new_values)
    return ColumnarRelation(new_variables, out_columns)


def extend_with_edge(
    store: VerticalPartitionStore,
    relation: "Relation | ColumnarRelation",
    edge: Edge,
    injective: bool = True,
    max_rows: int | None = None,
) -> "Relation | ColumnarRelation":
    """Join one more query-graph ``edge`` onto an existing ``relation``.

    The edge's subject/object are query-graph node names.  Whichever of the
    two is already a column of ``relation`` is used to probe the hash index
    of the edge's label table; unbound endpoints become new columns.

    Parameters
    ----------
    store:
        The vertical-partition store of the data graph.
    relation:
        Materialized bindings of the query graph evaluated so far.  Must be
        non-degenerate: at least one endpoint of ``edge`` must already be a
        column, unless ``relation`` has no columns at all (first edge).
    injective:
        Enforce the Definition-3 bijection (no two query nodes bound to the
        same entity).
    max_rows:
        Optional cap on the size of the output; exceeding it raises
        :class:`~repro.exceptions.LatticeError` so callers can fall back or
        abort gracefully rather than exhaust memory.  The cap is enforced
        on every appended row, including the self-loop
        (``subject_var == object_var``) path of the first edge.

    The join layout follows the store: a columnar store takes the
    vectorized :func:`_extend_columnar` path and returns a
    :class:`ColumnarRelation`; otherwise the tuple-row code below runs.
    """
    if store.is_columnar:
        return _extend_columnar(store, relation, edge, injective, max_rows)
    table = store.table_or_empty(edge.label)
    subject_var, object_var = edge.subject, edge.object

    if not relation.variables:
        variables = (
            (subject_var,) if subject_var == object_var else (subject_var, object_var)
        )
        rows: list[tuple[EntityId, ...]] = []
        for subj, obj in table:
            if subject_var == object_var:
                if subj != obj:
                    continue
                candidate = (subj,)
            else:
                candidate = (subj, obj)
                if injective and subj == obj:
                    continue
            rows.append(candidate)
            if max_rows is not None and len(rows) > max_rows:
                raise LatticeError(
                    f"intermediate relation exceeded max_rows={max_rows}"
                )
        return Relation(variables=variables, rows=rows)

    has_subject = relation.has_variable(subject_var)
    has_object = relation.has_variable(object_var)
    if not has_subject and not has_object:
        raise LatticeError(
            f"edge {edge!r} shares no variable with the probe relation "
            f"{relation.variables!r}; join plans must stay connected"
        )

    new_variables = relation.variables
    if not has_subject:
        new_variables = new_variables + (subject_var,)
    if not has_object and object_var != subject_var:
        new_variables = new_variables + (object_var,)

    # Probe rows produced under ``injective=True`` are injective already,
    # so a one-column extension violates injectivity exactly when the new
    # value is already present in the row — a C-level membership test
    # instead of building a set per candidate row.  (Callers must not mix
    # an ``injective=False`` probe relation into an ``injective=True``
    # extension; the explorers never do.)
    out_rows: list[tuple[EntityId, ...]] = []
    append = out_rows.append

    if has_subject and has_object:
        subject_col = relation.column(subject_var)
        object_col = relation.column(object_var)
        row_set = table.row_set
        for row in relation.rows:
            if (row[subject_col], row[object_col]) in row_set:
                append(row)
        # Pure filter: the output never outgrows the (already capped) input,
        # but honor an explicitly smaller cap.
        if max_rows is not None and len(out_rows) > max_rows:
            raise LatticeError(f"intermediate relation exceeded max_rows={max_rows}")
        return Relation(new_variables, out_rows, index=relation._index)
    elif has_subject:
        # A self-loop edge (subject_var == object_var) can never reach this
        # branch: both lookups hit the same column, so it either takes the
        # filter branch above or the first-edge path.
        subject_col = relation.column(subject_var)
        by_subject = table.by_subject
        for row in relation.rows:
            bound = row[subject_col]
            matches = by_subject.get(bound)
            if not matches:
                continue
            for _, obj in matches:
                if injective and obj in row:
                    continue
                append(row + (obj,))
            if max_rows is not None and len(out_rows) > max_rows:
                raise LatticeError(
                    f"intermediate relation exceeded max_rows={max_rows}"
                )
    else:
        object_col = relation.column(object_var)
        by_object = table.by_object
        for row in relation.rows:
            bound = row[object_col]
            matches = by_object.get(bound)
            if not matches:
                continue
            for subj, _ in matches:
                if injective and subj in row:
                    continue
                append(row + (subj,))
            if max_rows is not None and len(out_rows) > max_rows:
                raise LatticeError(
                    f"intermediate relation exceeded max_rows={max_rows}"
                )

    return Relation(new_variables, out_rows)


def _pad_empty_schema(
    store: VerticalPartitionStore,
    relation: "Relation | ColumnarRelation",
    plan_edges: Iterable[Edge],
) -> "Relation | ColumnarRelation":
    """An empty relation carrying every node of the plan as a column.

    Joins short-circuit as soon as an intermediate relation runs dry; the
    full schema is preserved so projections still work downstream.
    """
    missing = [
        node
        for e in plan_edges
        for node in (e.subject, e.object)
        if node not in relation.variables
    ]
    variables = relation.variables + tuple(dict.fromkeys(missing))
    if store.is_columnar:
        return ColumnarRelation(
            variables, [np.empty(0, dtype=np.int64) for _ in variables]
        )
    return Relation(variables=variables, rows=[])


def evaluate_query_edges(
    store: VerticalPartitionStore,
    edges: Sequence[Edge],
    injective: bool = True,
    max_rows: int | None = None,
    arena=None,
) -> "Relation | ColumnarRelation":
    """Evaluate a weakly connected query graph given as a list of edges.

    Returns the relation whose columns are the query graph's nodes and whose
    rows are all matches (answer-graph node mappings).  The relation is
    empty if the query graph has no answers.  The relation layout
    (columnar or tuple rows) follows the store's.

    ``arena`` — an optional :class:`~repro.storage.batch.JoinMemoArena` —
    memoizes the join plan and every plan-prefix relation so overlapping
    evaluations (across the lattice nodes of one query and across the
    queries of a batch) pay for each shared prefix once.  Results are
    byte-identical with or without an arena; an arena whose ``max_rows``
    does not match this call's (or a non-injective call) is ignored, since
    its memos would describe a different join.
    """
    if not edges:
        return _empty_relation(store)
    if arena is not None and (not injective or max_rows != arena.max_rows):
        arena = None
    if arena is None:
        plan = plan_join_order(edges, store)
        # Read-ahead: open (and madvise) every shard this plan will probe
        # before execution starts; a no-op on non-sharded stores.
        store.prefetch_labels({edge.label for edge in plan.order})
        relation = _empty_relation(store)
        for edge in plan:
            relation = extend_with_edge(
                store, relation, edge, injective=injective, max_rows=max_rows
            )
            if relation.is_empty():
                return _pad_empty_schema(store, relation, plan)
        return relation

    order = arena.plan_for(edges, store).order
    store.prefetch_labels({edge.label for edge in order})
    start, cached = arena.longest_prefix(order)
    if cached is not None:
        from repro.storage.batch import OVERFLOW

        if cached is OVERFLOW:
            _raise_max_rows(max_rows)
        relation = cached
    else:
        relation = arena.first_edge_relation(store, order[0], injective)
        if max_rows is not None and relation.num_rows > max_rows:
            _raise_max_rows(max_rows)
        arena.remember_prefix(order[:1], relation)
        start = 1
    if relation.is_empty():
        return _pad_empty_schema(store, relation, order)
    for at in range(start, len(order)):
        try:
            relation = extend_with_edge(
                store, relation, order[at], injective=injective, max_rows=max_rows
            )
        except LatticeError:
            from repro.storage.batch import OVERFLOW

            arena.remember_prefix(order[: at + 1], OVERFLOW)
            raise
        arena.remember_prefix(order[: at + 1], relation)
        if relation.is_empty():
            return _pad_empty_schema(store, relation, order)
    return relation
