"""Join-order planning for query graph evaluation.

A query graph with edges ``e_1..e_m`` corresponds to a multi-way join over
the per-label tables (Sec. V-A).  We evaluate it as a right-deep chain of
hash joins: pick a starting edge, then repeatedly join one more edge that
shares at least one node with the part already joined, probing the new
edge's table with the bound node value.

The planner is selectivity-aware in a simple, classical way: it starts from
the edge whose table is smallest and greedily adds the connected edge with
the smallest table next.  This keeps intermediate results small without
requiring a full cost model.

The greedy selection runs off a lazy-deletion min-heap keyed on
``(cardinality, edge)`` that is fed incident edges as nodes become bound,
instead of rescanning every remaining edge per step — same order, one
heap pop per chosen edge.  Both join engines (columnar and tuple-row)
consume the same plan, which keeps their intermediate relations — and
therefore their ``max_rows`` behavior — aligned row for row.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import LatticeError
from repro.graph.knowledge_graph import Edge
from repro.storage.store import VerticalPartitionStore


@dataclass(frozen=True)
class JoinPlan:
    """An ordered sequence of query-graph edges to join, plus metadata.

    ``order`` lists the edges in join order.  Every edge after the first
    shares at least one node with the union of the preceding edges
    (guaranteed for weakly connected query graphs).
    """

    order: tuple[Edge, ...]

    def __len__(self) -> int:
        return len(self.order)

    def __iter__(self):
        return iter(self.order)


def plan_join_order(
    edges: Sequence[Edge], store: VerticalPartitionStore | None = None
) -> JoinPlan:
    """Choose a connected, selectivity-aware join order for ``edges``.

    Parameters
    ----------
    edges:
        The edges of a weakly connected query graph.
    store:
        Optional store used to rank edges by table cardinality.  Without a
        store, the input order is kept (still made connected).

    Raises
    ------
    LatticeError
        If ``edges`` is empty or does not form a weakly connected graph.
    """
    if not edges:
        raise LatticeError("cannot plan a join over zero edges")

    if store is None:
        cardinalities = {edge: 0 for edge in edges}
    else:
        cardinalities = {edge: store.cardinality(edge.label) for edge in edges}

    remaining = list(edges)
    remaining.sort(key=lambda e: (cardinalities[e], e))
    first = remaining.pop(0)
    order = [first]
    pending = set(remaining)

    # node -> incident pending edges; edges enter the candidate heap when
    # one of their endpoints becomes bound.  An edge can be pushed twice
    # (once per endpoint) — the `pending` check on pop deduplicates, which
    # is exactly the lazy-deletion scheme of the exploration heaps.
    incident: dict[str, list[Edge]] = {}
    for edge in remaining:
        incident.setdefault(edge.subject, []).append(edge)
        if edge.object != edge.subject:
            incident.setdefault(edge.object, []).append(edge)

    bound_nodes: set[str] = set()
    heap: list[tuple[int, Edge]] = []

    def bind(node: str) -> None:
        if node in bound_nodes:
            return
        bound_nodes.add(node)
        for edge in incident.get(node, ()):
            heapq.heappush(heap, (cardinalities[edge], edge))

    bind(first.subject)
    bind(first.object)

    while pending:
        while heap:
            _, nxt = heapq.heappop(heap)
            if nxt in pending:
                break
        else:
            raise LatticeError(
                "query graph edges are not weakly connected; cannot form a join plan"
            )
        pending.discard(nxt)
        order.append(nxt)
        bind(nxt.subject)
        bind(nxt.object)

    return JoinPlan(order=tuple(order))
