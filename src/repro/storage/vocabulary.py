"""Entity vocabularies: interning data-graph entities as dense integers.

The join engine spends most of its time hashing and comparing entity
identifiers — once per probe, per row, per injectivity check.  Hashing a
Python string costs time proportional to its length, while hashing a small
``int`` is effectively free (CPython caches small ints and hashes them as
themselves).  The :class:`Vocabulary` therefore maps every entity string to
a dense integer id exactly once, offline, when the
:class:`~repro.storage.store.VerticalPartitionStore` is built; all tables,
hash indexes and intermediate join relations then carry ints, and answers
are decoded back to entity strings only when they are materialized for the
user (``lattice.exploration`` / ``core.answer``).

:class:`IdentityVocabulary` keeps the engine's *string path* alive: it maps
every term to itself, so a store built with it reproduces the pre-interning
behavior exactly.  The property tests use it as the reference engine to
assert that interning never changes an answer.

:class:`MappedVocabulary` is the zero-copy variant behind the v3 sharded
snapshot (:mod:`repro.storage.shards`): the terms live in one UTF-8 blob
addressed by an int64 offset column, both memory-mapped straight out of
the snapshot's vocabulary arena.  ``term_of`` is an offset slice + decode;
``id_of`` is a binary search over a mapped sort permutation of the terms —
no eager ``dict`` (or term list) is ever rebuilt, which is what keeps a
serve worker's private RSS free of the vocabulary entirely.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    import numpy as np

#: An entity identifier inside the engine: a dense ``int`` under the
#: interning :class:`Vocabulary`, or the entity string itself under the
#: :class:`IdentityVocabulary` reference path.
EntityId = int | str


class Vocabulary:
    """A bidirectional ``entity string <-> dense int id`` mapping.

    Ids are assigned in first-intern order starting at 0, so the reverse
    mapping is a plain list and decoding is an O(1) index.
    """

    __slots__ = ("_ids", "_terms")

    def __init__(self, terms: Iterable[str] = ()) -> None:
        self._ids: dict[str, int] = {}
        self._terms: list[str] = []
        for term in terms:
            self.intern(term)

    # The id map is a pure function of the term list, so snapshots carry
    # only the terms and the map is rebuilt with one C-level dict(zip(...))
    # — both smaller on disk and faster to load than pickling the dict.
    def __getstate__(self):
        return self._terms

    def __setstate__(self, terms: list[str]) -> None:
        self._terms = terms
        self._ids = dict(zip(terms, range(len(terms))))

    def intern(self, term: str) -> int:
        """Return the id of ``term``, assigning the next free id if new."""
        entity_id = self._ids.get(term)
        if entity_id is None:
            entity_id = len(self._terms)
            self._ids[term] = entity_id
            self._terms.append(term)
        return entity_id

    def id_of(self, term: str) -> int | None:
        """The id of ``term`` if it has been interned, else ``None``."""
        return self._ids.get(term)

    def term_of(self, entity_id: int) -> str:
        """The entity string for ``entity_id``; raises ``IndexError`` if unknown."""
        return self._terms[entity_id]

    def decode_row(self, row: Sequence[int]) -> tuple[str, ...]:
        """Decode a tuple of ids back to the entity strings."""
        terms = self._terms
        return tuple(terms[entity_id] for entity_id in row)

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: object) -> bool:
        return term in self._ids

    def __iter__(self) -> Iterator[str]:
        return iter(self._terms)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(size={len(self._terms)})"


class MappedVocabulary:
    """A read-only vocabulary over a memory-mapped string arena.

    Backed by three mapped arrays written by the v3 snapshot's vocabulary
    arena shard (:func:`repro.storage.shards.write_vocabulary_shard`):

    ``blob``
        Every term's UTF-8 bytes, concatenated in id order.
    ``offsets``
        ``n + 1`` int64 offsets; term ``i`` is ``blob[offsets[i] :
        offsets[i + 1]]``.
    ``sorted_ids``
        The term ids sorted by UTF-8 byte order — the binary-search index
        behind :meth:`id_of`, so the string→id direction also needs no
        materialized ``dict``.

    The mapped portion is immutable; :meth:`intern` of a *new* term goes
    to a small in-process overlay (ids continue past the mapped range),
    which keeps the full :class:`Vocabulary` contract without ever
    touching the snapshot.  Pickling materializes a plain
    :class:`Vocabulary` so serialized stores stay self-contained.
    """

    #: Bound on the hot-term decode cache.  Neighborhood extraction
    #: decodes the same region's terms query after query; caching them
    #: recovers dict-vocabulary speed while capping the private-memory
    #: cost at the *working set* (≤ ~64k strings) instead of the whole
    #: vocabulary.  The cache is cleared, not LRU-evicted, at the cap —
    #: eviction bookkeeping would cost more than the rare re-decode.
    DECODE_CACHE_LIMIT = 65536

    __slots__ = (
        "_offsets",
        "_sorted_ids",
        "_blob",
        "_base",
        "_extra_ids",
        "_extra_terms",
        "_decoded",
    )

    def __init__(
        self,
        offsets: "np.ndarray",
        sorted_ids: "np.ndarray",
        blob: "np.ndarray",
    ) -> None:
        self._offsets = offsets
        self._sorted_ids = sorted_ids
        self._blob = blob
        self._base = len(offsets) - 1
        self._extra_ids: dict[str, int] = {}
        self._extra_terms: list[str] = []
        self._decoded: dict[int, str] = {}

    # ------------------------------------------------------------------
    def _term_bytes(self, entity_id: int) -> bytes:
        offsets = self._offsets
        return bytes(self._blob[int(offsets[entity_id]) : int(offsets[entity_id + 1])])

    def _find_mapped(self, term: str) -> int | None:
        """Binary search the sort permutation for ``term`` (None if absent)."""
        encoded = term.encode("utf-8")
        sorted_ids = self._sorted_ids
        lo, hi = 0, self._base
        while lo < hi:
            mid = (lo + hi) // 2
            candidate_id = int(sorted_ids[mid])
            candidate = self._term_bytes(candidate_id)
            if candidate < encoded:
                lo = mid + 1
            elif candidate > encoded:
                hi = mid
            else:
                return candidate_id
        return None

    # ------------------------------------------------------------------
    def intern(self, term: str) -> int:
        """Return the id of ``term``, assigning an overlay id if new."""
        entity_id = self.id_of(term)
        if entity_id is None:
            entity_id = self._base + len(self._extra_terms)
            self._extra_ids[term] = entity_id
            self._extra_terms.append(term)
        return entity_id

    def id_of(self, term: str) -> int | None:
        """The id of ``term`` if present (binary search, no dict)."""
        entity_id = self._find_mapped(term)
        if entity_id is None and self._extra_ids:
            return self._extra_ids.get(term)
        return entity_id

    def term_of(self, entity_id: int) -> str:
        """The entity string for ``entity_id`` (offset slice + decode).

        Decoded strings are cached up to :attr:`DECODE_CACHE_LIMIT` so
        the hot working set costs one decode, not one per touch.
        """
        decoded = self._decoded.get(entity_id)
        if decoded is not None:
            return decoded
        if entity_id >= self._base:
            return self._extra_terms[entity_id - self._base]
        if entity_id < 0:
            raise IndexError(f"negative entity id {entity_id}")
        decoded = self._term_bytes(entity_id).decode("utf-8")
        if len(self._decoded) >= self.DECODE_CACHE_LIMIT:
            self._decoded.clear()
        self._decoded[entity_id] = decoded
        return decoded

    def decode_row(self, row: Sequence[int]) -> tuple[str, ...]:
        """Decode a tuple of ids back to the entity strings."""
        return tuple(self.term_of(int(entity_id)) for entity_id in row)

    def __len__(self) -> int:
        return self._base + len(self._extra_terms)

    def __contains__(self, term: object) -> bool:
        return isinstance(term, str) and self.id_of(term) is not None

    def __iter__(self) -> Iterator[str]:
        for entity_id in range(self._base):
            yield self._term_bytes(entity_id).decode("utf-8")
        yield from self._extra_terms

    # A mapped vocabulary pickles as the equivalent owned Vocabulary:
    # mapped buffers must never leak into a pickle, and a v3→v1 resave
    # has to stay self-contained.
    def __reduce__(self):
        return (Vocabulary, (list(self),))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(size={len(self)}, mapped={self._base}, "
            f"overlay={len(self._extra_terms)})"
        )


class IdentityVocabulary:
    """A no-op vocabulary: every term is its own id.

    A :class:`~repro.storage.store.VerticalPartitionStore` built with this
    vocabulary runs the whole engine on raw entity strings — the exact
    pre-interning behavior — which makes it the reference implementation
    for the interning equivalence tests.
    """

    __slots__ = ()

    def intern(self, term: str) -> str:
        return term

    def id_of(self, term: str) -> str:
        return term

    def term_of(self, entity_id: str) -> str:
        return entity_id

    def decode_row(self, row: Sequence[str]) -> tuple[str, ...]:
        return tuple(row)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
