"""Entity vocabularies: interning data-graph entities as dense integers.

The join engine spends most of its time hashing and comparing entity
identifiers — once per probe, per row, per injectivity check.  Hashing a
Python string costs time proportional to its length, while hashing a small
``int`` is effectively free (CPython caches small ints and hashes them as
themselves).  The :class:`Vocabulary` therefore maps every entity string to
a dense integer id exactly once, offline, when the
:class:`~repro.storage.store.VerticalPartitionStore` is built; all tables,
hash indexes and intermediate join relations then carry ints, and answers
are decoded back to entity strings only when they are materialized for the
user (``lattice.exploration`` / ``core.answer``).

:class:`IdentityVocabulary` keeps the engine's *string path* alive: it maps
every term to itself, so a store built with it reproduces the pre-interning
behavior exactly.  The property tests use it as the reference engine to
assert that interning never changes an answer.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

#: An entity identifier inside the engine: a dense ``int`` under the
#: interning :class:`Vocabulary`, or the entity string itself under the
#: :class:`IdentityVocabulary` reference path.
EntityId = int | str


class Vocabulary:
    """A bidirectional ``entity string <-> dense int id`` mapping.

    Ids are assigned in first-intern order starting at 0, so the reverse
    mapping is a plain list and decoding is an O(1) index.
    """

    __slots__ = ("_ids", "_terms")

    def __init__(self, terms: Iterable[str] = ()) -> None:
        self._ids: dict[str, int] = {}
        self._terms: list[str] = []
        for term in terms:
            self.intern(term)

    # The id map is a pure function of the term list, so snapshots carry
    # only the terms and the map is rebuilt with one C-level dict(zip(...))
    # — both smaller on disk and faster to load than pickling the dict.
    def __getstate__(self):
        return self._terms

    def __setstate__(self, terms: list[str]) -> None:
        self._terms = terms
        self._ids = dict(zip(terms, range(len(terms))))

    def intern(self, term: str) -> int:
        """Return the id of ``term``, assigning the next free id if new."""
        entity_id = self._ids.get(term)
        if entity_id is None:
            entity_id = len(self._terms)
            self._ids[term] = entity_id
            self._terms.append(term)
        return entity_id

    def id_of(self, term: str) -> int | None:
        """The id of ``term`` if it has been interned, else ``None``."""
        return self._ids.get(term)

    def term_of(self, entity_id: int) -> str:
        """The entity string for ``entity_id``; raises ``IndexError`` if unknown."""
        return self._terms[entity_id]

    def decode_row(self, row: Sequence[int]) -> tuple[str, ...]:
        """Decode a tuple of ids back to the entity strings."""
        terms = self._terms
        return tuple(terms[entity_id] for entity_id in row)

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: object) -> bool:
        return term in self._ids

    def __iter__(self) -> Iterator[str]:
        return iter(self._terms)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(size={len(self._terms)})"


class IdentityVocabulary:
    """A no-op vocabulary: every term is its own id.

    A :class:`~repro.storage.store.VerticalPartitionStore` built with this
    vocabulary runs the whole engine on raw entity strings — the exact
    pre-interning behavior — which makes it the reference implementation
    for the interning equivalence tests.
    """

    __slots__ = ()

    def intern(self, term: str) -> str:
        return term

    def id_of(self, term: str) -> str:
        return term

    def term_of(self, entity_id: str) -> str:
        return entity_id

    def decode_row(self, row: Sequence[str]) -> tuple[str, ...]:
        return tuple(row)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
