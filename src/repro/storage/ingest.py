"""Applying live triple ingest to a loaded graph/statistics/store bundle.

One shared core serves every ingest entry point (``GQBE.ingest``, the
serving frontends, pool-worker delta replay): validate the triples,
deduplicate them against the *current* union graph, then apply each
survivor to the graph, the vocabulary, the per-label tables and the
statistics in one deterministic order.

Determinism is what makes ingest testable and poolable: applying the
same applied-triple sequence to the same base always produces identical
ids, identical adjacency orders, and therefore byte-identical answers —
a pool worker reopening the snapshot replays the parent's applied
triples and lands in exactly the parent's state.

Two graph shapes exist at runtime:

* an **owned** :class:`~repro.graph.knowledge_graph.KnowledgeGraph`
  (v1 snapshots, v2 snapshots, cold builds) mutates in place via
  ``add_edge``; the store vocabulary interns subject-then-object
  afterwards, matching the id order a from-scratch build of the merged
  graph would produce;
* a **mapped** :class:`~repro.graph.mapped.MappedKnowledgeGraph`
  (v3 snapshots) is immutable, so the first applied triple wraps it in
  a :class:`~repro.graph.delta.DeltaKnowledgeGraph` union view — the
  caller must adopt the returned graph.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.exceptions import GraphError
from repro.graph.delta import DeltaKnowledgeGraph
from repro.graph.knowledge_graph import Edge, KnowledgeGraph


def normalize_triples(triples: Iterable[Sequence]) -> list[tuple[str, str, str]]:
    """Validate and normalize raw ingest input to string triples.

    Accepts any iterable of 3-item sequences (lists from JSON bodies,
    :class:`~repro.graph.knowledge_graph.Edge` instances, plain tuples);
    raises :class:`~repro.exceptions.GraphError` on anything else so the
    serving layer can answer a clean 400.
    """
    normalized: list[tuple[str, str, str]] = []
    for position, entry in enumerate(triples):
        if isinstance(entry, Edge):
            entry = (entry.subject, entry.label, entry.object)
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise GraphError(
                f"triple #{position} must be a [subject, label, object] "
                f"3-sequence, got {entry!r}"
            )
        subject, label, obj = entry
        if not all(isinstance(part, str) and part for part in (subject, label, obj)):
            raise GraphError(
                f"triple #{position} terms must be non-empty strings, "
                f"got {entry!r}"
            )
        normalized.append((subject, label, obj))
    return normalized


def apply_triples(
    graph,
    statistics,
    store,
    triples: Iterable[Sequence],
):
    """Apply ``triples`` to a loaded bundle; returns the updated graph.

    Returns ``(graph, applied, duplicates)`` where ``graph`` is the
    (possibly newly delta-wrapped) union graph the caller must adopt,
    ``applied`` is the list of triples that actually landed (original
    order, duplicates removed), and ``duplicates`` counts the rest.

    A duplicate interns nothing and touches nothing — the same contract
    as ``KnowledgeGraph.add_edge``, which deduplicates before adding
    nodes — so replaying only the applied triples reproduces this exact
    state.
    """
    normalized = normalize_triples(triples)
    owned = isinstance(graph, KnowledgeGraph)
    if not owned and not isinstance(graph, DeltaKnowledgeGraph):
        graph = DeltaKnowledgeGraph(graph)
    vocabulary = store.vocabulary
    applied: list[tuple[str, str, str]] = []
    duplicates = 0
    for subject, label, obj in normalized:
        if graph.has_edge(subject, label, obj):
            duplicates += 1
            continue
        if owned:
            graph.add_edge(subject, label, obj)
            subject_id = vocabulary.intern(subject)
            object_id = vocabulary.intern(obj)
        else:
            subject_id, object_id = graph.add_delta_edge(subject, label, obj)
        store.ingest_row(label, subject_id, object_id)
        statistics.apply_edge(Edge(subject, label, obj))
        applied.append((subject, label, obj))
    if applied:
        statistics.finish_mutation()
    return graph, applied, duplicates
