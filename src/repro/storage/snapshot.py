"""On-disk index snapshots: persist the offline build for instant warm starts.

GQBE's offline phase — interning the vocabulary, filling the per-label
edge tables, building probe indexes and computing the graph statistics —
is query-independent, so it only ever needs to run once per data graph.
:class:`GraphStore` bundles everything that phase produces (the data
graph, its :class:`~repro.graph.statistics.GraphStatistics` and the
:class:`~repro.storage.store.VerticalPartitionStore` with its vocabulary)
and serializes the bundle to a single snapshot file.

Loading is **lazy**: :meth:`GraphStore.load` verifies the envelope and
keeps the three sections as raw bytes; each section deserializes on first
access (the first query, in practice).  The warm *start* therefore costs
one file read plus a checksum — 20-40x faster than the cold offline
build — and even start + full materialization beats re-running the build
from a triple file (see ROADMAP.md for measured medians).

File format (version 1)
-----------------------

Everything is little-endian::

    offset  size  field
    0       8     magic ``b"GQBESNAP"``
    8       4     format version (uint32)
    12      4     payload pickle protocol (uint32)
    16      32    SHA-256 digest of the payload
    48      8     payload length in bytes (uint64)
    56      n     payload

The payload is a pickle of ``{"meta": {...}, "graph": bytes,
"statistics": bytes, "store": bytes}``; the three ``bytes`` values are
themselves independent pickles of the section objects, which is what
makes section-at-a-time lazy loading possible.  To avoid serializing the
data graph three times, the statistics and store sections are written
*without* their graph back-reference (see ``__getstate__`` on each);
:class:`GraphStore` re-wires the reference when a section materializes.
The ``meta`` mapping records the engine flags the store was built with
(``intern_entities``, ``columnar``) plus basic shape counters, and can be
read cheaply via :func:`read_snapshot_meta`.

Loading verifies, in order: the magic (is this a snapshot at all?), the
format version (newer/older writers raise
:class:`~repro.exceptions.SnapshotError` instead of misparsing), the
payload length and the SHA-256 digest (truncation and bit-rot are
reported as corruption before any pickle bytes are trusted).  Snapshots
are pickle-based and therefore **trusted local artifacts** — load only
files you built yourself, like any cache directory.

CLI workflow
------------

Build once, then query against the snapshot::

    gqbe build-index data.tsv data.snap
    gqbe query --snapshot data.snap --tuple "Jerry Yang,Yahoo!"

Programmatically::

    GraphStore.build(graph).save("data.snap")
    system = GQBE.from_snapshot("data.snap")
"""

from __future__ import annotations

import hashlib
import json
import pickle
import struct
from os import PathLike
from pathlib import Path

from repro.exceptions import SnapshotError
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.statistics import GraphStatistics
from repro.storage.store import VerticalPartitionStore
from repro.storage.vocabulary import IdentityVocabulary

MAGIC = b"GQBESNAP"
FORMAT_VERSION = 1
_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL
_HEADER = struct.Struct("<8sII32sQ")


class GraphStore:
    """The complete offline state of GQBE for one data graph.

    Bundles the data graph, its precomputed statistics and the
    vertical-partition store (which owns the vocabulary and the probe
    indexes), and knows how to round-trip the bundle through a snapshot
    file.  :class:`~repro.core.gqbe.GQBE` accepts a ``GraphStore`` in
    place of a raw graph to skip the entire offline build.

    A loaded bundle starts *lazy*: sections are held as verified pickle
    bytes and deserialize on first property access, so constructing a
    warm system is nearly free and the deserialization cost lands on the
    first query that needs each section.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        statistics: GraphStatistics,
        store: VerticalPartitionStore,
    ) -> None:
        self._graph: KnowledgeGraph | None = graph
        self._statistics: GraphStatistics | None = statistics
        self._store: VerticalPartitionStore | None = store
        self._blobs: dict[str, bytes] | None = None
        self._meta: dict | None = None

    @classmethod
    def build(
        cls,
        graph: KnowledgeGraph,
        intern_entities: bool = True,
        columnar: bool = True,
    ) -> "GraphStore":
        """Run the offline phase for ``graph`` (the cold-start path)."""
        statistics = GraphStatistics(graph)
        store = VerticalPartitionStore(
            graph,
            vocabulary=None if intern_entities else IdentityVocabulary(),
            columnar=columnar,
        )
        return cls(graph, statistics, store)

    @classmethod
    def _from_blobs(cls, meta: dict, blobs: dict[str, bytes]) -> "GraphStore":
        bundle = cls.__new__(cls)
        bundle._graph = None
        bundle._statistics = None
        bundle._store = None
        bundle._blobs = blobs
        bundle._meta = meta
        return bundle

    # ------------------------------------------------------------------
    # sections (lazy)
    # ------------------------------------------------------------------
    @property
    def graph(self) -> KnowledgeGraph:
        """The data graph (materialized on first access)."""
        if self._graph is None:
            self._graph = pickle.loads(self._blobs["graph"])
        return self._graph

    @property
    def statistics(self) -> GraphStatistics:
        """The precomputed graph statistics (materialized on first access)."""
        if self._statistics is None:
            statistics = pickle.loads(self._blobs["statistics"])
            # The snapshot strips the graph back-reference to avoid
            # serializing the graph twice; re-wire it here.
            statistics._graph = self.graph
            self._statistics = statistics
        return self._statistics

    @property
    def store(self) -> VerticalPartitionStore:
        """The vertical-partition store (materialized on first access)."""
        if self._store is None:
            store = pickle.loads(self._blobs["store"])
            store._graph = self.graph
            self._store = store
        return self._store

    def materialize(self) -> "GraphStore":
        """Force all three sections to deserialize now; returns ``self``."""
        _ = self.graph
        _ = self.statistics
        _ = self.store
        return self

    # ------------------------------------------------------------------
    @property
    def intern_entities(self) -> bool:
        """Whether the store interns entities to int ids."""
        if self._meta is not None:
            return bool(self._meta["intern_entities"])
        return not isinstance(self.store.vocabulary, IdentityVocabulary)

    @property
    def columnar(self) -> bool:
        """Whether the store uses the columnar table layout."""
        if self._meta is not None:
            return bool(self._meta["columnar"])
        return self.store.is_columnar

    def meta(self) -> dict:
        """The snapshot metadata describing this bundle."""
        if self._meta is not None:
            return dict(self._meta)
        return {
            "intern_entities": self.intern_entities,
            "columnar": self.columnar,
            "num_nodes": self.graph.num_nodes,
            "num_edges": self.graph.num_edges,
            "num_labels": self.graph.num_labels,
        }

    # ------------------------------------------------------------------
    def save(self, path: str | PathLike) -> int:
        """Serialize the bundle to ``path``; returns the bytes written.

        Probe indexes are materialized first so the snapshot carries them
        and a loaded store answers its first query without an index-build
        pause.

        Example::

            from repro.storage.snapshot import GraphStore

            bundle = GraphStore.build(graph)        # offline phase, once
            size = bundle.save("data.snap")
            assert size > 0
        """
        self.materialize()
        self.store.build_indexes()
        payload = pickle.dumps(
            {
                "meta": self.meta(),
                "graph": pickle.dumps(self.graph, protocol=_PICKLE_PROTOCOL),
                "statistics": pickle.dumps(
                    self.statistics, protocol=_PICKLE_PROTOCOL
                ),
                "store": pickle.dumps(self.store, protocol=_PICKLE_PROTOCOL),
            },
            protocol=_PICKLE_PROTOCOL,
        )
        header = _HEADER.pack(
            MAGIC,
            FORMAT_VERSION,
            _PICKLE_PROTOCOL,
            hashlib.sha256(payload).digest(),
            len(payload),
        )
        data = header + payload
        Path(path).write_bytes(data)
        return len(data)

    @classmethod
    def load(cls, path: str | PathLike) -> "GraphStore":
        """Read and verify a snapshot; sections stay lazy until accessed.

        Example::

            from repro.core.gqbe import GQBE
            from repro.storage.snapshot import GraphStore

            bundle = GraphStore.load("data.snap")   # verify + lazy sections
            system = GQBE(graph_store=bundle)       # warm start
            # or in one step: GQBE.from_snapshot("data.snap")

        Raises
        ------
        SnapshotError
            If the file is not a snapshot, was written by an unsupported
            format version, is truncated, or fails its checksum.
        """
        try:
            data = Path(path).read_bytes()
        except OSError as error:
            raise SnapshotError(f"cannot read snapshot {path!s}: {error}") from error
        payload = _verify_envelope(data, path)
        try:
            outer = pickle.loads(payload)
            meta = outer["meta"]
            blobs = {key: outer[key] for key in ("graph", "statistics", "store")}
        except Exception as error:
            raise SnapshotError(
                f"snapshot {path!s} passed its checksum but failed to "
                f"deserialize ({error}); it was likely written by an "
                "incompatible library version"
            ) from error
        return cls._from_blobs(meta, blobs)


def _verify_envelope(data: bytes, path: str | PathLike) -> bytes:
    """Check magic, version, length and digest; return the payload bytes."""
    if len(data) < _HEADER.size or not data.startswith(MAGIC):
        raise SnapshotError(f"{path!s} is not a GQBE index snapshot (bad magic)")
    _magic, version, _protocol, digest, length = _HEADER.unpack_from(data)
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot {path!s} uses format version {version}; this build "
            f"supports version {FORMAT_VERSION} — rebuild it with "
            "`gqbe build-index`"
        )
    payload = data[_HEADER.size:]
    if len(payload) != length:
        raise SnapshotError(
            f"snapshot {path!s} is truncated: header promises {length} "
            f"payload bytes, found {len(payload)}"
        )
    if hashlib.sha256(payload).digest() != digest:
        raise SnapshotError(f"snapshot {path!s} is corrupt (checksum mismatch)")
    return payload


def read_snapshot_meta(path: str | PathLike) -> dict:
    """Read and verify a snapshot, returning only its ``meta`` mapping.

    Verifies the full envelope (so corruption is still reported) but
    never deserializes the heavy sections; used by tooling that only
    needs to inspect what a snapshot contains.
    """
    try:
        data = Path(path).read_bytes()
    except OSError as error:
        raise SnapshotError(f"cannot read snapshot {path!s}: {error}") from error
    payload = _verify_envelope(data, path)
    meta = pickle.loads(payload).get("meta", {})
    # Round-trip through JSON to guarantee the result is plain data.
    return json.loads(json.dumps(meta))
