"""On-disk index snapshots: persist the offline build for instant warm starts.

GQBE's offline phase — interning the vocabulary, filling the per-label
edge tables, building probe indexes and computing the graph statistics —
is query-independent, so it only ever needs to run once per data graph.
:class:`GraphStore` bundles everything that phase produces (the data
graph, its :class:`~repro.graph.statistics.GraphStatistics` and the
:class:`~repro.storage.store.VerticalPartitionStore` with its vocabulary)
and serializes the bundle to a single snapshot file.

Loading is **lazy**: :meth:`GraphStore.load` verifies the envelope and
keeps the three sections as raw bytes; each section deserializes on first
access (the first query, in practice).  The warm *start* therefore costs
one file read plus a checksum — 20-40x faster than the cold offline
build — and even start + full materialization beats re-running the build
from a triple file (see ROADMAP.md for measured medians).

Three on-disk formats share this module's :class:`GraphStore` API:

* **v1** — the single-file envelope documented below.  Everything is a
  pickle; loading deserializes each section into private process memory.
* **v2** — the *sharded directory* layout of
  :mod:`repro.storage.shards` (``GraphStore.save(path, format="v2")``):
  a JSON manifest, per-section pickle files, and one raw binary shard
  per label table whose int64 columns and probe indexes reopen as
  zero-copy read-only ``mmap`` views.  A v2 warm start reads only the
  manifest; label tables map on first probe, and N processes mapping the
  same snapshot share the physical pages.
* **v3** — v2 plus mapped shards for the two sections v2 still pickled
  (``gqbe build-index --format v3``): the vocabulary becomes an
  offset-indexed UTF-8 string arena
  (:class:`~repro.storage.vocabulary.MappedVocabulary`) and the data
  graph a CSR adjacency shard
  (:class:`~repro.graph.mapped.MappedKnowledgeGraph`), so a reopening
  worker's private memory excludes the vocabulary and the graph too —
  only the statistics section still unpickles per process.

``GraphStore.load`` auto-detects: a regular file is v1, a directory is
v2/v3 (the manifest's ``format_version`` decides).  Older formats keep
loading unchanged.

File format (version 1)
-----------------------

Everything is little-endian::

    offset  size  field
    0       8     magic ``b"GQBESNAP"``
    8       4     format version (uint32)
    12      4     payload pickle protocol (uint32)
    16      32    SHA-256 digest of the payload
    48      8     payload length in bytes (uint64)
    56      n     payload

The payload is a pickle of ``{"meta": {...}, "graph": bytes,
"statistics": bytes, "store": bytes}``; the three ``bytes`` values are
themselves independent pickles of the section objects, which is what
makes section-at-a-time lazy loading possible.  To avoid serializing the
data graph three times, the statistics and store sections are written
*without* their graph back-reference (see ``__getstate__`` on each);
:class:`GraphStore` re-wires the reference when a section materializes.
The ``meta`` mapping records the engine flags the store was built with
(``intern_entities``, ``columnar``) plus basic shape counters, and can be
read cheaply via :func:`read_snapshot_meta`.

Loading verifies, in order: the magic (is this a snapshot at all?), the
format version (newer/older writers raise
:class:`~repro.exceptions.SnapshotError` instead of misparsing), the
payload length and the SHA-256 digest (truncation and bit-rot are
reported as corruption before any pickle bytes are trusted).  Snapshots
are pickle-based and therefore **trusted local artifacts** — load only
files you built yourself, like any cache directory.

CLI workflow
------------

Build once, then query against the snapshot::

    gqbe build-index data.tsv data.snap
    gqbe query --snapshot data.snap --tuple "Jerry Yang,Yahoo!"

Programmatically::

    GraphStore.build(graph).save("data.snap")
    system = GQBE.from_snapshot("data.snap")
"""

from __future__ import annotations

import copy
import hashlib
import json
import pickle
import struct
from os import PathLike
from pathlib import Path

from repro.exceptions import SnapshotError
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.statistics import GraphStatistics, MappedGraphStatistics
from repro.storage.shards import (
    MANIFEST_MAGIC,
    MANIFEST_NAME,
    ShardedSnapshotReader,
    write_graph_shard,
    write_statistics_shard,
    write_table_shard,
    write_vocabulary_shard,
)
from repro.storage.store import VerticalPartitionStore
from repro.storage.vocabulary import IdentityVocabulary

MAGIC = b"GQBESNAP"
FORMAT_VERSION = 1
#: The snapshot formats ``GraphStore.save`` accepts.
SNAPSHOT_FORMATS = ("v1", "v2", "v3")
_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL
_HEADER = struct.Struct("<8sII32sQ")


class GraphStore:
    """The complete offline state of GQBE for one data graph.

    Bundles the data graph, its precomputed statistics and the
    vertical-partition store (which owns the vocabulary and the probe
    indexes), and knows how to round-trip the bundle through a snapshot
    file.  :class:`~repro.core.gqbe.GQBE` accepts a ``GraphStore`` in
    place of a raw graph to skip the entire offline build.

    A loaded bundle starts *lazy*: sections are held as verified pickle
    bytes and deserialize on first property access, so constructing a
    warm system is nearly free and the deserialization cost lands on the
    first query that needs each section.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        statistics: GraphStatistics,
        store: VerticalPartitionStore,
    ) -> None:
        self._graph: KnowledgeGraph | None = graph
        self._statistics: GraphStatistics | None = statistics
        self._store: VerticalPartitionStore | None = store
        self._blobs: dict[str, bytes] | None = None
        self._reader: ShardedSnapshotReader | None = None
        self._meta: dict | None = None
        self._mapped_vocabulary = None
        self._delta_triples: list[tuple[str, str, str]] = []
        #: Whether stores materialized from this bundle issue shard
        #: prefetch hints at join-plan time (see ``GQBEConfig.prefetch_shards``).
        self.prefetch_hints = True

    @classmethod
    def build(
        cls,
        graph: KnowledgeGraph,
        intern_entities: bool = True,
        columnar: bool = True,
    ) -> "GraphStore":
        """Run the offline phase for ``graph`` (the cold-start path)."""
        statistics = GraphStatistics(graph)
        store = VerticalPartitionStore(
            graph,
            vocabulary=None if intern_entities else IdentityVocabulary(),
            columnar=columnar,
        )
        return cls(graph, statistics, store)

    @classmethod
    def _from_blobs(cls, meta: dict, blobs: dict[str, bytes]) -> "GraphStore":
        bundle = cls.__new__(cls)
        bundle._graph = None
        bundle._statistics = None
        bundle._store = None
        bundle._blobs = blobs
        bundle._reader = None
        bundle._meta = meta
        bundle._mapped_vocabulary = None
        bundle._delta_triples = []
        bundle.prefetch_hints = True
        return bundle

    @classmethod
    def _from_reader(cls, reader: ShardedSnapshotReader) -> "GraphStore":
        bundle = cls.__new__(cls)
        bundle._graph = None
        bundle._statistics = None
        bundle._store = None
        bundle._blobs = None
        bundle._reader = reader
        bundle._meta = dict(reader.meta)
        bundle._mapped_vocabulary = None
        bundle._delta_triples = []
        bundle.prefetch_hints = True
        return bundle

    def _vocabulary_from_arena(self):
        """The snapshot's mapped vocabulary (v3), shared by graph and store."""
        if self._mapped_vocabulary is None:
            self._mapped_vocabulary = self._reader.load_vocabulary()
        return self._mapped_vocabulary

    def set_prefetch(self, enabled: bool) -> None:
        """Enable/disable shard read-ahead everywhere it is acted on.

        One owner for the invariant: the flag reaches the reader's
        ``madvise(WILLNEED)`` at shard open, any already-materialized
        store's plan-time prefetching, and (via :attr:`prefetch_hints`)
        stores that materialize later.  Wired from
        ``GQBEConfig.prefetch_shards`` by :class:`~repro.core.gqbe.GQBE`.
        """
        self.prefetch_hints = enabled
        if self._reader is not None:
            self._reader.prefetch = enabled
        if self._store is not None:
            self._store._prefetch_hints = enabled

    # ------------------------------------------------------------------
    # sections (lazy)
    # ------------------------------------------------------------------
    def _section_bytes(self, name: str) -> bytes:
        if self._blobs is not None:
            return self._blobs[name]
        return self._reader.load_section(name)

    @property
    def graph(self) -> KnowledgeGraph:
        """The data graph (materialized on first access).

        From a v3 snapshot this maps the graph CSR shard (a
        :class:`~repro.graph.mapped.MappedKnowledgeGraph` over shared
        pages) instead of unpickling a private copy.
        """
        if self._graph is None:
            if self._reader is not None and self._reader.has_mapped_graph:
                self._graph = self._reader.load_graph(self._vocabulary_from_arena())
            else:
                self._graph = pickle.loads(self._section_bytes("graph"))
        return self._graph

    @property
    def statistics(self) -> GraphStatistics:
        """The precomputed graph statistics (materialized on first access).

        From a v3 snapshot with a statistics counts shard the two
        ``(node, label)`` participation dicts become mapped binary-
        searchable columns (shared pages) and only the small header —
        edge total and per-label counts — unpickles per process.
        """
        if self._statistics is None:
            section = pickle.loads(self._section_bytes("statistics"))
            if (
                isinstance(section, dict)
                and self._reader is not None
                and self._reader.has_mapped_statistics
            ):
                labels, columns = self._reader.load_statistics_counts()
                statistics = MappedGraphStatistics(
                    self.graph,
                    self._vocabulary_from_arena(),
                    labels,
                    section["total_edges"],
                    section["label_counts"],
                    *columns,
                )
            else:
                statistics = section
                # The snapshot strips the graph back-reference to avoid
                # serializing the graph twice; re-wire it here.
                statistics._graph = self.graph
            self._statistics = statistics
        return self._statistics

    @property
    def store(self) -> VerticalPartitionStore:
        """The vertical-partition store (materialized on first access).

        From a v2 snapshot only the store *skeleton* (vocabulary, engine
        flags) deserializes here; the per-label tables stay as unopened
        shards that the reader maps on first probe.
        """
        if self._store is None:
            store = pickle.loads(self._section_bytes("store"))
            store._graph = self.graph
            if self._reader is not None:
                if self._reader.has_mapped_vocabulary:
                    # v3: the skeleton was written without its vocabulary;
                    # adopt the mapped string arena instead.
                    store._vocabulary = self._vocabulary_from_arena()
                store._attach_lazy_tables(self._reader, self._reader.label_rows())
                store._prefetch_hints = self.prefetch_hints
            self._store = store
        return self._store

    def materialize(self) -> "GraphStore":
        """Force all three sections to deserialize now; returns ``self``.

        Lazily sharded tables are *not* resolved here — that is what
        keeps v2 partial loading useful; call ``store.build_indexes()``
        (or :meth:`save`) to force every shard open.
        """
        _ = self.graph
        _ = self.statistics
        _ = self.store
        return self

    def lazy_report(self) -> dict:
        """What this bundle has actually loaded so far.

        For a v2 snapshot: which sections were read and which label
        shards were mapped (``tables_opened`` / ``tables_total``).  Used
        by tests to prove partial loading and by ``/stats`` to expose it.
        """
        if self._reader is not None:
            return {
                "format": f"v{self._reader.format_version}",
                "sections_loaded": list(self._reader.sections_loaded),
                "tables_opened": self._reader.tables_opened,
                "tables_total": len(self._reader.label_rows()),
                "opened_labels": list(self._reader.opened_labels),
            }
        tables_total = None
        if self._meta is not None:
            tables_total = self._meta.get("num_labels")
        loaded = self._store is not None
        return {
            "format": "v1" if self._blobs is not None or self._meta else "built",
            "sections_loaded": [
                name
                for name, section in (
                    ("graph", self._graph),
                    ("statistics", self._statistics),
                    ("store", self._store),
                )
                if section is not None
            ],
            # v1 deserializes every table with the store section.
            "tables_opened": (self._store.num_tables if loaded else 0),
            "tables_total": tables_total,
            "opened_labels": sorted(self._store.labels()) if loaded else [],
        }

    # ------------------------------------------------------------------
    @property
    def intern_entities(self) -> bool:
        """Whether the store interns entities to int ids."""
        if self._meta is not None:
            return bool(self._meta["intern_entities"])
        return not isinstance(self.store.vocabulary, IdentityVocabulary)

    @property
    def columnar(self) -> bool:
        """Whether the store uses the columnar table layout."""
        if self._meta is not None:
            return bool(self._meta["columnar"])
        return self.store.is_columnar

    def meta(self) -> dict:
        """The snapshot metadata describing this bundle."""
        if self._meta is not None:
            return dict(self._meta)
        return {
            "intern_entities": self.intern_entities,
            "columnar": self.columnar,
            "num_nodes": self.graph.num_nodes,
            "num_edges": self.graph.num_edges,
            "num_labels": self.graph.num_labels,
        }

    # ------------------------------------------------------------------
    # live ingest (delta overlay)
    # ------------------------------------------------------------------
    @property
    def delta_triples(self) -> list[tuple[str, str, str]]:
        """Triples applied since load, in application order.

        Replaying exactly this list against a fresh load of the same
        snapshot reproduces this bundle's state (pool workers do).
        """
        return list(self._delta_triples)

    def ingest(self, triples) -> dict:
        """Apply ``triples`` to the live bundle; returns what happened.

        Materializes the three sections, routes them through
        :func:`repro.storage.ingest.apply_triples`, and adopts the
        returned graph (a mapped v3 graph gets wrapped in a
        :class:`~repro.graph.delta.DeltaKnowledgeGraph` union view on
        the first applied triple).  Returns ``{"applied": n,
        "duplicates": m, "delta_edges": total}``.
        """
        from repro.storage.ingest import apply_triples

        self.materialize()
        graph = self._graph
        new_graph, applied, duplicates = apply_triples(
            graph, self._statistics, self._store, triples
        )
        if new_graph is not graph:
            self._graph = new_graph
            self._statistics._graph = new_graph
            self._store._graph = new_graph
        if applied:
            self._delta_triples.extend(applied)
            # Shape counters (num_nodes/num_edges/num_labels) are stale;
            # meta() recomputes them from the live union graph.
            self._meta = None
        return {
            "applied": len(applied),
            "duplicates": duplicates,
            "delta_edges": len(self._delta_triples),
        }

    # ------------------------------------------------------------------
    def save(self, path: str | PathLike, format: str = "v1") -> int:
        """Serialize the bundle to ``path``; returns the bytes written.

        ``format="v1"`` writes the single-file envelope; ``format="v2"``
        writes the sharded directory layout (one memory-mappable shard
        per label table — see :mod:`repro.storage.shards`);
        ``format="v3"`` additionally maps the vocabulary (string arena
        shard) and the data graph (CSR adjacency shard), which is what
        ``gqbe build-index --format v3`` produces.  Probe indexes are
        materialized first so the snapshot carries them and a loaded
        store answers its first query without an index-build pause.

        Example::

            from repro.storage.snapshot import GraphStore

            bundle = GraphStore.build(graph)        # offline phase, once
            size = bundle.save("data.snap")
            assert size > 0
        """
        if format not in SNAPSHOT_FORMATS:
            raise SnapshotError(
                f"unknown snapshot format {format!r}; choose one of "
                f"{', '.join(SNAPSHOT_FORMATS)}"
            )
        if format in ("v2", "v3"):
            return self._save_sharded(Path(path), version=int(format[1:]))
        self.materialize()
        self.store.build_indexes()
        payload = pickle.dumps(
            {
                "meta": self.meta(),
                "graph": pickle.dumps(self.graph, protocol=_PICKLE_PROTOCOL),
                "statistics": pickle.dumps(
                    self.statistics, protocol=_PICKLE_PROTOCOL
                ),
                "store": pickle.dumps(self.store, protocol=_PICKLE_PROTOCOL),
            },
            protocol=_PICKLE_PROTOCOL,
        )
        header = _HEADER.pack(
            MAGIC,
            FORMAT_VERSION,
            _PICKLE_PROTOCOL,
            hashlib.sha256(payload).digest(),
            len(payload),
        )
        data = header + payload
        try:
            Path(path).write_bytes(data)
        except OSError as error:
            raise SnapshotError(f"cannot write snapshot {path!s}: {error}") from error
        return len(data)

    def _save_sharded(self, directory: Path, version: int = 3) -> int:
        """Write the sharded directory layout; returns total bytes.

        ``version=2`` pickles the graph section and a store skeleton that
        still carries the vocabulary; ``version=3`` replaces both with
        mapped shards (vocabulary string arena + graph CSR) so reopening
        workers share those pages too.
        """
        self.materialize()
        store = self.store
        if not store.is_columnar:
            raise SnapshotError(
                f"the v{version} sharded format stores raw int64 column "
                "shards and requires the columnar interned engine; rebuild "
                "the store with columnar=True (and interned entities) or "
                "save as v1"
            )
        store.build_indexes()
        try:
            directory.mkdir(parents=True, exist_ok=True)
            (directory / "tables").mkdir(exist_ok=True)

            sections: dict[str, dict] = {}
            total = 0
            skeleton = copy.copy(store)
            skeleton._tables = {}
            skeleton._lazy_loader = None
            skeleton._lazy_rows = None
            if version >= 3:
                # The vocabulary ships as a mapped arena: strip it from
                # the skeleton so the store section carries only flags.
                skeleton._vocabulary = None
                # The participation counts ship as mapped columns (see
                # write_statistics_shard below); the section keeps only
                # the small header the mapped statistics need.
                statistics_header = {
                    "kind": "mapped-statistics",
                    "total_edges": self.statistics.total_edges,
                    "label_counts": dict(self.statistics._label_counts),
                }
                payloads = [
                    (
                        "statistics",
                        pickle.dumps(statistics_header, protocol=_PICKLE_PROTOCOL),
                    ),
                ]
            else:
                payloads = [
                    ("graph", pickle.dumps(self.graph, protocol=_PICKLE_PROTOCOL)),
                    (
                        "statistics",
                        pickle.dumps(self.statistics, protocol=_PICKLE_PROTOCOL),
                    ),
                ]
            payloads.append(
                ("store", pickle.dumps(skeleton, protocol=_PICKLE_PROTOCOL))
            )
            for name, payload in payloads:
                file_name = f"{name}.section"
                (directory / file_name).write_bytes(payload)
                sections[name] = {
                    "file": file_name,
                    "bytes": len(payload),
                    "sha256": hashlib.sha256(payload).hexdigest(),
                }
                total += len(payload)

            manifest = {
                "magic": MANIFEST_MAGIC,
                "format_version": version,
                "pickle_protocol": _PICKLE_PROTOCOL,
                "meta": self.meta(),
                "sections": sections,
            }

            if version >= 3:
                vocabulary_entry = write_vocabulary_shard(
                    directory / "vocabulary.arena", store.vocabulary
                )
                vocabulary_entry["file"] = "vocabulary.arena"
                manifest["vocabulary"] = vocabulary_entry
                total += vocabulary_entry["bytes"]

                graph_entry = write_graph_shard(
                    directory / "graph.csr", self.graph, store.vocabulary
                )
                graph_entry["file"] = "graph.csr"
                manifest["graph"] = graph_entry
                total += graph_entry["bytes"]

                statistics_entry = write_statistics_shard(
                    directory / "statistics.counts",
                    self.statistics._out_label_counts,
                    self.statistics._in_label_counts,
                    store.vocabulary,
                )
                statistics_entry["file"] = "statistics.counts"
                manifest["statistics_counts"] = statistics_entry
                total += statistics_entry["bytes"]

            tables = []
            # Snapshot the label list first: resolving a lazy table in
            # store.table() mutates the _tables dict mid-iteration.
            for index, label in enumerate(list(store.labels())):
                file_name = f"tables/{index:05d}.shard"
                entry = write_table_shard(directory / file_name, store.table(label))
                entry["file"] = file_name
                tables.append(entry)
                total += entry["bytes"]
            manifest["tables"] = tables

            manifest_bytes = json.dumps(manifest, indent=1, sort_keys=True).encode(
                "utf-8"
            )
            (directory / MANIFEST_NAME).write_bytes(manifest_bytes)
        except OSError as error:
            raise SnapshotError(
                f"cannot write sharded snapshot {directory!s}: {error}"
            ) from error
        return total + len(manifest_bytes)

    @classmethod
    def load(cls, path: str | PathLike) -> "GraphStore":
        """Read and verify a snapshot; sections stay lazy until accessed.

        A regular file is read as a v1 single-file snapshot; a directory
        is opened as a v2/v3 sharded snapshot (only its manifest is read
        — sections deserialize on first access, each label table maps
        its shard on first probe, and a v3 snapshot's vocabulary arena
        and graph CSR map on first graph/store access).

        Example::

            from repro.core.gqbe import GQBE
            from repro.storage.snapshot import GraphStore

            bundle = GraphStore.load("data.snap")   # verify + lazy sections
            system = GQBE(graph_store=bundle)       # warm start
            # or in one step: GQBE.from_snapshot("data.snap")

        Raises
        ------
        SnapshotError
            If the file is not a snapshot, was written by an unsupported
            format version, is truncated, or fails its checksum.
        """
        if Path(path).is_dir():
            return cls._from_reader(ShardedSnapshotReader(path))
        try:
            data = Path(path).read_bytes()
        except OSError as error:
            raise SnapshotError(f"cannot read snapshot {path!s}: {error}") from error
        payload = _verify_envelope(data, path)
        try:
            outer = pickle.loads(payload)
            meta = outer["meta"]
            blobs = {key: outer[key] for key in ("graph", "statistics", "store")}
        # gqbe: ignore[EXC001] -- unpickling raises arbitrary types from
        # arbitrary reduce hooks; everything is rewrapped as the
        # documented SnapshotError with the original chained.
        except Exception as error:
            raise SnapshotError(
                f"snapshot {path!s} passed its checksum but failed to "
                f"deserialize ({error}); it was likely written by an "
                "incompatible library version"
            ) from error
        return cls._from_blobs(meta, blobs)


def _verify_envelope(data: bytes, path: str | PathLike) -> bytes:
    """Check magic, version, length and digest; return the payload bytes."""
    if len(data) < _HEADER.size or not data.startswith(MAGIC):
        raise SnapshotError(f"{path!s} is not a GQBE index snapshot (bad magic)")
    _magic, version, _protocol, digest, length = _HEADER.unpack_from(data)
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot {path!s} uses format version {version}; this build "
            f"supports version {FORMAT_VERSION} — rebuild it with "
            "`gqbe build-index`"
        )
    payload = data[_HEADER.size:]
    if len(payload) != length:
        raise SnapshotError(
            f"snapshot {path!s} is truncated: header promises {length} "
            f"payload bytes, found {len(payload)}"
        )
    if hashlib.sha256(payload).digest() != digest:
        raise SnapshotError(f"snapshot {path!s} is corrupt (checksum mismatch)")
    return payload


def read_snapshot_meta(path: str | PathLike) -> dict:
    """Read and verify a snapshot, returning only its ``meta`` mapping.

    Verifies the full envelope (so corruption is still reported) but
    never deserializes the heavy sections; used by tooling that only
    needs to inspect what a snapshot contains.
    """
    if Path(path).is_dir():
        return dict(ShardedSnapshotReader(path).meta)
    try:
        data = Path(path).read_bytes()
    except OSError as error:
        raise SnapshotError(f"cannot read snapshot {path!s}: {error}") from error
    payload = _verify_envelope(data, path)
    meta = pickle.loads(payload).get("meta", {})
    # Round-trip through JSON to guarantee the result is plain data.
    return json.loads(json.dumps(meta))
