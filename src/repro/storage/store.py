"""The vertical-partition triple store: one :class:`EdgeTable` per label.

The store is built once from a :class:`~repro.graph.knowledge_graph.KnowledgeGraph`
and is the only structure the join engine touches at query time, mirroring
the paper's setup where "the whole data graph is hashed in memory ... before
any query comes in".
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.exceptions import GraphError
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.storage.table import EdgeTable


class VerticalPartitionStore:
    """All per-label edge tables of a data graph, hash-indexed in memory."""

    def __init__(self, graph: KnowledgeGraph) -> None:
        self._graph = graph
        self._tables: dict[str, EdgeTable] = {}
        for edge in graph.edges:
            table = self._tables.get(edge.label)
            if table is None:
                table = EdgeTable(edge.label)
                self._tables[edge.label] = table
            table.add_row(edge.subject, edge.object)

    @classmethod
    def from_graph(cls, graph: KnowledgeGraph) -> "VerticalPartitionStore":
        """Build a store for ``graph`` (alias of the constructor)."""
        return cls(graph)

    @property
    def graph(self) -> KnowledgeGraph:
        """The data graph this store was built from."""
        return self._graph

    @property
    def num_tables(self) -> int:
        """Number of per-label tables (== number of distinct labels)."""
        return len(self._tables)

    @property
    def num_rows(self) -> int:
        """Total number of rows across all tables (== number of edges)."""
        return sum(len(table) for table in self._tables.values())

    def labels(self) -> Iterator[str]:
        """Iterate the labels with a table in the store."""
        return iter(self._tables)

    def has_label(self, label: str) -> bool:
        """Whether a table for ``label`` exists."""
        return label in self._tables

    def table(self, label: str) -> EdgeTable:
        """Return the table for ``label``; raise for unknown labels."""
        try:
            return self._tables[label]
        except KeyError:
            raise GraphError(f"no edges with label {label!r} in the data graph") from None

    def table_or_empty(self, label: str) -> EdgeTable:
        """Return the table for ``label`` or an empty table if unknown."""
        return self._tables.get(label) or EdgeTable(label)

    def cardinality(self, label: str) -> int:
        """Number of rows in the table for ``label`` (0 if unknown)."""
        table = self._tables.get(label)
        return len(table) if table is not None else 0

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(tables={self.num_tables}, rows={self.num_rows})"
        )
