"""The vertical-partition triple store: one :class:`EdgeTable` per label.

The store is built once from a :class:`~repro.graph.knowledge_graph.KnowledgeGraph`
and is the only structure the join engine touches at query time, mirroring
the paper's setup where "the whole data graph is hashed in memory ... before
any query comes in".

Building the store also builds its :class:`~repro.storage.vocabulary.Vocabulary`:
every node of the data graph is interned to a dense integer id (in node
insertion order, so ids are deterministic per graph), and the per-label
tables store ``(subj_id, obj_id)`` int rows.  Query-time joins therefore
never touch an entity string; decoding happens only when answers are
materialized.  Passing an
:class:`~repro.storage.vocabulary.IdentityVocabulary` instead reproduces
the string-keyed engine (used as the reference in equivalence tests).

Tables default to the columnar struct-of-arrays layout
(:class:`~repro.storage.table.ColumnarEdgeTable`), which the vectorized
numpy join engine runs on.  ``columnar=False`` — or an identity
vocabulary, or a missing numpy — selects the tuple-row
:class:`~repro.storage.table.EdgeTable` reference layout instead.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.exceptions import GraphError
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.storage.table import ColumnarEdgeTable, EdgeTable, np
from repro.storage.vocabulary import IdentityVocabulary, Vocabulary


class VerticalPartitionStore:
    """All per-label edge tables of a data graph, hash-indexed in memory."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        vocabulary: Vocabulary | IdentityVocabulary | None = None,
        columnar: bool = True,
    ) -> None:
        self._graph = graph
        self._vocabulary = vocabulary if vocabulary is not None else Vocabulary()
        # The columnar layout needs int ids and numpy; otherwise fall back
        # to the tuple-row reference layout.
        self._columnar = (
            columnar
            and np is not None
            and not isinstance(self._vocabulary, IdentityVocabulary)
        )
        table_class = ColumnarEdgeTable if self._columnar else EdgeTable
        intern = self._vocabulary.intern
        # Intern every node first (not just edge endpoints) so the
        # vocabulary covers isolated nodes too and ids follow the graph's
        # deterministic node insertion order.
        for node in graph.nodes:
            intern(node)
        # After the node pass every endpoint is interned, so table rows are
        # filled through plain lookups.
        lookup = self._vocabulary.id_of
        self._tables: dict[str, EdgeTable | ColumnarEdgeTable] = {}
        # Lazy-table state: a v2/v3 sharded snapshot attaches a loader
        # plus the manifest's per-label row counts, so unopened labels
        # can answer cardinality/labels questions without mapping a shard.
        self._lazy_loader = None
        self._lazy_rows: dict[str, int] | None = None
        self._prefetch_hints = True
        tables = self._tables
        for edge in graph.edges:
            table = tables.get(edge.label)
            if table is None:
                table = table_class(edge.label)
                tables[edge.label] = table
            table.add_row(lookup(edge.subject), lookup(edge.object))

    @classmethod
    def from_graph(cls, graph: KnowledgeGraph) -> "VerticalPartitionStore":
        """Build a store for ``graph`` (alias of the constructor)."""
        return cls(graph)

    # The snapshot subsystem serializes the store *without* the graph
    # back-reference (the graph is its own snapshot section) and re-wires
    # ``_graph`` on load.  A lazily sharded store resolves every pending
    # table first — the pickle must be self-contained, never a handle
    # onto someone else's snapshot directory.
    def __getstate__(self):
        self._resolve_all_tables()
        state = dict(self.__dict__)
        state["_graph"] = None
        state["_lazy_loader"] = None
        state["_lazy_rows"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Pickles written before the lazy-table state existed.
        self.__dict__.setdefault("_lazy_loader", None)
        self.__dict__.setdefault("_lazy_rows", None)
        self.__dict__.setdefault("_prefetch_hints", True)

    # ------------------------------------------------------------------
    # lazy table resolution (v2 sharded snapshots)
    # ------------------------------------------------------------------
    def _attach_lazy_tables(self, loader, label_rows: dict[str, int]) -> None:
        """Adopt a shard loader: tables materialize per label on demand.

        ``loader`` must expose ``load_table(label) -> table``;
        ``label_rows`` is the manifest's per-label row count, which backs
        :meth:`cardinality` / :meth:`labels` / :meth:`num_rows` without
        opening a single shard (the join planner ranks edges by
        cardinality *before* deciding which tables to probe, so this is
        what keeps unprobed shards unmapped).
        """
        self._lazy_loader = loader
        self._lazy_rows = dict(label_rows)

    def _resolve_table(self, label: str):
        """The table for ``label``, mapping its shard on first access."""
        table = self._tables.get(label)
        if (
            table is None
            and self._lazy_loader is not None
            and label in self._lazy_rows
        ):
            table = self._lazy_loader.load_table(label)
            self._tables[label] = table
        return table

    def _resolve_all_tables(self) -> None:
        if self._lazy_loader is not None:
            for label in self._lazy_rows:
                self._resolve_table(label)

    def prefetch_labels(self, labels) -> int:
        """Open (and read-ahead hint) the shards of ``labels`` now.

        Called by the join engine with the labels of a freshly planned
        join so the kernel can fault the shards in (the reader issues
        ``madvise(WILLNEED)`` at open) while execution is still setting
        up, instead of blocking on the first probe of each table.  A
        no-op for already-resolved labels, unknown labels, non-sharded
        stores, and when disabled (``GQBEConfig.prefetch_shards=False``).
        Returns how many shards were opened.
        """
        if self._lazy_loader is None or not self._prefetch_hints:
            return 0
        opened = 0
        for label in labels:
            if label not in self._tables and label in self._lazy_rows:
                self._resolve_table(label)
                opened += 1
        return opened

    @property
    def graph(self) -> KnowledgeGraph:
        """The data graph this store was built from."""
        return self._graph

    @property
    def vocabulary(self) -> Vocabulary | IdentityVocabulary:
        """The entity vocabulary the tables were interned with."""
        return self._vocabulary

    @property
    def is_columnar(self) -> bool:
        """Whether the tables use the columnar numpy layout."""
        return self._columnar

    def build_indexes(self) -> None:
        """Materialize every lazy probe index now.

        Queries build indexes on demand; snapshot builds call this so the
        serialized tables carry warm indexes and a loaded snapshot answers
        its first query without an index-build pause.  On a lazily sharded
        store this resolves every pending table first.
        """
        self._resolve_all_tables()
        if self._columnar:
            for table in self._tables.values():
                table.build_indexes()

    def ingest_row(self, label: str, subject_id: int, object_id: int) -> None:
        """Insert one interned row, creating the label's table if needed.

        The write path for live ingest: an existing table (mapped or
        owned — ``add_row`` copy-on-write-promotes mapped columns) gets
        the row appended; a label the snapshot has never seen gets a
        fresh owned table.  Duplicate rows are table-level no-ops, but
        callers deduplicate against the *graph* first so vocabulary and
        statistics never see a duplicate either.
        """
        table = self._resolve_table(label)
        if table is None:
            table_class = ColumnarEdgeTable if self._columnar else EdgeTable
            table = table_class(label)
            self._tables[label] = table
        table.add_row(subject_id, object_id)

    def _delta_labels(self) -> list[str]:
        """Labels created by ingest that the shard manifest doesn't know."""
        if self._lazy_rows is None:
            return []
        return [label for label in self._tables if label not in self._lazy_rows]

    @property
    def num_tables(self) -> int:
        """Number of per-label tables (== number of distinct labels)."""
        if self._lazy_rows is not None:
            return len(self._lazy_rows) + len(self._delta_labels())
        return len(self._tables)

    @property
    def num_rows(self) -> int:
        """Total number of rows across all tables (== number of edges)."""
        if self._lazy_rows is not None:
            # Loaded tables answer for themselves (they may have been
            # mutated); unopened labels answer from the manifest; tables
            # ingest created exist only in ``_tables``.
            return sum(
                len(self._tables[label])
                if label in self._tables
                else manifest_rows
                for label, manifest_rows in self._lazy_rows.items()
            ) + sum(len(self._tables[label]) for label in self._delta_labels())
        return sum(len(table) for table in self._tables.values())

    def labels(self) -> Iterator[str]:
        """Iterate the labels with a table in the store.

        Manifest (base) labels come first in manifest order, then labels
        ingest created, in creation order — the same label order the
        union graph reports.
        """
        if self._lazy_rows is not None:
            delta = self._delta_labels()
            if delta:
                return iter([*self._lazy_rows, *delta])
            return iter(self._lazy_rows)
        return iter(self._tables)

    def has_label(self, label: str) -> bool:
        """Whether a table for ``label`` exists."""
        if self._lazy_rows is not None:
            return label in self._lazy_rows or label in self._tables
        return label in self._tables

    def table(self, label: str) -> EdgeTable | ColumnarEdgeTable:
        """Return the table for ``label``; raise for unknown labels."""
        table = self._resolve_table(label)
        if table is None:
            raise GraphError(f"no edges with label {label!r} in the data graph")
        return table

    def table_or_empty(self, label: str) -> EdgeTable | ColumnarEdgeTable:
        """Return the table for ``label`` or an empty table if unknown.

        The lookup must distinguish "label unknown" from "table present":
        a table with zero rows is falsy, so the obvious
        ``get(label) or EdgeTable(label)`` would silently replace a stored
        (possibly indexed-but-empty) table with a fresh throwaway one.
        """
        table = self._resolve_table(label)
        if table is None:
            return ColumnarEdgeTable(label) if self._columnar else EdgeTable(label)
        return table

    def cardinality(self, label: str) -> int:
        """Number of rows in the table for ``label`` (0 if unknown).

        Never maps a shard: unopened labels answer from the manifest's
        row counts, so query *planning* stays shard-free.
        """
        table = self._tables.get(label)
        if table is not None:
            return len(table)
        if self._lazy_rows is not None:
            return self._lazy_rows.get(label, 0)
        return 0

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(tables={self.num_tables}, rows={self.num_rows})"
        )
