"""The vertical-partition triple store: one :class:`EdgeTable` per label.

The store is built once from a :class:`~repro.graph.knowledge_graph.KnowledgeGraph`
and is the only structure the join engine touches at query time, mirroring
the paper's setup where "the whole data graph is hashed in memory ... before
any query comes in".

Building the store also builds its :class:`~repro.storage.vocabulary.Vocabulary`:
every node of the data graph is interned to a dense integer id (in node
insertion order, so ids are deterministic per graph), and the per-label
tables store ``(subj_id, obj_id)`` int rows.  Query-time joins therefore
never touch an entity string; decoding happens only when answers are
materialized.  Passing an
:class:`~repro.storage.vocabulary.IdentityVocabulary` instead reproduces
the string-keyed engine (used as the reference in equivalence tests).

Tables default to the columnar struct-of-arrays layout
(:class:`~repro.storage.table.ColumnarEdgeTable`), which the vectorized
numpy join engine runs on.  ``columnar=False`` — or an identity
vocabulary, or a missing numpy — selects the tuple-row
:class:`~repro.storage.table.EdgeTable` reference layout instead.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.exceptions import GraphError
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.storage.table import ColumnarEdgeTable, EdgeTable, np
from repro.storage.vocabulary import IdentityVocabulary, Vocabulary


class VerticalPartitionStore:
    """All per-label edge tables of a data graph, hash-indexed in memory."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        vocabulary: Vocabulary | IdentityVocabulary | None = None,
        columnar: bool = True,
    ) -> None:
        self._graph = graph
        self._vocabulary = vocabulary if vocabulary is not None else Vocabulary()
        # The columnar layout needs int ids and numpy; otherwise fall back
        # to the tuple-row reference layout.
        self._columnar = (
            columnar
            and np is not None
            and not isinstance(self._vocabulary, IdentityVocabulary)
        )
        table_class = ColumnarEdgeTable if self._columnar else EdgeTable
        intern = self._vocabulary.intern
        # Intern every node first (not just edge endpoints) so the
        # vocabulary covers isolated nodes too and ids follow the graph's
        # deterministic node insertion order.
        for node in graph.nodes:
            intern(node)
        # After the node pass every endpoint is interned, so table rows are
        # filled through plain lookups.
        lookup = self._vocabulary.id_of
        self._tables: dict[str, EdgeTable | ColumnarEdgeTable] = {}
        tables = self._tables
        for edge in graph.edges:
            table = tables.get(edge.label)
            if table is None:
                table = table_class(edge.label)
                tables[edge.label] = table
            table.add_row(lookup(edge.subject), lookup(edge.object))

    @classmethod
    def from_graph(cls, graph: KnowledgeGraph) -> "VerticalPartitionStore":
        """Build a store for ``graph`` (alias of the constructor)."""
        return cls(graph)

    # The snapshot subsystem serializes the store *without* the graph
    # back-reference (the graph is its own snapshot section) and re-wires
    # ``_graph`` on load.
    def __getstate__(self):
        state = dict(self.__dict__)
        state["_graph"] = None
        return state

    @property
    def graph(self) -> KnowledgeGraph:
        """The data graph this store was built from."""
        return self._graph

    @property
    def vocabulary(self) -> Vocabulary | IdentityVocabulary:
        """The entity vocabulary the tables were interned with."""
        return self._vocabulary

    @property
    def is_columnar(self) -> bool:
        """Whether the tables use the columnar numpy layout."""
        return self._columnar

    def build_indexes(self) -> None:
        """Materialize every lazy probe index now.

        Queries build indexes on demand; snapshot builds call this so the
        serialized tables carry warm indexes and a loaded snapshot answers
        its first query without an index-build pause.
        """
        if self._columnar:
            for table in self._tables.values():
                table.build_indexes()

    @property
    def num_tables(self) -> int:
        """Number of per-label tables (== number of distinct labels)."""
        return len(self._tables)

    @property
    def num_rows(self) -> int:
        """Total number of rows across all tables (== number of edges)."""
        return sum(len(table) for table in self._tables.values())

    def labels(self) -> Iterator[str]:
        """Iterate the labels with a table in the store."""
        return iter(self._tables)

    def has_label(self, label: str) -> bool:
        """Whether a table for ``label`` exists."""
        return label in self._tables

    def table(self, label: str) -> EdgeTable | ColumnarEdgeTable:
        """Return the table for ``label``; raise for unknown labels."""
        try:
            return self._tables[label]
        except KeyError:
            raise GraphError(f"no edges with label {label!r} in the data graph") from None

    def table_or_empty(self, label: str) -> EdgeTable | ColumnarEdgeTable:
        """Return the table for ``label`` or an empty table if unknown.

        The lookup must distinguish "label unknown" from "table present":
        a table with zero rows is falsy, so the obvious
        ``get(label) or EdgeTable(label)`` would silently replace a stored
        (possibly indexed-but-empty) table with a fresh throwaway one.
        """
        table = self._tables.get(label)
        if table is None:
            return ColumnarEdgeTable(label) if self._columnar else EdgeTable(label)
        return table

    def cardinality(self, label: str) -> int:
        """Number of rows in the table for ``label`` (0 if unknown)."""
        table = self._tables.get(label)
        return len(table) if table is not None else 0

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(tables={self.num_tables}, rows={self.num_rows})"
        )
