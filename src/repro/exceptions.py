"""Exception hierarchy for the GQBE reproduction library.

All library-raised exceptions derive from :class:`GQBEError` so callers can
catch a single base class.  Specific subclasses signal which stage of the
pipeline failed (graph construction, query-tuple validation, query graph
discovery, lattice exploration, or dataset generation).
"""

from __future__ import annotations


class GQBEError(Exception):
    """Base class for every error raised by this library."""


class GraphError(GQBEError):
    """Raised for malformed graphs or invalid graph operations."""


class TripleParseError(GraphError):
    """Raised when a triple file contains a line that cannot be parsed."""

    def __init__(self, line_number: int, line: str, reason: str) -> None:
        self.line_number = line_number
        self.line = line
        self.reason = reason
        super().__init__(f"line {line_number}: {reason}: {line!r}")


class QueryError(GQBEError):
    """Raised for invalid query tuples (unknown entities, empty tuples...)."""


class UnknownEntityError(QueryError):
    """Raised when a query tuple references an entity not in the data graph."""

    def __init__(self, entity: str) -> None:
        self.entity = entity
        super().__init__(f"entity {entity!r} is not present in the data graph")


class DiscoveryError(GQBEError):
    """Raised when a maximal query graph cannot be discovered."""


class DisconnectedQueryError(DiscoveryError):
    """Raised when query entities are not connected within ``d`` hops."""

    def __init__(self, entities: tuple[str, ...], d: int) -> None:
        self.entities = entities
        self.d = d
        super().__init__(
            f"query entities {entities!r} are not weakly connected within "
            f"{d} undirected hops of each other"
        )


class LatticeError(GQBEError):
    """Raised for invalid lattice operations (bad query graphs, empty MQG)."""


class EvaluationError(GQBEError):
    """Raised when the experiment harness is configured inconsistently."""


class DatasetError(GQBEError):
    """Raised when a synthetic dataset cannot be generated as requested."""


class SnapshotError(GQBEError):
    """Raised for unreadable, corrupt or incompatible index snapshots."""
