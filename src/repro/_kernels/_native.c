/* Native kernels for the engine's innermost scalar loops.
 *
 * Each function here is the compiled twin of one function in
 * repro/_kernels/_pure.py and must stay byte-identical to it: same
 * match/visit order, same dict insertion order, same overflow timing,
 * same Python object semantics (tuple concat, membership tests, dict
 * max-merges).  tests/test_native_kernels.py pins every pair.
 *
 * Int64 columns arrive as C-contiguous read-only buffers (numpy arrays
 * or mmap-backed views); row data arrives as the interpreter objects
 * the pure path loops over (lists of tuples, dict buckets, sets), so
 * the win is purely the removal of interpreter dispatch, not a data
 * layout change.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>

/* ------------------------------------------------------------------ */
/* int64 buffer access                                                */
/* ------------------------------------------------------------------ */

typedef struct {
    Py_buffer view;
    const int64_t *data;
    Py_ssize_t len;
} I64Buffer;

static int
i64_acquire(PyObject *obj, I64Buffer *buffer)
{
    if (PyObject_GetBuffer(obj, &buffer->view, PyBUF_SIMPLE) < 0)
        return -1;
    if (buffer->view.len % (Py_ssize_t)sizeof(int64_t)) {
        PyBuffer_Release(&buffer->view);
        PyErr_SetString(PyExc_ValueError,
                        "expected a contiguous int64 buffer");
        return -1;
    }
    buffer->data = (const int64_t *)buffer->view.buf;
    buffer->len = buffer->view.len / (Py_ssize_t)sizeof(int64_t);
    return 0;
}

static void
i64_release(I64Buffer *buffer)
{
    PyBuffer_Release(&buffer->view);
}

/* All entry points use METH_FASTCALL: the kernels run thousands of
 * times per query on small inputs, where the argument-tuple pack and
 * PyArg_ParseTuple format scan are a visible fraction of the call. */

static int
check_arity(const char *name, Py_ssize_t nargs, Py_ssize_t expected)
{
    if (nargs != expected) {
        PyErr_Format(PyExc_TypeError, "%s expected %zd arguments, got %zd",
                     name, expected, nargs);
        return -1;
    }
    return 0;
}

static int
check_dict(const char *name, PyObject *obj)
{
    if (!PyDict_Check(obj)) {
        PyErr_Format(PyExc_TypeError, "%s must be a dict", name);
        return -1;
    }
    return 0;
}

/* PyFloat_AsDouble with the exact-float unbox inlined; the score
 * records hold floats except when user code stored something odd. */
static inline double
as_double(PyObject *obj)
{
    if (PyFloat_CheckExact(obj))
        return PyFloat_AS_DOUBLE(obj);
    return PyFloat_AsDouble(obj);
}

/* ------------------------------------------------------------------ */
/* bfs_expand                                                         */
/* ------------------------------------------------------------------ */

/* Visit arr[start:end]; first-occurrence ids go into distances (at
 * depth_obj) and next_frontier.  Returns 0 on success. */
static int
expand_slice(const int64_t *arr, int64_t start, int64_t end,
             PyObject *distances, PyObject *depth_obj, PyObject *next_frontier)
{
    for (int64_t j = start; j < end; j++) {
        PyObject *key = PyLong_FromLongLong((long long)arr[j]);
        if (key == NULL)
            return -1;
        int present = PyDict_Contains(distances, key);
        if (present < 0) {
            Py_DECREF(key);
            return -1;
        }
        if (!present) {
            if (PyDict_SetItem(distances, key, depth_obj) < 0 ||
                PyList_Append(next_frontier, key) < 0) {
                Py_DECREF(key);
                return -1;
            }
        }
        Py_DECREF(key);
    }
    return 0;
}

static PyObject *
kernel_bfs_expand(PyObject *Py_UNUSED(module), PyObject *const *args,
                  Py_ssize_t nargs)
{
    if (check_arity("bfs_expand", nargs, 7) < 0)
        return NULL;
    PyObject *frontier = args[0];
    PyObject *out_indptr_obj = args[1], *out_objects_obj = args[2];
    PyObject *in_indptr_obj = args[3], *in_subjects_obj = args[4];
    PyObject *distances = args[5], *depth_obj = args[6];
    if (check_dict("distances", distances) < 0)
        return NULL;

    I64Buffer out_indptr, out_objects, in_indptr, in_subjects;
    if (i64_acquire(out_indptr_obj, &out_indptr) < 0)
        return NULL;
    if (i64_acquire(out_objects_obj, &out_objects) < 0) {
        i64_release(&out_indptr);
        return NULL;
    }
    if (i64_acquire(in_indptr_obj, &in_indptr) < 0) {
        i64_release(&out_indptr);
        i64_release(&out_objects);
        return NULL;
    }
    if (i64_acquire(in_subjects_obj, &in_subjects) < 0) {
        i64_release(&out_indptr);
        i64_release(&out_objects);
        i64_release(&in_indptr);
        return NULL;
    }

    PyObject *next_frontier = NULL;
    PyObject *fast = PySequence_Fast(frontier, "frontier must be a sequence");
    if (fast == NULL)
        goto done;
    next_frontier = PyList_New(0);
    if (next_frontier == NULL)
        goto done;

    Py_ssize_t n_frontier = PySequence_Fast_GET_SIZE(fast);
    PyObject **items = PySequence_Fast_ITEMS(fast);
    Py_ssize_t out_nodes = out_indptr.len - 1;
    Py_ssize_t in_nodes = in_indptr.len - 1;
    for (Py_ssize_t i = 0; i < n_frontier; i++) {
        long long node = PyLong_AsLongLong(items[i]);
        if (node == -1 && PyErr_Occurred())
            goto fail;
        if (node < 0 || node >= out_nodes || node >= in_nodes) {
            PyErr_Format(PyExc_IndexError,
                         "frontier node id %lld out of range", node);
            goto fail;
        }
        if (expand_slice(out_objects.data, out_indptr.data[node],
                         out_indptr.data[node + 1], distances, depth_obj,
                         next_frontier) < 0)
            goto fail;
        if (expand_slice(in_subjects.data, in_indptr.data[node],
                         in_indptr.data[node + 1], distances, depth_obj,
                         next_frontier) < 0)
            goto fail;
    }
    goto done;

fail:
    Py_CLEAR(next_frontier);
done:
    Py_XDECREF(fast);
    i64_release(&out_indptr);
    i64_release(&out_objects);
    i64_release(&in_indptr);
    i64_release(&in_subjects);
    return next_frontier;
}

/* ------------------------------------------------------------------ */
/* csr_neighbors                                                      */
/* ------------------------------------------------------------------ */

static int
append_slice(const int64_t *arr, int64_t start, int64_t end, PyObject *out)
{
    for (int64_t j = start; j < end; j++) {
        PyObject *value = PyLong_FromLongLong((long long)arr[j]);
        if (value == NULL)
            return -1;
        if (PyList_Append(out, value) < 0) {
            Py_DECREF(value);
            return -1;
        }
        Py_DECREF(value);
    }
    return 0;
}

static PyObject *
kernel_csr_neighbors(PyObject *Py_UNUSED(module), PyObject *const *args,
                     Py_ssize_t nargs)
{
    if (check_arity("csr_neighbors", nargs, 5) < 0)
        return NULL;
    long long node = PyLong_AsLongLong(args[0]);
    if (node == -1 && PyErr_Occurred())
        return NULL;
    PyObject *out_indptr_obj = args[1], *out_objects_obj = args[2];
    PyObject *in_indptr_obj = args[3], *in_subjects_obj = args[4];

    I64Buffer out_indptr, out_objects, in_indptr, in_subjects;
    if (i64_acquire(out_indptr_obj, &out_indptr) < 0)
        return NULL;
    if (i64_acquire(out_objects_obj, &out_objects) < 0) {
        i64_release(&out_indptr);
        return NULL;
    }
    if (i64_acquire(in_indptr_obj, &in_indptr) < 0) {
        i64_release(&out_indptr);
        i64_release(&out_objects);
        return NULL;
    }
    if (i64_acquire(in_subjects_obj, &in_subjects) < 0) {
        i64_release(&out_indptr);
        i64_release(&out_objects);
        i64_release(&in_indptr);
        return NULL;
    }

    PyObject *out = NULL;
    if (node < 0 || node >= out_indptr.len - 1 || node >= in_indptr.len - 1) {
        PyErr_Format(PyExc_IndexError, "node id %lld out of range", node);
        goto done;
    }
    out = PyList_New(0);
    if (out == NULL)
        goto done;
    if (append_slice(out_objects.data, out_indptr.data[node],
                     out_indptr.data[node + 1], out) < 0 ||
        append_slice(in_subjects.data, in_indptr.data[node],
                     in_indptr.data[node + 1], out) < 0)
        Py_CLEAR(out);

done:
    i64_release(&out_indptr);
    i64_release(&out_objects);
    i64_release(&in_indptr);
    i64_release(&in_subjects);
    return out;
}

/* ------------------------------------------------------------------ */
/* probe_tail                                                         */
/* ------------------------------------------------------------------ */

static PyObject *
kernel_probe_tail(PyObject *Py_UNUSED(module), PyObject *const *args,
                  Py_ssize_t nargs)
{
    if (check_arity("probe_tail", nargs, 5) < 0)
        return NULL;
    PyObject *rows = args[0], *buckets = args[1];
    if (check_dict("buckets", buckets) < 0)
        return NULL;
    Py_ssize_t bound_col = PyLong_AsSsize_t(args[2]);
    if (bound_col == -1 && PyErr_Occurred())
        return NULL;
    int injective = PyObject_IsTrue(args[3]);
    if (injective < 0)
        return NULL;
    Py_ssize_t max_rows = PyLong_AsSsize_t(args[4]);
    if (max_rows == -1 && PyErr_Occurred())
        return NULL;

    PyObject *fast = PySequence_Fast(rows, "rows must be a sequence");
    if (fast == NULL)
        return NULL;

    Py_ssize_t n_rows = PySequence_Fast_GET_SIZE(fast);
    PyObject **row_items = PySequence_Fast_ITEMS(fast);

    /* Phase 1: probe every row's bucket once, remember the match lists
     * (owned — a user __eq__ in the injective scan may mutate buckets,
     * and the pure loop's local binding keeps its list alive the same
     * way), and sum an output upper bound.  The tail is at most the
     * vectorization threshold (64 rows); larger inputs spill to the
     * heap rather than being rejected. */
    PyObject *matches_stack[64];
    PyObject **matches_by_row = matches_stack;
    if (n_rows > 64) {
        matches_by_row = PyMem_New(PyObject *, (size_t)n_rows);
        if (matches_by_row == NULL) {
            Py_DECREF(fast);
            return PyErr_NoMemory();
        }
    }
    Py_ssize_t upper = 0;
    Py_ssize_t n_probed = 0;
    PyObject *out = NULL;
    for (Py_ssize_t i = 0; i < n_rows; i++) {
        PyObject *row = row_items[i];
        if (!PyTuple_Check(row) || bound_col >= PyTuple_GET_SIZE(row)) {
            PyErr_SetString(PyExc_TypeError,
                            "rows must be tuples covering bound_col");
            goto fail;
        }
        PyObject *matches = PyDict_GetItemWithError(
            buckets, PyTuple_GET_ITEM(row, bound_col));
        if (matches == NULL && PyErr_Occurred())
            goto fail;
        if (matches != NULL) {
            if (!PyList_Check(matches)) {
                PyErr_SetString(PyExc_TypeError,
                                "bucket values must be lists");
                goto fail;
            }
            upper += PyList_GET_SIZE(matches);
            Py_INCREF(matches);
        }
        matches_by_row[i] = matches;
        n_probed = i + 1;
    }

    /* Phase 2: fill a pre-sized list — no per-output append calls.
     * The list briefly holds NULL slots beyond `used`; list_traverse
     * and list_dealloc both tolerate that, and the final Py_SET_SIZE
     * hides any slots the injective filter skipped. */
    out = PyList_New(upper);
    if (out == NULL)
        goto fail;
    Py_ssize_t used = 0;
    for (Py_ssize_t i = 0; i < n_rows; i++) {
        PyObject *matches = matches_by_row[i];
        if (matches == NULL)
            continue;
        Py_ssize_t n_matches = PyList_GET_SIZE(matches);
        if (n_matches == 0)
            continue;
        PyObject *row = row_items[i];
        Py_ssize_t row_len = PyTuple_GET_SIZE(row);
        /* Mapped rows hold machine-sized ints, so the injective scan
         * can run over an int64 image of the row extracted once and
         * shared by every match — cells_known is computed lazily on the
         * first injective match (-1 pending, 0 mixed/wide, 1 all-int).
         * Any non-int or overflowing cell or value falls back to the
         * object scan, whose int==int semantics the fast path matches
         * exactly (bools are not CheckExact and take the fallback). */
        int64_t cells[64];
        int cells_known = -1;
        for (Py_ssize_t m = 0; m < n_matches; m++) {
            PyObject *value = PyList_GET_ITEM(matches, m);
            if (injective) {
                if (cells_known < 0) {
                    cells_known = row_len <= 64;
                    for (Py_ssize_t c = 0; cells_known && c < row_len;
                         c++) {
                        PyObject *cell = PyTuple_GET_ITEM(row, c);
                        if (!PyLong_CheckExact(cell)) {
                            cells_known = 0;
                            break;
                        }
                        int overflow = 0;
                        long long v =
                            PyLong_AsLongLongAndOverflow(cell, &overflow);
                        if (v == -1 && PyErr_Occurred())
                            goto fail;
                        if (overflow) {
                            cells_known = 0;
                            break;
                        }
                        cells[c] = v;
                    }
                }
                int present = 0;
                int scanned = 0;
                if (cells_known && PyLong_CheckExact(value)) {
                    int overflow = 0;
                    long long v =
                        PyLong_AsLongLongAndOverflow(value, &overflow);
                    if (v == -1 && PyErr_Occurred())
                        goto fail;
                    if (!overflow) {
                        scanned = 1;
                        for (Py_ssize_t c = 0; c < row_len; c++) {
                            if (cells[c] == v) {
                                present = 1;
                                break;
                            }
                        }
                    }
                }
                if (!scanned) {
                    /* Object scan with an identity check ahead of the
                     * rich-compare call: the interned engine reuses
                     * node objects, so equal cells are usually the
                     * same object. */
                    for (Py_ssize_t c = 0; c < row_len; c++) {
                        PyObject *cell = PyTuple_GET_ITEM(row, c);
                        if (cell == value) {
                            present = 1;
                            break;
                        }
                        present =
                            PyObject_RichCompareBool(cell, value, Py_EQ);
                        if (present)
                            break;
                    }
                }
                if (present < 0)
                    goto fail;
                if (present)
                    continue;
            }
            PyObject *extended = PyTuple_New(row_len + 1);
            if (extended == NULL)
                goto fail;
            for (Py_ssize_t c = 0; c < row_len; c++) {
                PyObject *cell = PyTuple_GET_ITEM(row, c);
                Py_INCREF(cell);
                PyTuple_SET_ITEM(extended, c, cell);
            }
            Py_INCREF(value);
            PyTuple_SET_ITEM(extended, row_len, value);
            PyList_SET_ITEM(out, used, extended);
            used++;
        }
        if (max_rows >= 0 && used > max_rows) {
            /* Overflow: the caller raises its documented error. */
            Py_SET_SIZE(out, used);
            Py_CLEAR(out);
            goto cleanup;
        }
    }
    Py_SET_SIZE(out, used);
    goto cleanup;

fail:
    /* list_dealloc Py_XDECREFs every slot, so NULL tails are fine. */
    Py_CLEAR(out);

cleanup:
    for (Py_ssize_t i = 0; i < n_probed; i++)
        Py_XDECREF(matches_by_row[i]);
    if (matches_by_row != matches_stack)
        PyMem_Free(matches_by_row);
    Py_DECREF(fast);
    if (out != NULL)
        return out;
    if (PyErr_Occurred())
        return NULL;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* filter_pairs                                                       */
/* ------------------------------------------------------------------ */

static PyObject *
kernel_filter_pairs(PyObject *Py_UNUSED(module), PyObject *const *args,
                    Py_ssize_t nargs)
{
    if (check_arity("filter_pairs", nargs, 4) < 0)
        return NULL;
    PyObject *rows = args[0], *pairs = args[3];
    Py_ssize_t subject_col = PyLong_AsSsize_t(args[1]);
    if (subject_col == -1 && PyErr_Occurred())
        return NULL;
    Py_ssize_t object_col = PyLong_AsSsize_t(args[2]);
    if (object_col == -1 && PyErr_Occurred())
        return NULL;

    PyObject *fast = PySequence_Fast(rows, "rows must be a sequence");
    if (fast == NULL)
        return NULL;
    PyObject *out = PyList_New(0);
    if (out == NULL) {
        Py_DECREF(fast);
        return NULL;
    }

    Py_ssize_t n_rows = PySequence_Fast_GET_SIZE(fast);
    PyObject **row_items = PySequence_Fast_ITEMS(fast);
    for (Py_ssize_t i = 0; i < n_rows; i++) {
        PyObject *row = row_items[i];
        if (!PyTuple_Check(row) || subject_col >= PyTuple_GET_SIZE(row) ||
            object_col >= PyTuple_GET_SIZE(row)) {
            PyErr_SetString(PyExc_TypeError,
                            "rows must be tuples covering both columns");
            goto fail;
        }
        PyObject *pair = PyTuple_Pack(2, PyTuple_GET_ITEM(row, subject_col),
                                      PyTuple_GET_ITEM(row, object_col));
        if (pair == NULL)
            goto fail;
        int present = PySet_Contains(pairs, pair);
        Py_DECREF(pair);
        if (present < 0)
            goto fail;
        if (present && PyList_Append(out, row) < 0)
            goto fail;
    }
    Py_DECREF(fast);
    return out;

fail:
    Py_DECREF(out);
    Py_DECREF(fast);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* accumulate_structure                                               */
/* ------------------------------------------------------------------ */

static PyObject *
kernel_accumulate_structure(PyObject *Py_UNUSED(module),
                            PyObject *const *args, Py_ssize_t nargs)
{
    if (check_arity("accumulate_structure", nargs, 6) < 0)
        return NULL;
    PyObject *answers = args[0], *excluded = args[1], *records = args[2];
    PyObject *mask_structure_obj = args[3], *mask_obj = args[4];
    PyObject *callback = args[5];
    if (check_dict("records", records) < 0)
        return NULL;

    double mask_structure = as_double(mask_structure_obj);
    if (mask_structure == -1.0 && PyErr_Occurred())
        return NULL;
    int has_callback = callback != Py_None;

    PyObject *zero = PyFloat_FromDouble(0.0);
    if (zero == NULL)
        return NULL;
    /* Materialize the answer set once (same iteration order) and walk
     * borrowed references: cheaper than a per-item PyIter_Next round
     * trip on the hottest per-answer loop of the exploration. */
    PyObject *fast = PySequence_Fast(answers,
                                     "distinct_answers must be iterable");
    if (fast == NULL) {
        Py_DECREF(zero);
        return NULL;
    }
    /* An empty exclusion set (the common case outside the workload
     * queries themselves) skips the per-answer membership test. */
    int check_excluded =
        !PyAnySet_Check(excluded) || PySet_GET_SIZE(excluded) > 0;

    Py_ssize_t n_answers = PySequence_Fast_GET_SIZE(fast);
    PyObject **answer_items = PySequence_Fast_ITEMS(fast);
    for (Py_ssize_t i = 0; i < n_answers; i++) {
        PyObject *answer = answer_items[i];
        if (check_excluded) {
            int skip = PySet_Contains(excluded, answer);
            if (skip < 0)
                goto fail;
            if (skip)
                continue;
        }
        /* Lattice nodes overlap heavily in their answer sets, so most
         * answers already hold a record: look up first (one hash, no
         * allocation on the hot merge path) and only build the fresh
         * 4-list on a miss. */
        PyObject *record = PyDict_GetItemWithError(records, answer);
        if (record == NULL) {
            if (PyErr_Occurred())
                goto fail;
            PyObject *fresh = PyList_New(4);
            if (fresh == NULL)
                goto fail;
            Py_INCREF(mask_structure_obj);
            PyList_SET_ITEM(fresh, 0, mask_structure_obj);
            Py_INCREF(mask_structure_obj);
            PyList_SET_ITEM(fresh, 1, mask_structure_obj);
            Py_INCREF(zero);
            PyList_SET_ITEM(fresh, 2, zero);
            Py_INCREF(mask_obj);
            PyList_SET_ITEM(fresh, 3, mask_obj);
            int failed = PyDict_SetItem(records, answer, fresh) < 0;
            Py_DECREF(fresh);
            if (failed)
                goto fail;
            if (has_callback) {
                PyObject *cbargs[2] = {answer, mask_structure_obj};
                PyObject *result =
                    PyObject_Vectorcall(callback, cbargs, 2, NULL);
                if (result == NULL)
                    goto fail;
                Py_DECREF(result);
            }
        } else {
            if (!PyList_Check(record) || PyList_GET_SIZE(record) != 4) {
                PyErr_SetString(PyExc_TypeError,
                                "records must hold 4-item lists");
                goto fail;
            }
            double structure = as_double(PyList_GET_ITEM(record, 0));
            if (structure == -1.0 && PyErr_Occurred())
                goto fail;
            if (mask_structure > structure) {
                Py_INCREF(mask_structure_obj);
                if (PyList_SetItem(record, 0, mask_structure_obj) < 0)
                    goto fail;
                if (has_callback) {
                    PyObject *cbargs[2] = {answer, mask_structure_obj};
                    PyObject *result =
                        PyObject_Vectorcall(callback, cbargs, 2, NULL);
                    if (result == NULL)
                        goto fail;
                    Py_DECREF(result);
                }
            }
            double full = as_double(PyList_GET_ITEM(record, 1));
            if (full == -1.0 && PyErr_Occurred())
                goto fail;
            if (mask_structure > full) {
                Py_INCREF(mask_structure_obj);
                if (PyList_SetItem(record, 1, mask_structure_obj) < 0)
                    goto fail;
                Py_INCREF(zero);
                if (PyList_SetItem(record, 2, zero) < 0)
                    goto fail;
                Py_INCREF(mask_obj);
                if (PyList_SetItem(record, 3, mask_obj) < 0)
                    goto fail;
            }
        }
    }
    Py_DECREF(fast);
    Py_DECREF(zero);
    Py_RETURN_NONE;

fail:
    Py_DECREF(fast);
    Py_DECREF(zero);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* accumulate_content                                                 */
/* ------------------------------------------------------------------ */

static PyObject *
kernel_accumulate_content(PyObject *Py_UNUSED(module), PyObject *const *args,
                          Py_ssize_t nargs)
{
    if (check_arity("accumulate_content", nargs, 5) < 0)
        return NULL;
    PyObject *matches = args[0], *records = args[1];
    PyObject *mask_structure_obj = args[2], *mask_obj = args[3];
    PyObject *content_of = args[4];
    if (check_dict("records", records) < 0)
        return NULL;

    double mask_structure = as_double(mask_structure_obj);
    if (mask_structure == -1.0 && PyErr_Occurred())
        return NULL;
    PyObject *cache = PyDict_New();
    if (cache == NULL)
        return NULL;
    PyObject *fast = PySequence_Fast(matches, "matches must be a sequence");
    if (fast == NULL) {
        Py_DECREF(cache);
        return NULL;
    }

    Py_ssize_t n_matches = PySequence_Fast_GET_SIZE(fast);
    PyObject **items = PySequence_Fast_ITEMS(fast);
    for (Py_ssize_t i = 0; i < n_matches; i++) {
        PyObject *pair = items[i];
        if (!PyTuple_Check(pair) || PyTuple_GET_SIZE(pair) != 2) {
            PyErr_SetString(PyExc_TypeError,
                            "matches must hold (answer, signature) pairs");
            goto fail;
        }
        PyObject *answer = PyTuple_GET_ITEM(pair, 0);
        PyObject *signature = PyTuple_GET_ITEM(pair, 1);
        PyObject *record = PyDict_GetItemWithError(records, answer);
        if (record == NULL) {
            if (PyErr_Occurred())
                goto fail;
            continue; /* excluded answer (skipped by the structure sweep) */
        }
        if (!PyList_Check(record) || PyList_GET_SIZE(record) != 4) {
            PyErr_SetString(PyExc_TypeError, "records must hold 4-item lists");
            goto fail;
        }
        PyObject *content_obj = PyDict_GetItemWithError(cache, signature);
        if (content_obj == NULL) {
            if (PyErr_Occurred())
                goto fail;
            content_obj = PyObject_Vectorcall(content_of, &signature, 1, NULL);
            if (content_obj == NULL)
                goto fail;
            int failed = PyDict_SetItem(cache, signature, content_obj) < 0;
            Py_DECREF(content_obj); /* cache keeps it alive below */
            if (failed)
                goto fail;
        }
        double content = as_double(content_obj);
        if (content == -1.0 && PyErr_Occurred())
            goto fail;
        double full = mask_structure + content;
        double best = as_double(PyList_GET_ITEM(record, 1));
        if (best == -1.0 && PyErr_Occurred())
            goto fail;
        if (full > best) {
            PyObject *full_obj = PyFloat_FromDouble(full);
            if (full_obj == NULL)
                goto fail;
            if (PyList_SetItem(record, 1, full_obj) < 0)
                goto fail;
            Py_INCREF(content_obj);
            if (PyList_SetItem(record, 2, content_obj) < 0)
                goto fail;
            Py_INCREF(mask_obj);
            if (PyList_SetItem(record, 3, mask_obj) < 0)
                goto fail;
        }
    }
    Py_DECREF(fast);
    Py_DECREF(cache);
    Py_RETURN_NONE;

fail:
    Py_DECREF(fast);
    Py_DECREF(cache);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* TopKThreshold                                                      */
/* ------------------------------------------------------------------ */

/* A bounded min-heap of (score, answer) compared by score only.  The
 * pure twin keeps a (score, answer)-tuple heapq, whose ties compare the
 * answer objects; comparing scores only is answer-equivalent because
 * the multiset of live scores — the only thing threshold() exposes —
 * is invariant under which of two score-tied entries gets evicted (see
 * docs/native-kernels.md for the full argument).  Staleness is the
 * credit-mismatch predicate: an entry is live iff credit[answer] holds
 * exactly its score; per-answer scores strictly increase, so superseded
 * and evicted entries can never be mistaken for live ones. */

typedef struct {
    PyObject_HEAD
    Py_ssize_t k_prime;
    Py_ssize_t size;
    Py_ssize_t capacity;
    double *scores;
    PyObject **answers;
    PyObject *credit; /* dict: answer -> float (its live score) */
} TopKObject;

static int
topk_reserve(TopKObject *self)
{
    if (self->size < self->capacity)
        return 0;
    Py_ssize_t capacity = self->capacity ? self->capacity * 2 : 64;
    double *scores = PyMem_Realloc(self->scores, capacity * sizeof(double));
    if (scores == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->scores = scores;
    PyObject **answers =
        PyMem_Realloc(self->answers, capacity * sizeof(PyObject *));
    if (answers == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->answers = answers;
    self->capacity = capacity;
    return 0;
}

/* Append (score, answer) and bubble it up.  Steals no reference; the
 * caller's answer is increfed here. */
static int
topk_push(TopKObject *self, double score, PyObject *answer)
{
    if (topk_reserve(self) < 0)
        return -1;
    Py_ssize_t pos = self->size++;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (self->scores[parent] <= score)
            break;
        self->scores[pos] = self->scores[parent];
        self->answers[pos] = self->answers[parent];
        pos = parent;
    }
    self->scores[pos] = score;
    Py_INCREF(answer);
    self->answers[pos] = answer;
    return 0;
}

/* Remove the root; returns the owned answer reference of the removed
 * entry.  The heap must be non-empty. */
static PyObject *
topk_pop(TopKObject *self)
{
    PyObject *popped = self->answers[0];
    Py_ssize_t size = --self->size;
    if (size == 0)
        return popped;
    double score = self->scores[size];
    PyObject *answer = self->answers[size];
    Py_ssize_t pos = 0;
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= size)
            break;
        if (child + 1 < size && self->scores[child + 1] < self->scores[child])
            child += 1;
        if (score <= self->scores[child])
            break;
        self->scores[pos] = self->scores[child];
        self->answers[pos] = self->answers[child];
        pos = child;
    }
    self->scores[pos] = score;
    self->answers[pos] = answer;
    return popped;
}

/* Drop stale roots (credit missing or holding a different score). */
static int
topk_prune(TopKObject *self)
{
    while (self->size) {
        PyObject *credited =
            PyDict_GetItemWithError(self->credit, self->answers[0]);
        if (credited == NULL) {
            if (PyErr_Occurred())
                return -1;
        } else {
            double live = as_double(credited);
            if (live == -1.0 && PyErr_Occurred())
                return -1;
            if (live == self->scores[0])
                break;
        }
        Py_DECREF(topk_pop(self));
    }
    return 0;
}

static PyObject *
topk_new(PyTypeObject *type, PyObject *args, PyObject *kwargs)
{
    Py_ssize_t k_prime;
    static char *keywords[] = {"k_prime", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "n:TopKThreshold",
                                     keywords, &k_prime))
        return NULL;
    TopKObject *self = (TopKObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->k_prime = k_prime;
    self->size = 0;
    self->capacity = 0;
    self->scores = NULL;
    self->answers = NULL;
    self->credit = PyDict_New();
    if (self->credit == NULL) {
        Py_DECREF(self);
        return NULL;
    }
    return (PyObject *)self;
}

static void
topk_dealloc(TopKObject *self)
{
    for (Py_ssize_t i = 0; i < self->size; i++)
        Py_DECREF(self->answers[i]);
    PyMem_Free(self->scores);
    PyMem_Free(self->answers);
    Py_XDECREF(self->credit);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
topk_note(TopKObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (check_arity("note", nargs, 2) < 0)
        return NULL;
    PyObject *answer = args[0], *score_obj = args[1];
    double score = as_double(score_obj);
    if (score == -1.0 && PyErr_Occurred())
        return NULL;

    PyObject *credited = PyDict_GetItemWithError(self->credit, answer);
    if (credited == NULL) {
        if (PyErr_Occurred())
            return NULL;
        if (PyDict_GET_SIZE(self->credit) >= self->k_prime) {
            /* Full: admit only past the current k'-th best, evicting
             * that minimum.  (The old entry of a superseded answer goes
             * stale automatically: its credit no longer matches.) */
            if (topk_prune(self) < 0)
                return NULL;
            if (self->size && score <= self->scores[0])
                Py_RETURN_NONE;
            if (self->size == 0) {
                PyErr_SetString(PyExc_IndexError, "pop from an empty heap");
                return NULL;
            }
            PyObject *evicted = topk_pop(self);
            int failed = PyDict_DelItem(self->credit, evicted) < 0;
            Py_DECREF(evicted);
            if (failed)
                return NULL;
        }
    }
    if (PyDict_SetItem(self->credit, answer, score_obj) < 0)
        return NULL;
    if (topk_push(self, score, answer) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
topk_threshold(TopKObject *self, PyObject *Py_UNUSED(ignored))
{
    if (PyDict_GET_SIZE(self->credit) < self->k_prime)
        Py_RETURN_NONE;
    if (topk_prune(self) < 0)
        return NULL;
    if (self->size == 0) {
        PyErr_SetString(PyExc_IndexError, "index out of range");
        return NULL;
    }
    return PyFloat_FromDouble(self->scores[0]);
}

static Py_ssize_t
topk_length(TopKObject *self)
{
    return PyDict_GET_SIZE(self->credit);
}

static PyMethodDef topk_methods[] = {
    {"note", (PyCFunction)(void (*)(void))topk_note, METH_FASTCALL,
     "Record an answer's improved score (scores only increase)."},
    {"threshold", (PyCFunction)topk_threshold, METH_NOARGS,
     "Score of the current k'-th best answer (None if too few)."},
    {NULL, NULL, 0, NULL},
};

static PySequenceMethods topk_as_sequence = {
    .sq_length = (lenfunc)topk_length,
};

static PyTypeObject TopKType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernels._native.TopKThreshold",
    .tp_basicsize = sizeof(TopKObject),
    .tp_dealloc = (destructor)topk_dealloc,
    .tp_as_sequence = &topk_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Bounded min-heap of the current top-k' per-answer scores.",
    .tp_methods = topk_methods,
    .tp_new = topk_new,
};

/* ------------------------------------------------------------------ */
/* module                                                             */
/* ------------------------------------------------------------------ */

static PyMethodDef module_methods[] = {
    {"bfs_expand", (PyCFunction)(void (*)(void))kernel_bfs_expand,
     METH_FASTCALL,
     "Expand one BFS depth over mapped CSR columns, in place."},
    {"csr_neighbors", (PyCFunction)(void (*)(void))kernel_csr_neighbors,
     METH_FASTCALL,
     "Undirected neighbor ids of one node, out slice then in slice."},
    {"probe_tail", (PyCFunction)(void (*)(void))kernel_probe_tail,
     METH_FASTCALL,
     "Scalar one-sided join-probe tail over dict buckets."},
    {"filter_pairs", (PyCFunction)(void (*)(void))kernel_filter_pairs,
     METH_FASTCALL,
     "Scalar both-endpoints-bound join filter over a pair set."},
    {"accumulate_structure",
     (PyCFunction)(void (*)(void))kernel_accumulate_structure, METH_FASTCALL,
     "Fold distinct answers into the per-answer score records."},
    {"accumulate_content",
     (PyCFunction)(void (*)(void))kernel_accumulate_content, METH_FASTCALL,
     "Fold self-match content scores into the per-answer records."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._kernels._native",
    .m_doc = "Native kernels for the lattice and join hot paths.",
    .m_size = -1,
    .m_methods = module_methods,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    PyObject *module = PyModule_Create(&native_module);
    if (module == NULL)
        return NULL;
    if (PyType_Ready(&TopKType) < 0 ||
        PyModule_AddObjectRef(module, "TopKThreshold",
                              (PyObject *)&TopKType) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
