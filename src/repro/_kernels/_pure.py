# gqbe: contract[deterministic]
"""Pure-Python reference kernels (the fallback backend).

These are the innermost interpreter loops of the engine, factored out of
``storage/join.py``, ``graph/neighborhood.py``, ``graph/mapped.py`` and
``lattice/exploration.py`` verbatim so the native extension
(:mod:`repro._kernels._native`) has a pinned reference to be
byte-identical against.  This module is the *current code*, not a
simplification: the adaptive gather/scalar BFS split, the per-probe-row
``max_rows`` timing and the lazy-deletion threshold heap are preserved
statement for statement.

Every function here must stay a pure function of its inputs (plus the
documented in-place dict/list mutations); ``tests/test_native_kernels.py``
pins each one against the native implementation.
"""

from __future__ import annotations

import heapq

try:  # numpy is optional: without it only the scalar BFS path runs.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

#: Below this many frontier nodes the per-node slice loop beats the
#: vectorized gather's fixed numpy overhead (a handful of array allocs).
GATHER_MIN_FRONTIER = 16


def _gather_frontier(frontier, out_indptr, out_objects, in_indptr, in_subjects):
    """All neighbors of ``frontier``, in per-node out-then-in slice order.

    One fancy-indexed gather replaces ``2 * len(frontier)`` per-node
    slice+tolist round trips.  The output is laid out exactly as the
    scalar loop would visit it — for each frontier node, its out slice
    then its in slice — so feeding it through the same first-occurrence
    dedup yields an identical ``distances`` insertion order.
    """
    nodes = np.asarray(frontier, dtype=np.int64)
    out_starts = out_indptr[nodes]
    out_counts = out_indptr[nodes + 1] - out_starts
    in_starts = in_indptr[nodes]
    in_counts = in_indptr[nodes + 1] - in_starts
    totals = out_counts + in_counts
    total = int(totals.sum())
    if total == 0:
        return []
    dest_base = np.cumsum(totals) - totals
    gathered = np.empty(total, dtype=np.int64)
    out_total = int(out_counts.sum())
    if out_total:
        # Positions within each node's run: a global arange minus each
        # run's starting rank, broadcast per-element via repeat.
        offsets = np.arange(out_total, dtype=np.int64) - np.repeat(
            np.cumsum(out_counts) - out_counts, out_counts
        )
        source = np.repeat(out_starts, out_counts) + offsets
        dest = np.repeat(dest_base, out_counts) + offsets
        gathered[dest] = out_objects[source]
    if total - out_total:
        in_total = total - out_total
        offsets = np.arange(in_total, dtype=np.int64) - np.repeat(
            np.cumsum(in_counts) - in_counts, in_counts
        )
        source = np.repeat(in_starts, in_counts) + offsets
        dest = np.repeat(dest_base + out_counts, in_counts) + offsets
        gathered[dest] = in_subjects[source]
    return gathered.tolist()


def bfs_expand(
    frontier, out_indptr, out_objects, in_indptr, in_subjects, distances, depth
):
    """Expand one BFS depth over mapped CSR columns, in place.

    For each frontier node (in order) visits its out slice then its in
    slice; first-occurrence neighbors are recorded in ``distances`` at
    ``depth`` and returned as the next frontier.  Wide frontiers expand
    through one whole-frontier numpy gather instead of per-node slices;
    the gather emits neighbors in the same order, so the resulting
    insertion order — and everything derived from it — is identical.
    """
    next_frontier: list[int] = []
    if np is not None and len(frontier) >= GATHER_MIN_FRONTIER:
        for neighbor in _gather_frontier(
            frontier, out_indptr, out_objects, in_indptr, in_subjects
        ):
            if neighbor not in distances:
                distances[neighbor] = depth
                next_frontier.append(neighbor)
        return next_frontier
    for node_id in frontier:
        start = int(out_indptr[node_id])
        end = int(out_indptr[node_id + 1])
        for neighbor in out_objects[start:end].tolist():
            if neighbor not in distances:
                distances[neighbor] = depth
                next_frontier.append(neighbor)
        start = int(in_indptr[node_id])
        end = int(in_indptr[node_id + 1])
        for neighbor in in_subjects[start:end].tolist():
            if neighbor not in distances:
                distances[neighbor] = depth
                next_frontier.append(neighbor)
    return next_frontier


def csr_neighbors(node_id, out_indptr, out_objects, in_indptr, in_subjects):
    """Undirected neighbor ids of one node, out-slice order then in-slice."""
    start = int(out_indptr[node_id])
    end = int(out_indptr[node_id + 1])
    ids = out_objects[start:end].tolist()
    start = int(in_indptr[node_id])
    end = int(in_indptr[node_id + 1])
    ids.extend(in_subjects[start:end].tolist())
    return ids


def probe_tail(rows, buckets, bound_col, injective, max_rows):
    """The scalar one-sided join-probe tail over dict buckets.

    Probes ``buckets`` with each row's ``bound_col`` value and emits one
    extended row per match, skipping values already present in the row
    when ``injective``.  ``max_rows`` is checked after each probe row
    (``-1`` disables the cap); on overflow the partial output is
    discarded and ``None`` is returned so the caller can raise its
    documented error.
    """
    out_rows: list[tuple] = []
    append = out_rows.append
    for row in rows:
        matches = buckets.get(row[bound_col])
        if not matches:
            continue
        for value in matches:
            if injective and value in row:
                continue
            append(row + (value,))
        if max_rows >= 0 and len(out_rows) > max_rows:
            return None
    return out_rows


def filter_pairs(rows, subject_col, object_col, pairs):
    """The scalar both-endpoints-bound join filter over a pair set."""
    return [row for row in rows if (row[subject_col], row[object_col]) in pairs]


def accumulate_structure(
    distinct_answers, excluded, records, mask_structure, mask, on_structure_improved
):
    """Fold one lattice node's distinct answers into the score records.

    Every answer gets at least ``(structure=mask_structure, full=
    mask_structure, content=0.0, mask)``; existing records are max-merged
    field by field.  ``on_structure_improved`` (may be ``None``) fires
    whenever an answer's best structure score strictly increases.  The
    record layout is pinned by ``lattice/exploration.py``
    (``STRUCTURE, FULL, CONTENT, MASK = range(4)``).
    """
    # gqbe: ignore[DET001] -- order-independent: each answer updates
    # its own record with max-merges; the final records dict content
    # is identical under any iteration order, and ranking happens
    # later over the records, not over this loop's side effects.
    for answer in distinct_answers:
        if answer in excluded:
            continue
        record = records.get(answer)
        if record is None:
            records[answer] = [mask_structure, mask_structure, 0.0, mask]
            if on_structure_improved is not None:
                on_structure_improved(answer, mask_structure)
        else:
            if mask_structure > record[0]:
                record[0] = mask_structure
                if on_structure_improved is not None:
                    on_structure_improved(answer, mask_structure)
            if mask_structure > record[1]:
                record[1] = mask_structure
                record[2] = 0.0
                record[3] = mask


def accumulate_content(matches, records, mask_structure, mask, content_of):
    """Fold the self-match rows' content scores into the score records.

    ``matches`` is a sequence of ``(answer, signature)`` pairs where
    ``signature`` is the bitmask of answer columns bound to their own
    query node.  Distinct signatures repeat heavily within one relation,
    so ``content_of(signature)`` (the Python scoring callback) runs once
    per distinct signature and is cached for the rest of the call.
    Answers without a record were excluded by the structure sweep and
    are skipped.  The record layout is pinned by
    ``lattice/exploration.py`` (``STRUCTURE, FULL, CONTENT, MASK``).
    """
    content_cache: dict[int, float] = {}
    for answer, signature in matches:
        record = records.get(answer)
        if record is None:
            continue  # excluded answer (skipped by the structure sweep)
        content = content_cache.get(signature)
        if content is None:
            content = content_of(signature)
            content_cache[signature] = content
        full = mask_structure + content
        if full > record[1]:
            record[1] = full
            record[2] = content
            record[3] = mask


class TopKThreshold:
    """Bounded min-heap of the current top-``k_prime`` per-answer scores.

    The stage-one termination threshold of Theorem 4, maintained
    incrementally: :meth:`note` records an answer's strictly increased
    structure score (superseding its live entry, or evicting the current
    minimum once the heap is full), :meth:`threshold` returns the current
    k'-th best score (``None`` while fewer than k' answers are live).
    Superseded entries are lazy-deleted via a stale set.
    """

    __slots__ = ("k_prime", "_heap", "_credit", "_stale")

    def __init__(self, k_prime):
        self.k_prime = k_prime
        self._heap: list[tuple[float, object]] = []
        self._credit: dict[object, float] = {}
        self._stale: set[tuple[float, object]] = set()

    def note(self, answer, score):
        """Record ``answer``'s improved ``score`` (scores only increase)."""
        heap = self._heap
        credit = self._credit
        credited = credit.get(answer)
        if credited is not None:
            # Already live: supersede its entry in place.
            self._stale.add((credited, answer))
        elif len(credit) >= self.k_prime:
            # Heap is full: admit only if the score beats the current
            # k'-th best, evicting that minimum.
            self._prune_top()
            if heap and score <= heap[0][0]:
                return
            _evicted_score, evicted_answer = heapq.heappop(heap)
            del credit[evicted_answer]
        credit[answer] = score
        heapq.heappush(heap, (score, answer))

    def _prune_top(self):
        heap = self._heap
        stale = self._stale
        while heap and heap[0] in stale:
            stale.remove(heapq.heappop(heap))

    def threshold(self):
        """Score of the current k'-th best answer (``None`` if too few)."""
        if len(self._credit) < self.k_prime:
            return None
        self._prune_top()
        return self._heap[0][0]

    def __len__(self):
        return len(self._credit)
