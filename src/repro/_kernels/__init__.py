"""Kernel backend selection: native C extension vs pure-Python fallback.

The engine's innermost scalar loops (CSR frontier expansion, the ≤64-row
scalar join-probe tail, top-k' threshold maintenance, structure-score
accumulation) exist twice: as the pure-Python reference in
:mod:`repro._kernels._pure` and as a C extension in
``repro._kernels._native`` (built by ``pip install``; optional, the
build may fail or be skipped).  Both implement the same functions with
the same signatures and byte-identical outputs
(``tests/test_native_kernels.py``).

Call sites import the module-level :data:`kernels` namespace and read
its attributes at call time — :func:`select` re-binds them, so a
:class:`~repro.core.config.GQBEConfig` can switch backends per system
(the facade re-asserts its mode on every query entry, keeping two
systems with different modes in one process each on their own backend).

Selection order:

* ``GQBE_FORCE_PURE=1`` (env) — pure, unconditionally.  The CI seam
  proving the fallback contract: it wins even over ``mode="on"``.
* mode ``"off"`` — pure.
* mode ``"on"`` — native; raises
  :class:`~repro.exceptions.EvaluationError` if the extension is
  missing or failed to import.
* mode ``"auto"`` (default) — ``GQBE_NATIVE_KERNELS`` (env, same three
  values) decides; unset/``auto`` means native when importable, else
  pure.
"""

from __future__ import annotations

import importlib
import os

from repro._kernels import _pure

MODES = ("auto", "on", "off")

_native_module = None
_native_error: BaseException | None = None
_native_probed = False


def _probe_native():
    """Import the C extension once; remember the failure if it has one."""
    global _native_module, _native_error, _native_probed
    if not _native_probed:
        _native_probed = True
        try:
            # import_module, not ``from repro._kernels import _native``:
            # a from-import resolves against this package's attributes
            # first and would find module globals instead of the .so.
            _native_module = importlib.import_module("repro._kernels._native")
        except ImportError as error:
            _native_error = error
    return _native_module


def native_available() -> bool:
    """Whether the compiled extension imports on this interpreter."""
    return _probe_native() is not None


def native_import_error() -> BaseException | None:
    """Why the extension is unavailable (``None`` when it imported)."""
    _probe_native()
    return _native_error


class _KernelNamespace:
    """The active backend's kernel functions, re-bound by :func:`select`."""

    __slots__ = (
        "backend",
        "bfs_expand",
        "csr_neighbors",
        "probe_tail",
        "filter_pairs",
        "accumulate_structure",
        "accumulate_content",
        "TopKThreshold",
    )

    def _bind(self, module, backend: str) -> None:
        self.backend = backend
        self.bfs_expand = module.bfs_expand
        self.csr_neighbors = module.csr_neighbors
        self.probe_tail = module.probe_tail
        self.filter_pairs = module.filter_pairs
        self.accumulate_structure = module.accumulate_structure
        self.accumulate_content = module.accumulate_content
        self.TopKThreshold = module.TopKThreshold


#: The active backend.  Read attributes at call time (never ``from
#: kernels import bfs_expand``) so a later :func:`select` takes effect.
kernels = _KernelNamespace()


def _force_pure() -> bool:
    return os.environ.get("GQBE_FORCE_PURE", "") == "1"


def resolve_backend(mode: str = "auto") -> str:
    """The backend name ``mode`` resolves to under the current env."""
    if mode not in MODES:
        from repro.exceptions import EvaluationError

        raise EvaluationError(
            f"native_kernels must be one of {MODES}, got {mode!r}"
        )
    if _force_pure():
        return "pure"
    if mode == "auto":
        mode = os.environ.get("GQBE_NATIVE_KERNELS", "auto")
        if mode not in MODES:
            mode = "auto"
    if mode == "off":
        return "pure"
    if mode == "on":
        if not native_available():
            from repro.exceptions import EvaluationError

            raise EvaluationError(
                "native_kernels='on' but the compiled extension "
                "repro._kernels._native is unavailable "
                f"({native_import_error()}); build it (pip install -e .) "
                "or use native_kernels='auto'"
            )
        return "native"
    return "native" if native_available() else "pure"


def select(mode: str = "auto") -> str:
    """Bind :data:`kernels` to the backend ``mode`` resolves to.

    Idempotent and cheap when the backend does not change; returns the
    active backend name (``"native"`` or ``"pure"``).
    """
    backend = resolve_backend(mode)
    if kernels.backend != backend:
        module = _probe_native() if backend == "native" else _pure
        kernels._bind(module, backend)
    return backend


kernels._bind(_pure, "pure")
select("auto")
