"""Experiment harness: regenerates every table and figure of Sec. VI.

The harness wires the datasets, the GQBE system, the NESS and Baseline
comparators and the metrics together.  Each ``table*_...`` / ``figure*_...``
method returns plain data structures (lists of dictionaries) that the
benchmark scripts print in the same layout as the paper, and that tests can
assert qualitative properties on (who wins, by roughly what factor).

Scaling note: the harness runs against the synthetic datasets, whose
ground-truth tables are one to two orders of magnitude smaller than the
Freebase tables behind the original queries.  The stage-one oversampling
``k'`` is therefore scaled down (default 40 instead of 100) and the MQG size
is slightly smaller (default 10 instead of 15) so the Baseline's exhaustive
lattice evaluation stays tractable; both are configurable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.breadth_first import BreadthFirstExplorer
from repro.baselines.ness import NESSMatcher, NESSResult
from repro.core.answer import QueryResult
from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.datasets.workloads import (
    Query,
    Workload,
    build_dbpedia_workload,
    build_freebase_workload,
)
from repro.evaluation.metrics import (
    average_precision,
    ndcg_at_k,
    precision_at_k,
)
from repro.evaluation.user_study import SimulatedWorkerPool, pcc_for_ranking
from repro.lattice.query_graph import LatticeSpace

#: Queries used by the paper for the multi-tuple study (Table V): the seven
#: Freebase queries that did not reach perfect P@25 with a single tuple.
MULTI_TUPLE_QUERY_IDS = ("F1", "F2", "F4", "F6", "F8", "F9", "F17")

#: Queries used in the paper's Table II case study.
CASE_STUDY_QUERY_IDS = ("F1", "F18", "F19")


@dataclass
class HarnessConfig:
    """Knobs of the experiment harness."""

    scale: float = 1.0
    freebase_seed: int = 7
    dbpedia_seed: int = 11
    mqg_size: int = 10
    k_prime: int = 25
    d: int = 2
    node_budget: int | None = 1500
    max_join_rows: int | None = 100_000
    worker_noise: float = 0.15
    worker_seed: int = 17
    workers_per_pair: int = 20
    user_study_pairs: int = 50
    native_kernels: str = "auto"

    def gqbe_config(self) -> GQBEConfig:
        """The GQBE configuration implied by the harness settings."""
        return GQBEConfig(
            d=self.d,
            mqg_size=self.mqg_size,
            k_prime=self.k_prime,
            node_budget=self.node_budget,
            max_join_rows=self.max_join_rows,
            native_kernels=self.native_kernels,
        )


@dataclass
class _SystemBundle:
    """One dataset with its GQBE instance and NESS matcher."""

    workload: Workload
    gqbe: GQBE
    ness: NESSMatcher
    query_cache: dict[tuple[str, int], QueryResult] = field(default_factory=dict)
    ness_cache: dict[tuple[str, int], NESSResult] = field(default_factory=dict)
    #: Discovered MQGs per query tuple.  Discovery is deterministic, and
    #: the paper feeds the *same* MQG to GQBE, NESS and the Baseline, so
    #: the comparators share one discovery instead of re-running it.
    mqg_cache: dict[tuple[str, ...], object] = field(default_factory=dict)


class ExperimentHarness:
    """Runs the paper's experiments against the synthetic datasets."""

    def __init__(self, config: HarnessConfig | None = None) -> None:
        self.config = config or HarnessConfig()
        self._bundles: dict[str, _SystemBundle] = {}

    # ------------------------------------------------------------------
    # dataset / system management
    # ------------------------------------------------------------------
    def _bundle(self, dataset: str) -> _SystemBundle:
        if dataset not in self._bundles:
            if dataset == "freebase":
                workload = build_freebase_workload(
                    seed=self.config.freebase_seed, scale=self.config.scale
                )
            elif dataset == "dbpedia":
                workload = build_dbpedia_workload(
                    seed=self.config.dbpedia_seed, scale=self.config.scale
                )
            else:
                raise ValueError(f"unknown dataset {dataset!r}")
            gqbe = GQBE(workload.dataset.graph, config=self.config.gqbe_config())
            ness = NESSMatcher(workload.dataset.graph)
            self._bundles[dataset] = _SystemBundle(
                workload=workload, gqbe=gqbe, ness=ness
            )
        return self._bundles[dataset]

    def freebase_workload(self) -> Workload:
        """The Freebase-like workload (built lazily, cached)."""
        return self._bundle("freebase").workload

    def dbpedia_workload(self) -> Workload:
        """The DBpedia-like workload (built lazily, cached)."""
        return self._bundle("dbpedia").workload

    # ------------------------------------------------------------------
    # cached per-query runs
    # ------------------------------------------------------------------
    def _mqg(self, dataset: str, query_tuple: tuple[str, ...]):
        """Discover (or fetch the cached) MQG for one example tuple."""
        bundle = self._bundle(dataset)
        mqg = bundle.mqg_cache.get(query_tuple)
        if mqg is None:
            mqg = bundle.gqbe.discover_query_graph(query_tuple)
            bundle.mqg_cache[query_tuple] = mqg
        return mqg

    def run_gqbe(self, dataset: str, query_id: str, k: int = 30) -> QueryResult:
        """Run (or fetch the cached) GQBE query for ``query_id``."""
        bundle = self._bundle(dataset)
        key = (query_id, k)
        if key not in bundle.query_cache:
            query = bundle.workload.query(query_id)
            bundle.query_cache[key] = bundle.gqbe.query(query.query_tuple, k=k)
        return bundle.query_cache[key]

    def run_ness(self, dataset: str, query_id: str, k: int = 30) -> NESSResult:
        """Run (or fetch the cached) NESS query for ``query_id``."""
        bundle = self._bundle(dataset)
        key = (query_id, k)
        if key not in bundle.ness_cache:
            query = bundle.workload.query(query_id)
            mqg = self._mqg(dataset, query.query_tuple)
            bundle.ness_cache[key] = bundle.ness.query(
                mqg, k=k, excluded_tuples={query.query_tuple}
            )
        return bundle.ness_cache[key]

    def run_baseline(self, dataset: str, query_id: str, k: int = 30):
        """Run the breadth-first Baseline for ``query_id`` (not cached)."""
        bundle = self._bundle(dataset)
        query = bundle.workload.query(query_id)
        mqg = self._mqg(dataset, query.query_tuple)
        explorer = BreadthFirstExplorer(
            LatticeSpace(mqg),
            bundle.gqbe.store,
            k=k,
            excluded_tuples={query.query_tuple},
            max_rows=self.config.max_join_rows,
            node_budget=self.config.node_budget,
        )
        return explorer.run()

    # ------------------------------------------------------------------
    # Table I — queries and ground-truth table sizes
    # ------------------------------------------------------------------
    def table1_workload_summary(self) -> list[dict]:
        """Query id, example tuple and ground-truth table size (Table I)."""
        rows: list[dict] = []
        for dataset in ("freebase", "dbpedia"):
            for query in self._bundle(dataset).workload.queries:
                rows.append(
                    {
                        "query": query.query_id,
                        "dataset": dataset,
                        "tuple": query.query_tuple,
                        "table_size": query.ground_truth_size,
                    }
                )
        return rows

    # ------------------------------------------------------------------
    # Table II — case study: top-3 answers for selected queries
    # ------------------------------------------------------------------
    def table2_case_study(
        self, query_ids: tuple[str, ...] = CASE_STUDY_QUERY_IDS, k: int = 3
    ) -> dict[str, list[tuple[str, ...]]]:
        """Top-k answer tuples for the case-study queries (Table II)."""
        results: dict[str, list[tuple[str, ...]]] = {}
        for query_id in query_ids:
            result = self.run_gqbe("freebase", query_id, k=30)
            results[query_id] = result.answer_tuples()[:k]
        return results

    # ------------------------------------------------------------------
    # Fig. 13 — accuracy of GQBE vs NESS on the Freebase workload
    # ------------------------------------------------------------------
    def figure13_accuracy(
        self, k_values: tuple[int, ...] = (10, 15, 20, 25)
    ) -> list[dict]:
        """P@k / MAP / nDCG of GQBE and NESS averaged over F-queries."""
        workload = self.freebase_workload()
        rows: list[dict] = []
        for k in k_values:
            gqbe_p, gqbe_map, gqbe_ndcg = [], [], []
            ness_p, ness_map, ness_ndcg = [], [], []
            for query in workload.queries:
                truth = query.ground_truth
                gqbe_answers = self.run_gqbe("freebase", query.query_id).answer_tuples()
                ness_answers = self.run_ness("freebase", query.query_id).answer_tuples()
                gqbe_p.append(precision_at_k(gqbe_answers, truth, k))
                gqbe_map.append(average_precision(gqbe_answers, truth, k))
                gqbe_ndcg.append(ndcg_at_k(gqbe_answers, truth, k))
                ness_p.append(precision_at_k(ness_answers, truth, k))
                ness_map.append(average_precision(ness_answers, truth, k))
                ness_ndcg.append(ndcg_at_k(ness_answers, truth, k))
            count = len(workload.queries)
            rows.append(
                {
                    "k": k,
                    "gqbe_p_at_k": sum(gqbe_p) / count,
                    "ness_p_at_k": sum(ness_p) / count,
                    "gqbe_map": sum(gqbe_map) / count,
                    "ness_map": sum(ness_map) / count,
                    "gqbe_ndcg": sum(gqbe_ndcg) / count,
                    "ness_ndcg": sum(ness_ndcg) / count,
                }
            )
        return rows

    # ------------------------------------------------------------------
    # Table III — per-query accuracy of GQBE on the DBpedia workload
    # ------------------------------------------------------------------
    def table3_dbpedia_accuracy(self, k: int = 10) -> list[dict]:
        """P@k / nDCG / AvgP for each DBpedia query (Table III)."""
        workload = self.dbpedia_workload()
        rows: list[dict] = []
        for query in workload.queries:
            answers = self.run_gqbe("dbpedia", query.query_id).answer_tuples()
            rows.append(
                {
                    "query": query.query_id,
                    "p_at_k": precision_at_k(answers, query.ground_truth, k),
                    "ndcg": ndcg_at_k(answers, query.ground_truth, k),
                    "avg_p": average_precision(answers, query.ground_truth, k),
                }
            )
        return rows

    # ------------------------------------------------------------------
    # Table IV — simulated user study (PCC per Freebase query)
    # ------------------------------------------------------------------
    def table4_user_study(self, k: int = 30) -> list[dict]:
        """PCC between GQBE's ranking and simulated workers (Table IV)."""
        workload = self.freebase_workload()
        rows: list[dict] = []
        for query in workload.queries:
            answers = self.run_gqbe("freebase", query.query_id, k=k).answer_tuples()[:k]
            pool = SimulatedWorkerPool(
                workers_per_pair=self.config.workers_per_pair,
                noise=self.config.worker_noise,
                seed=self.config.worker_seed,
            )
            pcc = pcc_for_ranking(
                answers,
                query.ground_truth,
                pool=pool,
                num_pairs=self.config.user_study_pairs,
            )
            rows.append({"query": query.query_id, "pcc": pcc})
        return rows

    # ------------------------------------------------------------------
    # Table V — multi-tuple accuracy
    # ------------------------------------------------------------------
    def table5_multi_tuple(
        self,
        query_ids: tuple[str, ...] = MULTI_TUPLE_QUERY_IDS,
        k: int = 25,
    ) -> list[dict]:
        """Accuracy of single tuples vs merged multi-tuple MQGs (Table V)."""
        bundle = self._bundle("freebase")
        rows: list[dict] = []
        for query_id in query_ids:
            query = bundle.workload.query(query_id)
            extended = query.with_extra_tuples(2)
            tuples = extended.query_tuples
            truth = extended.ground_truth
            row: dict = {"query": query_id}
            for label, example in (("tuple1", tuples[0]), ("tuple2", tuples[1]), ("tuple3", tuples[2])):
                result = bundle.gqbe.query(example, k=k)
                answers = [a for a in result.answer_tuples() if a not in set(tuples)]
                row[f"{label}_p_at_k"] = precision_at_k(answers, truth, k)
                row[f"{label}_ndcg"] = ndcg_at_k(answers, truth, k)
                row[f"{label}_avg_p"] = average_precision(answers, truth, k)
            for label, examples in (
                ("combined12", tuples[:2]),
                ("combined123", tuples[:3]),
            ):
                result = bundle.gqbe.query_multi(list(examples), k=k)
                answers = [a for a in result.answer_tuples() if a not in set(tuples)]
                row[f"{label}_p_at_k"] = precision_at_k(answers, truth, k)
                row[f"{label}_ndcg"] = ndcg_at_k(answers, truth, k)
                row[f"{label}_avg_p"] = average_precision(answers, truth, k)
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    # Fig. 14 / Fig. 15 — efficiency: query time and lattice nodes
    # ------------------------------------------------------------------
    def figure14_15_efficiency(self, k: int = 10) -> list[dict]:
        """Per-query processing time and lattice nodes for GQBE / NESS / Baseline.

        Matches the paper's top-k retrieval scenario: the stage-one
        oversampling is set to ``k`` itself so the early-termination
        criterion (Theorem 4) is exercised, which is where GQBE's advantage
        over the exhaustive Baseline comes from.
        """
        bundle = self._bundle("freebase")
        workload = bundle.workload
        rows: list[dict] = []
        for query in workload.queries:
            # Fig. 14 plots *processing* time, so the (deterministic,
            # cached) MQG discovery is shared with NESS and the Baseline
            # and kept out of the measured section.
            mqg = self._mqg("freebase", query.query_tuple)
            gqbe_result = bundle.gqbe.explore_mqg(
                mqg, k=k, excluded_tuples={query.query_tuple}, k_prime=k
            )

            started = time.perf_counter()
            ness_result = self.run_ness("freebase", query.query_id, k=k)
            ness_seconds = ness_result.statistics.elapsed_seconds or (
                time.perf_counter() - started
            )

            baseline_result = self.run_baseline("freebase", query.query_id, k=k)
            rows.append(
                {
                    "query": query.query_id,
                    "mqg_edges": mqg.num_edges,
                    "gqbe_seconds": gqbe_result.statistics.elapsed_seconds,
                    "ness_seconds": ness_seconds,
                    "baseline_seconds": baseline_result.statistics.elapsed_seconds,
                    "gqbe_nodes_evaluated": gqbe_result.statistics.nodes_evaluated,
                    "baseline_nodes_evaluated": baseline_result.statistics.nodes_evaluated,
                }
            )
        return rows

    # ------------------------------------------------------------------
    # Table VI / Fig. 16 — MQG discovery & merge time, 2-tuple query time
    # ------------------------------------------------------------------
    def table6_fig16_multituple_efficiency(
        self,
        query_ids: tuple[str, ...] | None = None,
        k: int = 25,
    ) -> list[dict]:
        """Per-query MQG discovery/merge times and combined vs separate query time."""
        bundle = self._bundle("freebase")
        workload = bundle.workload
        ids = query_ids or tuple(
            q.query_id for q in workload.queries if q.ground_truth_size >= 1
        )
        rows: list[dict] = []
        for query_id in ids:
            query = workload.query(query_id)
            if query.ground_truth_size < 1:
                continue
            extended = query.with_extra_tuples(1)
            tuple1, tuple2 = extended.query_tuples

            result1 = bundle.gqbe.query(tuple1, k=k)
            result2 = bundle.gqbe.query(tuple2, k=k)
            combined = bundle.gqbe.query_multi([tuple1, tuple2], k=k)

            rows.append(
                {
                    "query": query_id,
                    "mqg1_seconds": result1.discovery_seconds,
                    "mqg2_seconds": result2.discovery_seconds,
                    "merge_seconds": combined.merge_seconds,
                    "combined_processing_seconds": combined.processing_seconds,
                    "separate_processing_seconds": (
                        result1.processing_seconds + result2.processing_seconds
                    ),
                }
            )
        return rows
