"""Accuracy measures used in the paper's evaluation (Sec. VI-A/B).

* **Precision-at-k** — fraction of the top-k results that belong to the
  ground truth.
* **Average precision / MAP** — the paper's variant normalizes by the size
  of the ground truth (not by the number of relevant results retrieved),
  which is why its absolute MAP values look low when the ground-truth
  tables are much larger than k.
* **nDCG** — discounted cumulative gain of the binary relevance vector,
  normalized by the ideal ranking of the same top-k results.
* **Pearson correlation coefficient (PCC)** — used for the user study:
  correlation between GQBE's pairwise rank differences and the workers'
  pairwise vote differences.  Undefined (``None``) when either list is
  constant, as the paper notes for F12/F13.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def _relevance(
    results: Sequence[tuple[str, ...]], ground_truth: Iterable[tuple[str, ...]]
) -> list[int]:
    truth = {tuple(row) for row in ground_truth}
    return [1 if tuple(result) in truth else 0 for result in results]


def precision_at_k(
    results: Sequence[tuple[str, ...]],
    ground_truth: Iterable[tuple[str, ...]],
    k: int,
) -> float:
    """P@k: fraction of the top-k results that are in the ground truth."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    relevance = _relevance(results[:k], ground_truth)
    if not relevance:
        return 0.0
    return sum(relevance) / k


def average_precision(
    results: Sequence[tuple[str, ...]],
    ground_truth: Sequence[tuple[str, ...]],
    k: int,
) -> float:
    """AvgP as defined in the paper: sum of P@i · rel_i over the ground-truth size."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    truth = {tuple(row) for row in ground_truth}
    if not truth:
        return 0.0
    top = [tuple(result) for result in results[:k]]
    cumulative = 0.0
    hits = 0
    for i, result in enumerate(top, start=1):
        if result in truth:
            hits += 1
            cumulative += hits / i
    return cumulative / len(truth)


def mean_average_precision(
    runs: Sequence[tuple[Sequence[tuple[str, ...]], Sequence[tuple[str, ...]]]],
    k: int,
) -> float:
    """MAP: mean AvgP over ``(results, ground_truth)`` pairs."""
    if not runs:
        return 0.0
    return sum(average_precision(results, truth, k) for results, truth in runs) / len(runs)


def dcg_at_k(relevance: Sequence[float], k: int) -> float:
    """DCG_k = rel_1 + Σ_{i≥2} rel_i / log2(i)."""
    top = list(relevance[:k])
    if not top:
        return 0.0
    total = float(top[0])
    for i, rel in enumerate(top[1:], start=2):
        total += rel / math.log2(i)
    return total


def ndcg_at_k(
    results: Sequence[tuple[str, ...]],
    ground_truth: Iterable[tuple[str, ...]],
    k: int,
) -> float:
    """nDCG_k of the binary relevance vector of the top-k results."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    relevance = _relevance(results[:k], ground_truth)
    ideal = sorted(relevance, reverse=True)
    ideal_dcg = dcg_at_k(ideal, k)
    if ideal_dcg == 0.0:
        return 0.0
    return dcg_at_k(relevance, k) / ideal_dcg


def pearson_correlation(
    xs: Sequence[float], ys: Sequence[float]
) -> float | None:
    """PCC between two equal-length value lists; ``None`` when undefined."""
    if len(xs) != len(ys):
        raise ValueError(
            f"value lists must have equal length, got {len(xs)} and {len(ys)}"
        )
    n = len(xs)
    if n == 0:
        return None
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0.0 or var_y == 0.0:
        return None
    covariance = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return covariance / math.sqrt(var_x * var_y)


def correlation_strength(pcc: float | None) -> str:
    """Cohen's qualitative bands used by the paper to discuss Table IV."""
    if pcc is None:
        return "undefined"
    if pcc >= 0.5:
        return "strong"
    if pcc >= 0.3:
        return "medium"
    if pcc >= 0.1:
        return "small"
    return "none"
