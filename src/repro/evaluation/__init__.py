"""Evaluation: accuracy metrics, simulated user study, experiment harness.

* :mod:`repro.evaluation.metrics` — P@k, average precision / MAP, nDCG and
  the Pearson correlation coefficient, as defined in Sec. VI.
* :mod:`repro.evaluation.user_study` — a simulated Mechanical-Turk worker
  pool that produces the pairwise preferences behind Table IV's PCC values.
* :mod:`repro.evaluation.harness` — runs GQBE / NESS / Baseline over the
  workloads and regenerates every table and figure of the evaluation.
* :mod:`repro.evaluation.reporting` — plain-text rendering of the tables.
"""

from repro.evaluation.metrics import (
    average_precision,
    mean_average_precision,
    ndcg_at_k,
    pearson_correlation,
    precision_at_k,
)
from repro.evaluation.user_study import SimulatedWorkerPool, pcc_for_ranking
from repro.evaluation.harness import ExperimentHarness

__all__ = [
    "precision_at_k",
    "average_precision",
    "mean_average_precision",
    "ndcg_at_k",
    "pearson_correlation",
    "SimulatedWorkerPool",
    "pcc_for_ranking",
    "ExperimentHarness",
]
