"""Plain-text rendering of experiment results (tables and figure series).

The benchmark scripts use these helpers to print the same rows/series the
paper reports, so a reader can compare shapes side by side with the PDF.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    float_digits: int = 3,
) -> str:
    """Render a list of dictionaries as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns = list(columns) if columns else list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        if value is None:
            return "undefined"
        if isinstance(value, (tuple, list)):
            return "<" + ", ".join(str(v) for v in value) + ">"
        return str(value)

    rendered = [[render(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines)


def format_answer_list(
    query_id: str, answers: Sequence[tuple[str, ...]]
) -> str:
    """Render a case-study entry (Table II style)."""
    lines = [f"{query_id}:"]
    for rank, answer in enumerate(answers, start=1):
        rendered = ", ".join(answer)
        lines.append(f"  {rank}. <{rendered}>")
    return "\n".join(lines)


def summarize_ratio(label: str, numerator: float, denominator: float) -> str:
    """One-line 'A is Nx better/worse than B' summary used by benches."""
    if denominator == 0:
        return f"{label}: denominator is zero"
    ratio = numerator / denominator
    return f"{label}: {ratio:.2f}x"
