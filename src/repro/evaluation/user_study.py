"""Simulated Mechanical-Turk user study (Sec. VI-B, Table IV).

The paper crowdsourced pairwise preferences: for each query, 50 random
pairs of GQBE's top-30 answers were shown to 20 workers each, and the PCC
between GQBE's rank differences and the workers' vote differences was
reported.

We cannot crowdsource offline, so :class:`SimulatedWorkerPool` stands in
for the workers.  Each simulated worker prefers the answer that is closer
to the ground truth (in the ground truth beats not in it; ties are broken
by a latent per-answer quality score), and flips its preference with a
configurable noise probability.  The PCC computation that consumes the
votes is exactly the paper's: ``X`` holds rank differences, ``Y`` holds
vote-count differences, one entry per sampled pair.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from repro.evaluation.metrics import pearson_correlation


@dataclass
class PairwiseJudgment:
    """One sampled answer pair with the aggregated worker votes."""

    first_rank: int
    second_rank: int
    votes_for_first: int
    votes_for_second: int


class SimulatedWorkerPool:
    """A pool of noisy simulated crowd workers."""

    def __init__(
        self,
        workers_per_pair: int = 20,
        noise: float = 0.15,
        seed: int = 17,
    ) -> None:
        if not 0.0 <= noise <= 1.0:
            raise ValueError(f"noise must be in [0, 1], got {noise}")
        self.workers_per_pair = workers_per_pair
        self.noise = noise
        self._rng = random.Random(seed)

    def _latent_quality(self, answer: tuple[str, ...], in_truth: bool) -> float:
        base = 1.0 if in_truth else 0.0
        jitter = self._rng.random() * 0.5
        return base + jitter

    def judge_pairs(
        self,
        ranked_answers: Sequence[tuple[str, ...]],
        ground_truth: Sequence[tuple[str, ...]],
        num_pairs: int = 50,
    ) -> list[PairwiseJudgment]:
        """Sample answer pairs and collect simulated worker votes."""
        if len(ranked_answers) < 2:
            return []
        truth = {tuple(row) for row in ground_truth}
        qualities = {
            answer: self._latent_quality(answer, answer in truth)
            for answer in ranked_answers
        }
        judgments: list[PairwiseJudgment] = []
        indexes = list(range(len(ranked_answers)))
        for _ in range(num_pairs):
            first_index, second_index = self._rng.sample(indexes, 2)
            first = ranked_answers[first_index]
            second = ranked_answers[second_index]
            votes_first = 0
            votes_second = 0
            for _ in range(self.workers_per_pair):
                prefers_first = qualities[first] >= qualities[second]
                if self._rng.random() < self.noise:
                    prefers_first = not prefers_first
                if prefers_first:
                    votes_first += 1
                else:
                    votes_second += 1
            judgments.append(
                PairwiseJudgment(
                    first_rank=first_index + 1,
                    second_rank=second_index + 1,
                    votes_for_first=votes_first,
                    votes_for_second=votes_second,
                )
            )
        return judgments


def pcc_for_ranking(
    ranked_answers: Sequence[tuple[str, ...]],
    ground_truth: Sequence[tuple[str, ...]],
    pool: SimulatedWorkerPool | None = None,
    num_pairs: int = 50,
) -> float | None:
    """PCC between the ranking and simulated worker preferences (Table IV).

    ``X`` is the rank difference of each sampled pair (second − first, so a
    positive value means the first answer is ranked better), ``Y`` the
    difference in worker votes favouring the first answer.  ``None`` is
    returned when the PCC is undefined (e.g. all answers tie), matching the
    paper's treatment of F12/F13.
    """
    pool = pool or SimulatedWorkerPool()
    judgments = pool.judge_pairs(ranked_answers, ground_truth, num_pairs=num_pairs)
    if not judgments:
        return None
    xs = [float(j.second_rank - j.first_rank) for j in judgments]
    ys = [float(j.votes_for_first - j.votes_for_second) for j in judgments]
    return pearson_correlation(xs, ys)
