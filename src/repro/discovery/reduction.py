"""Unimportant-edge removal: the reduced neighborhood graph (Sec. III-C).

The neighborhood graph ``H_t`` can contain many edges that clearly do not
matter for the query — e.g. the thousands of ``education`` edges into
*Stanford* from people unrelated to the query tuple.  GQBE removes them
before running MQG discovery.

For a node ``v`` of ``H_t`` the incident edges are partitioned into:

* ``IE(v)`` — *important* edges: those lying on an undirected path of
  length ≤ d between ``v`` and some query entity.  We implement this with
  the distance rule: an edge incident on ``v`` whose other endpoint is
  within ``d − 1`` undirected hops of a query entity (distance measured from
  the query entities over the whole neighborhood graph) is important from
  ``v``'s perspective.
* ``UE(v)`` — *unimportant* edges: not in ``IE(v)`` but sharing a label and
  an orientation (both incoming to ``v`` or both outgoing from ``v``) with
  some edge of ``IE(v)``.
* the rest, which is neither important nor unimportant.

An edge is removed when it is unimportant from the perspective of either of
its endpoints.  Theorem 2 of the paper guarantees that after removal a
weakly connected component containing all query entities still exists; the
*reduced neighborhood graph* is that component.
"""

from __future__ import annotations

from repro.exceptions import DiscoveryError
from repro.graph.knowledge_graph import Edge, KnowledgeGraph
from repro.graph.neighborhood import NeighborhoodGraph


def _important_edges(
    neighborhood: NeighborhoodGraph, node: str
) -> tuple[set[Edge], list[Edge]]:
    """Return (IE(node), all incident edges) for ``node`` in ``H_t``."""
    graph = neighborhood.graph
    d = neighborhood.d
    distances = neighborhood.distances
    incident = graph.incident_edges(node)
    important: set[Edge] = set()
    for edge in incident:
        other = edge.other(node)
        other_distance = distances.get(other)
        if other_distance is not None and other_distance <= d - 1:
            important.add(edge)
    return important, incident


def _unimportant_edges(
    neighborhood: NeighborhoodGraph, node: str
) -> set[Edge]:
    """UE(node): same-label, same-orientation siblings of important edges."""
    important, incident = _important_edges(neighborhood, node)
    if not important:
        return set()
    outgoing_labels = {e.label for e in important if e.subject == node}
    incoming_labels = {e.label for e in important if e.object == node}
    unimportant: set[Edge] = set()
    for edge in incident:
        if edge in important:
            continue
        if edge.subject == node and edge.label in outgoing_labels:
            unimportant.add(edge)
        elif edge.object == node and edge.label in incoming_labels:
            unimportant.add(edge)
    return unimportant


def _removed_edges(neighborhood: NeighborhoodGraph) -> set[Edge]:
    """Union of UE(v) over all nodes, computed in two passes over the edges.

    Equivalent to running :func:`_unimportant_edges` per node (the
    per-node form is kept above as the executable spec and for tests), but
    without materializing incident-edge lists for every node: pass one
    collects, per node, the labels of its important outgoing/incoming
    edges; pass two flags every non-important edge that shares a label and
    orientation with an important sibling at either endpoint.
    """
    d = neighborhood.d
    distances = neighborhood.distances
    threshold = d - 1
    outgoing_labels: dict[str, set[str]] = {}
    incoming_labels: dict[str, set[str]] = {}
    # Per-edge importance flags in edge-list order (parallel lists instead
    # of an Edge-keyed dict: Edge tuples hash three strings each).
    edges = list(neighborhood.graph.edges)
    subject_flags: list[bool] = []
    object_flags: list[bool] = []

    far = threshold + 1  # sentinel distance: "outside the d-1 ball"
    for subject, label, obj in edges:
        subject_side = distances.get(obj, far) <= threshold
        object_side = distances.get(subject, far) <= threshold
        subject_flags.append(subject_side)
        object_flags.append(object_side)
        if subject_side:
            outgoing_labels.setdefault(subject, set()).add(label)
        if object_side:
            incoming_labels.setdefault(obj, set()).add(label)

    removed: set[Edge] = set()
    empty: set[str] = set()
    for edge, subject_side, object_side in zip(edges, subject_flags, object_flags):
        if not subject_side and edge.label in outgoing_labels.get(edge.subject, empty):
            removed.add(edge)
        elif not object_side and edge.label in incoming_labels.get(edge.object, empty):
            removed.add(edge)
    return removed


def reduce_neighborhood_graph(neighborhood: NeighborhoodGraph) -> NeighborhoodGraph:
    """Remove unimportant edges and return the reduced neighborhood graph.

    The result is the weakly connected component (after removal) that
    contains all query entities; Theorem 2 guarantees it exists.
    """
    graph = neighborhood.graph
    removed = _removed_edges(neighborhood)
    kept = [edge for edge in graph.edges if edge not in removed]

    # Keep only the component containing the query entities, computed over
    # a plain adjacency map (no intermediate KnowledgeGraph build).
    adjacency: dict[str, list[str]] = {}
    for edge in kept:
        adjacency.setdefault(edge.subject, []).append(edge.object)
        adjacency.setdefault(edge.object, []).append(edge.subject)
    entities = neighborhood.query_tuple
    start = entities[0]
    keeper = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for other in adjacency.get(node, ()):
            if other not in keeper:
                keeper.add(other)
                stack.append(other)
    if not all(entity in keeper for entity in entities):
        raise DiscoveryError(
            "reduced neighborhood graph lost the connection between query "
            "entities; this contradicts Theorem 2 and indicates the input "
            "neighborhood graph was not weakly connected to begin with"
        )

    component_graph = KnowledgeGraph()
    for entity in entities:
        component_graph.add_node(entity)
    for edge in kept:
        if edge.subject in keeper and edge.object in keeper:
            component_graph.add_edge_object(edge)

    distances = {
        node: neighborhood.distances[node]
        for node in component_graph.nodes
        if node in neighborhood.distances
    }
    return NeighborhoodGraph(
        graph=component_graph,
        query_tuple=neighborhood.query_tuple,
        d=neighborhood.d,
        distances=distances,
    )
