"""Query graph discovery: from a query tuple to a weighted maximal query graph.

This package implements Section III of the paper:

* :mod:`repro.discovery.weights` — the edge-weighting heuristics
  (inverse edge-label frequency / participation degree, Eq. 2; the
  depth-adjusted weight used for answer scoring, Eq. 8).
* :mod:`repro.discovery.reduction` — the preprocessing step that removes
  *unimportant* edges from the neighborhood graph (Sec. III-C, Theorem 2).
* :mod:`repro.discovery.mqg` — Algorithm 1: divide-and-conquer greedy
  discovery of the maximal query graph (MQG).
* :mod:`repro.discovery.merge` — multi-tuple queries: merging and
  re-weighting several per-tuple MQGs into one (Sec. III-D).
"""

from repro.discovery.merge import merge_maximal_query_graphs
from repro.discovery.mqg import MaximalQueryGraph, discover_maximal_query_graph
from repro.discovery.reduction import reduce_neighborhood_graph
from repro.discovery.weights import (
    discovery_edge_weights,
    edge_depths,
    mqg_edge_weights,
)

__all__ = [
    "MaximalQueryGraph",
    "discover_maximal_query_graph",
    "merge_maximal_query_graphs",
    "reduce_neighborhood_graph",
    "discovery_edge_weights",
    "edge_depths",
    "mqg_edge_weights",
]
