"""Multi-tuple queries: merging and re-weighting per-tuple MQGs (Sec. III-D).

When the user provides several example tuples, GQBE discovers one MQG per
tuple and merges them into a single *merged MQG* that is then evaluated by
the same lattice machinery as a single-tuple query:

1. Each per-tuple MQG ``M_ti`` is turned into a *virtual* MQG ``M'_ti`` by
   replacing its query entities ``v_i1 ... v_in`` with virtual entities
   ``w_1 ... w_n`` (position-wise); non-query nodes keep their identity.
2. The merged MQG is the union of all virtual MQGs: identical vertices and
   identical edges (same label, same endpoints) are merged.
3. The weight of a merged edge is ``c · w_max(e)`` where ``c`` is the number
   of virtual MQGs containing the edge and ``w_max`` its maximum weight
   among them — edges shared by several example tuples become more
   important.
4. If the merged graph exceeds the target size ``r`` it is trimmed with the
   same greedy selection as Algorithm 1.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import DiscoveryError
from repro.graph.knowledge_graph import Edge, KnowledgeGraph
from repro.discovery.mqg import (
    DEFAULT_MQG_SIZE,
    MaximalQueryGraph,
    select_mqg_edges,
)

#: Prefix used for the virtual entities that replace query entities.
VIRTUAL_ENTITY_PREFIX = "__w"


def virtual_entity(position: int) -> str:
    """Name of the virtual entity standing for query-tuple position ``position``."""
    return f"{VIRTUAL_ENTITY_PREFIX}{position + 1}"


def virtualize_mqg(mqg: MaximalQueryGraph) -> tuple[KnowledgeGraph, dict[Edge, float]]:
    """Replace the MQG's query entities with virtual entities.

    Returns the virtual graph and the weight mapping carried over onto the
    renamed edges.
    """
    mapping = {
        entity: virtual_entity(position)
        for position, entity in enumerate(mqg.query_tuple)
    }

    def rename(node: str) -> str:
        return mapping.get(node, node)

    virtual_graph = KnowledgeGraph()
    virtual_weights: dict[Edge, float] = {}
    for node in mqg.graph.nodes:
        virtual_graph.add_node(rename(node))
    for edge in mqg.graph.edges:
        renamed = virtual_graph.add_edge(rename(edge.subject), edge.label, rename(edge.object))
        weight = mqg.edge_weights.get(edge, 0.0)
        # Two distinct edges can collapse onto the same renamed edge (e.g.
        # parallel relationships from different entities); keep the max.
        if renamed not in virtual_weights or weight > virtual_weights[renamed]:
            virtual_weights[renamed] = weight
    return virtual_graph, virtual_weights


def merge_maximal_query_graphs(
    mqgs: Sequence[MaximalQueryGraph],
    r: int = DEFAULT_MQG_SIZE,
) -> MaximalQueryGraph:
    """Merge several per-tuple MQGs into one merged, re-weighted MQG.

    All input MQGs must have query tuples of the same arity.  The merged
    MQG's query tuple consists of the virtual entities ``__w1 ... __wn``.
    """
    if not mqgs:
        raise DiscoveryError("cannot merge an empty list of MQGs")
    arities = {len(mqg.query_tuple) for mqg in mqgs}
    if len(arities) != 1:
        raise DiscoveryError(
            f"all query tuples must have the same arity, got arities {sorted(arities)}"
        )
    arity = arities.pop()
    virtual_tuple = tuple(virtual_entity(i) for i in range(arity))

    if len(mqgs) == 1:
        # Still virtualize so downstream code can treat single- and
        # multi-tuple queries uniformly.
        graph, weights = virtualize_mqg(mqgs[0])
        core = frozenset(
            edge
            for edge in graph.edges
            if _is_core_candidate(edge, virtual_tuple, mqgs[0], graph)
        )
        return MaximalQueryGraph(
            graph=graph,
            query_tuple=virtual_tuple,
            edge_weights=weights,
            core_edges=core,
            discovery_weights=dict(weights),
        )

    merged_graph = KnowledgeGraph()
    presence_counts: dict[Edge, int] = {}
    max_weights: dict[Edge, float] = {}
    for mqg in mqgs:
        virtual_graph, virtual_weights = virtualize_mqg(mqg)
        for node in virtual_graph.nodes:
            merged_graph.add_node(node)
        for edge in virtual_graph.edges:
            merged_graph.add_edge_object(edge)
            presence_counts[edge] = presence_counts.get(edge, 0) + 1
            weight = virtual_weights.get(edge, 0.0)
            if edge not in max_weights or weight > max_weights[edge]:
                max_weights[edge] = weight

    merged_weights = {
        edge: presence_counts[edge] * max_weights[edge] for edge in presence_counts
    }

    # Trim back to the target size with the same greedy machinery if needed.
    if merged_graph.num_edges > r:
        selected, core_selection = select_mqg_edges(
            merged_graph, virtual_tuple, merged_weights, r=r
        )
        trimmed = KnowledgeGraph()
        for entity in virtual_tuple:
            trimmed.add_node(entity)
        for edge in selected:
            trimmed.add_edge_object(edge)
        merged_graph = trimmed
        merged_weights = {edge: merged_weights[edge] for edge in selected}
        core_edges = frozenset(core_selection)
    else:
        _, core_selection = select_mqg_edges(
            merged_graph, virtual_tuple, merged_weights, r=max(merged_graph.num_edges, 1)
        )
        core_edges = frozenset(core_selection)

    return MaximalQueryGraph(
        graph=merged_graph,
        query_tuple=virtual_tuple,
        edge_weights=merged_weights,
        core_edges=core_edges,
        discovery_weights=dict(merged_weights),
    )


def _is_core_candidate(
    edge: Edge,
    virtual_tuple: tuple[str, ...],
    original: MaximalQueryGraph,
    virtual_graph: KnowledgeGraph,
) -> bool:
    """Whether a virtualized edge corresponds to a core edge of the original MQG."""
    mapping = {
        entity: virtual_entity(position)
        for position, entity in enumerate(original.query_tuple)
    }

    def rename(node: str) -> str:
        return mapping.get(node, node)

    for core_edge in original.core_edges:
        renamed = Edge(rename(core_edge.subject), core_edge.label, rename(core_edge.object))
        if renamed == edge:
            return True
    return False
