"""Maximal query graph discovery (Definition 5, Algorithm 1, Theorem 1).

Finding the exact maximum-weight connected subgraph with ``m`` edges that
contains all query entities is NP-hard (Theorem 1 reduces from the
constrained Steiner network problem), so GQBE uses a greedy
divide-and-conquer heuristic:

1. Split the (reduced) neighborhood graph into ``n + 1`` parts for an
   ``n``-entity query tuple: a **core graph** containing the query entities
   and the undirected paths between them, plus one **individual subgraph**
   per query entity containing the nodes that reach the other query entities
   only through it.
2. In each part, consider edges in descending weight order (Eq. 2) and find
   the prefix ``s`` whose top-``s`` edge graph has a weakly connected
   component ``M_s`` containing that part's query entities with edge count
   as close to the per-part budget ``m = r / (n + 1)`` as possible
   (exactly ``m`` if possible, else the largest below, else the smallest
   above).
3. The union of the chosen components is the MQG.  Its edges are then
   re-weighted with the depth-adjusted weight of Eq. 8 for answer scoring.

The returned :class:`MaximalQueryGraph` also remembers which of its edges
belong to the core component, because the minimal query trees of the lattice
(Sec. IV-A) are enumerated from the core.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.exceptions import DisconnectedQueryError, DiscoveryError
from repro.graph.knowledge_graph import Edge, KnowledgeGraph
from repro.graph.neighborhood import NeighborhoodGraph
from repro.graph.statistics import GraphStatistics
from repro.discovery.reduction import reduce_neighborhood_graph
from repro.discovery.weights import discovery_edge_weights, mqg_edge_weights

#: Default MQG size target used throughout the paper's experiments.
DEFAULT_MQG_SIZE = 15


@dataclass
class MaximalQueryGraph:
    """The weighted maximal query graph (MQG) discovered for a query tuple.

    Attributes
    ----------
    graph:
        The MQG itself, a small weakly connected subgraph of the data graph
        (or of the merged virtual graph for multi-tuple queries).
    query_tuple:
        The query entities (or virtual entities ``__w1``, ``__w2``, ... for a
        merged multi-tuple MQG).
    edge_weights:
        Weight per MQG edge used for answer scoring.  For a single-tuple MQG
        this is the depth-adjusted Eq. 8 weight; for a merged MQG it is the
        ``c · w_max`` re-weighting of Sec. III-D.
    core_edges:
        MQG edges that belong to the core component (paths between query
        entities); the minimal query trees are enumerated from these.
    discovery_weights:
        The Eq. 2 weights that drove the greedy selection (kept for
        diagnostics and ablation benchmarks).
    """

    graph: KnowledgeGraph
    query_tuple: tuple[str, ...]
    edge_weights: dict[Edge, float]
    core_edges: frozenset[Edge]
    discovery_weights: dict[Edge, float] = field(default_factory=dict)

    @property
    def num_edges(self) -> int:
        """Number of edges in the MQG."""
        return self.graph.num_edges

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the MQG."""
        return self.graph.num_nodes

    def edges(self) -> list[Edge]:
        """Deterministically ordered list of the MQG's edges."""
        return sorted(self.graph.edges)

    def weight(self, edge: Edge) -> float:
        """Scoring weight of ``edge``."""
        return self.edge_weights[edge]

    def total_weight(self) -> float:
        """Sum of all edge weights (the structure score of the full MQG)."""
        return sum(self.edge_weights.values())

    def incident_count(self, node: str) -> int:
        """|E(node)| within the MQG — used by the content score (Eq. 6)."""
        return self.graph.degree(node)


# ----------------------------------------------------------------------
# Partitioning the neighborhood graph (divide step)
# ----------------------------------------------------------------------
def _individual_node_sets(
    graph: KnowledgeGraph, query_tuple: Sequence[str]
) -> dict[str, set[str]]:
    """Nodes that reach the *other* query entities only through each entity.

    For entity ``v_i`` this is the set of nodes that, once ``v_i`` is
    removed from the graph, can no longer reach any other query entity.
    For a single-entity tuple every other node qualifies.
    """
    entities = list(query_tuple)
    result: dict[str, set[str]] = {}
    for entity in entities:
        others = [e for e in entities if e != entity]
        # Undirected BFS from the other query entities avoiding `entity`.
        reachable: set[str] = set()
        frontier: list[str] = []
        for other in others:
            if other not in reachable:
                reachable.add(other)
                frontier.append(other)
        while frontier:
            node = frontier.pop()
            for neighbor in graph.neighbors(node):
                if neighbor == entity or neighbor in reachable:
                    continue
                reachable.add(neighbor)
                frontier.append(neighbor)
        exclusive = {
            node
            for node in graph.nodes
            if node != entity and node not in reachable
        }
        result[entity] = exclusive
    return result


def _partition_edges(
    graph: KnowledgeGraph, query_tuple: Sequence[str]
) -> tuple[set[Edge], dict[str, set[Edge]]]:
    """Split the graph's edges into core edges and per-entity edges."""
    exclusive_nodes = _individual_node_sets(graph, query_tuple)
    individual_edges: dict[str, set[Edge]] = {entity: set() for entity in query_tuple}
    core_edges: set[Edge] = set()
    for edge in graph.edges:
        owner: str | None = None
        for entity, nodes in exclusive_nodes.items():
            if edge.subject in nodes or edge.object in nodes:
                owner = entity
                break
        if owner is None:
            core_edges.add(edge)
        else:
            individual_edges[owner].add(edge)
    return core_edges, individual_edges


# ----------------------------------------------------------------------
# Greedy component selection (conquer step)
# ----------------------------------------------------------------------
class _UnionFind:
    """Incremental union-find over node names with per-component edge counts.

    The structure behind the Alg. 1 prefix scan of :func:`_select_component`
    (grow components edge by edge, never rebuild) — also reused by
    :func:`_trim_component`'s reverse sweeps.  ``find`` uses path halving;
    unions attach the smaller component (by edge count) under the larger.
    """

    __slots__ = ("_parent", "_edge_counts")

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}
        self._edge_counts: dict[str, int] = {}

    def find(self, node: str) -> str:
        parent = self._parent
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def add_edge(self, subject: str, obj: str) -> None:
        """Add one edge, creating endpoints and merging components."""
        parent = self._parent
        edge_counts = self._edge_counts
        if subject not in parent:
            parent[subject] = subject
            edge_counts[subject] = 0
        if obj not in parent:
            parent[obj] = obj
            edge_counts[obj] = 0
        subject_root = self.find(subject)
        object_root = self.find(obj)
        if subject_root == object_root:
            edge_counts[subject_root] += 1
        else:
            if edge_counts[subject_root] < edge_counts[object_root]:
                subject_root, object_root = object_root, subject_root
            parent[object_root] = subject_root
            edge_counts[subject_root] += edge_counts[object_root] + 1

    def component_edges(self, root: str) -> int:
        """Edge count of the component rooted at ``root``."""
        return self._edge_counts[root]

    def connected_root(self, nodes: Iterable[str]) -> str | None:
        """The common component root of ``nodes``, or ``None``.

        ``None`` means some node is absent (isolated) or the nodes span
        multiple components — the same "not connected here" answer
        :func:`_component_containing` gives.
        """
        root: str | None = None
        for node in nodes:
            if node not in self._parent:
                return None
            node_root = self.find(node)
            if root is None:
                root = node_root
            elif node_root != root:
                return None
        return root


def _component_containing(
    edges: Sequence[Edge], required: set[str]
) -> tuple[set[Edge], bool]:
    """Weakly connected component (as an edge set) containing ``required``.

    Returns ``(component_edges, exists)``.  ``exists`` is False when the
    required nodes are missing or split across components.
    """
    adjacency: dict[str, list[Edge]] = {}
    for edge in edges:
        adjacency.setdefault(edge.subject, []).append(edge)
        adjacency.setdefault(edge.object, []).append(edge)
    for node in required:
        if node not in adjacency:
            return set(), False

    start = next(iter(required))
    seen_nodes = {start}
    component: set[Edge] = set()
    stack = [start]
    while stack:
        node = stack.pop()
        for edge in adjacency.get(node, ()):
            component.add(edge)
            other = edge.other(node)
            if other not in seen_nodes:
                seen_nodes.add(other)
                stack.append(other)
    if not required <= seen_nodes:
        return set(), False
    return component, True


def _trim_component(
    component: set[Edge],
    required: set[str],
    weights: Mapping[Edge, float],
    target: int,
) -> set[Edge]:
    """Shrink a too-large component back towards ``target`` edges.

    Low-weight edges are removed greedily as long as the remaining edges
    still form a weakly connected graph containing every ``required`` node
    (removals that disconnect a fragment from the required nodes drop the
    whole fragment).  This keeps the MQG close to the requested size even
    when the prefix component found by the greedy scan jumps far past the
    target (which happens around hub entities such as popular awards).

    The naive greedy rebuilds the required component per removed edge
    (quadratic, with a sort per removal on top).  This implementation
    produces the *same* result with reverse union-find sweeps: removing
    the ascending-weight prefix ``ordered[:s]`` leaves the suffix
    ``ordered[s:]``, so adding edges in reverse order yields, per ``s``,
    both the connectivity of the required nodes and their component's
    edge count — i.e. the whole greedy trajectory — in one O(E α) pass.
    A removal that would disconnect the required nodes (a rejected edge)
    permanently re-enters the graph: bridges stay bridges under further
    removals, so rejected edges are final and only trigger a fresh sweep
    seeded with them.  Total cost O((rejections + 1) · E α) instead of
    O(E² log E).
    """
    if len(component) <= target:
        return component
    ordered = sorted(component, key=lambda e: (weights.get(e, 0.0), e))
    total = len(ordered)
    kept: list[Edge] = []  # rejected removals: required-bridges, kept forever
    segment_start = 0
    while True:
        # State s == the greedy's graph after processing ordered[:s]:
        # kept ∪ ordered[s:].  Sweep s from `total` down to the segment
        # start, recording required-connectivity and component size.
        connected = [False] * (total + 1)
        sizes = [0] * (total + 1)
        union_find = _UnionFind()
        for edge in kept:
            union_find.add_edge(edge.subject, edge.object)
        for s in range(total, segment_start - 1, -1):
            if s < total:
                union_find.add_edge(ordered[s].subject, ordered[s].object)
            root = union_find.connected_root(required)
            if root is not None:
                connected[s] = True
                sizes[s] = union_find.component_edges(root)

        rejected_at: int | None = None
        stop_at: int | None = None
        for s in range(segment_start, total):
            if sizes[s] <= target:
                stop_at = s  # the greedy's size check before each removal
                break
            if not connected[s + 1]:
                rejected_at = s  # removing ordered[s] splits the required
                break
        if rejected_at is None:
            final = total if stop_at is None else stop_at
            return _component_containing(kept + ordered[final:], required)[0]
        kept.append(ordered[rejected_at])
        segment_start = rejected_at + 1


def _select_component(
    edges: set[Edge],
    required: set[str],
    weights: Mapping[Edge, float],
    target: int,
) -> set[Edge]:
    """Greedy Alg. 1 selection for one part of the divide-and-conquer.

    Scans prefixes of the weight-ordered edge list and returns the component
    containing ``required`` whose edge count is exactly ``target`` if such a
    prefix exists, otherwise the largest count below ``target``, otherwise
    the smallest count above (trimmed back down towards the target).
    """
    if not edges:
        return set()
    if target <= 0:
        target = 1
    ordered = sorted(edges, key=lambda e: (-weights.get(e, 0.0), e))

    # Alg. 1 scans the prefixes of the weight-ordered edge list and asks,
    # for each, for the component containing the required nodes.  Instead
    # of rebuilding that component per prefix (quadratic), grow a
    # union-find incrementally, tracking the edge count per component, and
    # materialize only the prefix that wins the preference order below.
    union_find = _UnionFind()
    required_list = list(required)
    s_exact: int | None = None
    s_below: int | None = None
    s_above: int | None = None

    for s, edge in enumerate(ordered, 1):
        union_find.add_edge(edge.subject, edge.object)
        root = union_find.connected_root(required_list)
        if root is None:
            continue
        size = union_find.component_edges(root)
        if size == target:
            s_exact = s
            break
        if size < target:
            # keep the largest-below candidate (later prefixes grow it)
            s_below = s
        elif s_above is None:
            s_above = s

    # Algorithm 1's preference order: exact size m, else the largest
    # component below m (s1), else the smallest component above m (s2),
    # the latter trimmed back towards m so hub entities cannot blow the
    # MQG (and with it the query lattice) up arbitrarily.
    if s_exact is not None:
        return _component_containing(ordered[:s_exact], required)[0]
    if s_below is not None:
        return _component_containing(ordered[:s_below], required)[0]
    if s_above is not None:
        component, _ = _component_containing(ordered[:s_above], required)
        return _trim_component(component, required, weights, target)
    return set()


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def select_mqg_edges(
    graph: KnowledgeGraph,
    query_tuple: Sequence[str],
    weights: Mapping[Edge, float],
    r: int = DEFAULT_MQG_SIZE,
) -> tuple[set[Edge], set[Edge]]:
    """Run the divide-and-conquer greedy selection on an arbitrary graph.

    Returns ``(mqg_edges, core_component_edges)``.  This low-level function
    is reused to trim merged multi-tuple MQGs (whose weights come from the
    merge, not from graph statistics).
    """
    entities = tuple(query_tuple)
    if not entities:
        raise DiscoveryError("query tuple must contain at least one entity")
    per_part_budget = max(r // (len(entities) + 1), 1)

    core_edges, individual_edges = _partition_edges(graph, entities)

    selected: set[Edge] = set()
    core_required = set(entities)
    core_selection: set[Edge] = set()
    if core_edges and len(entities) > 1:
        core_selection = _select_component(
            core_edges, core_required, weights, per_part_budget
        )
        if not core_selection:
            # Fall back to the whole core; connectivity of the query
            # entities must be preserved even if it exceeds the budget.
            core_selection, exists = _component_containing(
                sorted(core_edges), core_required
            )
            if not exists:
                raise DisconnectedQueryError(entities, d=0)
            core_selection = _trim_component(
                core_selection, core_required, weights, per_part_budget
            )
        selected |= core_selection

    for entity in entities:
        part_edges = individual_edges.get(entity, set())
        if not part_edges:
            continue
        part_selection = _select_component(
            part_edges, {entity}, weights, per_part_budget
        )
        selected |= part_selection

    if not selected:
        raise DiscoveryError(
            "MQG discovery selected no edges; the neighborhood of the query "
            "tuple is empty"
        )
    return selected, core_selection


def discover_maximal_query_graph(
    neighborhood: NeighborhoodGraph,
    stats: GraphStatistics,
    r: int = DEFAULT_MQG_SIZE,
    reduce_first: bool = True,
) -> MaximalQueryGraph:
    """Discover the MQG of a query tuple from its neighborhood graph.

    Parameters
    ----------
    neighborhood:
        The neighborhood graph ``H_t`` (Definition 1).
    stats:
        Offline statistics of the *data graph* (not of the neighborhood),
        used for the Eq. 2 discovery weights and Eq. 8 scoring weights.
    r:
        Target MQG size (number of edges); the paper uses ``r = 15``.
    reduce_first:
        Apply the unimportant-edge reduction of Sec. III-C before running
        Algorithm 1 (the paper always does; disabling it is useful for
        ablation experiments).
    """
    entities = neighborhood.query_tuple
    working = reduce_neighborhood_graph(neighborhood) if reduce_first else neighborhood

    graph = working.graph
    if len(entities) > 1:
        # All query entities must be weakly connected in the neighborhood.
        components = graph.weakly_connected_components()
        if not any(set(entities) <= component for component in components):
            raise DisconnectedQueryError(entities, neighborhood.d)

    weights = discovery_edge_weights(stats, graph.edges)
    mqg_edges, core_selection = select_mqg_edges(graph, entities, weights, r=r)

    mqg_graph = KnowledgeGraph()
    for entity in entities:
        mqg_graph.add_node(entity)
    for edge in mqg_edges:
        mqg_graph.add_edge_object(edge)

    scoring_weights = mqg_edge_weights(stats, mqg_graph, entities)
    core_in_mqg = frozenset(edge for edge in core_selection if edge in mqg_edges)
    return MaximalQueryGraph(
        graph=mqg_graph,
        query_tuple=tuple(entities),
        edge_weights=scoring_weights,
        core_edges=core_in_mqg,
        discovery_weights={edge: weights[edge] for edge in mqg_edges},
    )
