"""Edge weighting heuristics (Sec. III-B and Eq. 7–8 of the paper).

Two weighting functions are used at different stages:

* **Discovery weight** (Eq. 2): ``w(e) = ief(e) / p(e)``.  Used while
  discovering the maximal query graph from the neighborhood graph; it is
  deliberately independent of the distance to the query entities so the MQG
  stays balanced between near and far edges.

* **MQG / scoring weight** (Eq. 8): ``w(e) = ief(e) / (p(e) · depth(e)²)``.
  Used once the MQG is fixed, when scoring answer graphs (Eq. 5–6); edges
  closer to the query entities matter more.

**Edge depth** (Eq. 7) is the smallest undirected distance between an edge
and a query entity.  The paper defines it via the endpoint distances, which
would make edges incident on query entities have depth 0 and Eq. 8 divide by
zero; we therefore interpret the depth of an edge as ``1 +`` the minimum
endpoint distance, so an edge incident on a query entity has depth 1, an
edge one hop away has depth 2, and so on.  This preserves the intended
ordering ("the larger d(e) is, the less important e is") while keeping the
weight finite.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.graph.knowledge_graph import Edge, KnowledgeGraph
from repro.graph.statistics import GraphStatistics


def discovery_edge_weights(
    stats: GraphStatistics, edges: Iterable[Edge]
) -> dict[Edge, float]:
    """Eq. 2 weights (``ief / p``) for every edge in ``edges``."""
    return {edge: stats.base_edge_weight(edge) for edge in edges}


def edge_depths(
    graph: KnowledgeGraph, query_tuple: Sequence[str], edges: Iterable[Edge] | None = None
) -> dict[Edge, int]:
    """Depth of each edge of ``graph`` w.r.t. the query entities (Eq. 7).

    ``depth(e) = 1 + min over query entities and endpoints of the undirected
    distance in `graph```.  Distances are measured inside the graph passed in
    (the MQG, per the paper).  Edges whose endpoints cannot reach any query
    entity (which cannot happen for a weakly connected MQG) get a depth one
    larger than the graph's edge count as a conservative fallback.
    """
    distances: dict[str, int] = {}
    for entity in query_tuple:
        if not graph.has_node(entity):
            continue
        for node, dist in graph.undirected_distances(entity).items():
            previous = distances.get(node)
            if previous is None or dist < previous:
                distances[node] = dist

    fallback = graph.num_edges + 1
    target_edges = graph.edges if edges is None else edges
    depths: dict[Edge, int] = {}
    for edge in target_edges:
        endpoint_distance = min(
            distances.get(edge.subject, fallback),
            distances.get(edge.object, fallback),
        )
        depths[edge] = endpoint_distance + 1
    return depths


def mqg_edge_weights(
    stats: GraphStatistics,
    mqg_graph: KnowledgeGraph,
    query_tuple: Sequence[str],
) -> dict[Edge, float]:
    """Eq. 8 weights (``ief / (p · depth²)``) for every edge of the MQG."""
    depths = edge_depths(mqg_graph, query_tuple)
    weights: dict[Edge, float] = {}
    for edge in mqg_graph.edges:
        depth = depths[edge]
        weights[edge] = stats.base_edge_weight(edge) / (depth * depth)
    return weights
