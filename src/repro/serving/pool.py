"""Process-pool query execution: shard a batch across worker processes.

The inline engine is CPU-bound pure Python — under the GIL, one process
can use one core no matter how many serving threads pile up.
:class:`WorkerPool` forks N worker processes and shards the queries of
one :meth:`~repro.core.gqbe.GQBE.query_batch` window across them:

* **snapshot-backed** pools give each worker its *own*
  ``GQBE.from_snapshot(path)`` over the same snapshot.  With a v2
  sharded snapshot every worker memory-maps the same shard files, so
  the big columns and probe indexes live in shared page-cache pages —
  the incremental RSS per worker is the vocabulary plus python objects,
  not another copy of the graph;
* **fork-inherited** pools (no snapshot path; requires the ``fork``
  start method) hand the parent's already-built system to the children
  through copy-on-write memory.

Answers are **byte-identical** to inline execution: each worker runs an
ordinary ``query_batch`` over its chunk (itself pinned byte-identical
to sequential ``query()`` calls), duplicate tuples are collapsed in the
parent and fanned back out, and chunk results are merged in input
order.  ``tests/test_pool_execution.py`` pins the 4-way equivalence
(v1-loaded / v2-mapped / inline / pooled).

Wired up by ``GQBEConfig(execution="pool", pool_workers=N)`` on the
facade, and by ``gqbe serve --workers N`` /
:class:`~repro.serving.batching.QueryBatcher` on the serve layer.
"""

from __future__ import annotations

import multiprocessing
import os
import subprocess
import sys
import threading
import time
from collections.abc import Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import replace
from os import PathLike
from pathlib import Path

from repro.core.answer import QueryResult
from repro.exceptions import GQBEError

#: Upper bound on the default worker count (``pool_workers=None``).
DEFAULT_MAX_WORKERS = 8

#: Hard ceiling on pool initialization (a worker fleet that cannot fork
#: and open its snapshot within this is considered wedged).
POOL_INIT_TIMEOUT = 120.0

# Worker-process state: the system this worker answers queries from.
# Set once by the pool initializer.
_WORKER_SYSTEM = None


def default_worker_count() -> int:
    """The worker count used when ``pool_workers`` is left ``None``."""
    return max(1, min(DEFAULT_MAX_WORKERS, os.cpu_count() or 1))


def _init_worker(
    snapshot_path, config, system, barrier, init_hook=None, delta_triples=None
) -> None:
    """Worker initializer: open the snapshot, or adopt the forked system.

    ``system`` and ``barrier`` ride along only on fork pools, where
    initargs are inherited by reference instead of pickled.  The barrier
    holds every fork worker in its initializer until all of them exist —
    that is what lets the pool constructor force the *entire* fleet to
    fork eagerly, while the parent is still in a known thread state,
    instead of lazily from whatever threads are running at first submit.

    ``delta_triples`` is the parent's pending ingest delta: replaying the
    applied triples in their original order against a fresh load of the
    same snapshot is deterministic (same ids, same adjacency orders), so
    every worker answers byte-identically to the parent's overlay.

    ``init_hook`` is a test seam: called first, so tests can simulate a
    worker dying mid-initialization.
    """
    global _WORKER_SYSTEM
    if init_hook is not None:
        init_hook()
    if snapshot_path is not None:
        from repro.core.gqbe import GQBE

        # Each worker opens the snapshot itself.  For v2/v3 this maps the
        # shard files read-only: all workers share the physical pages.
        _WORKER_SYSTEM = GQBE.from_snapshot(snapshot_path, config=config)
        if delta_triples:
            _WORKER_SYSTEM.ingest(delta_triples)
    else:
        _WORKER_SYSTEM = system
    if barrier is not None:
        try:
            barrier.wait(timeout=POOL_INIT_TIMEOUT)
        except threading.BrokenBarrierError:
            # The parent detected a dead sibling and aborted the barrier;
            # exit the initializer quietly — the pool is being torn down.
            return


def _run_chunk(
    tuples: list[tuple[str, ...]], k: int, k_prime: int | None
) -> list[QueryResult]:
    """Execute one chunk of a sharded batch inside a worker process.

    Always the *inline* batch path: a fork-inherited system may carry
    ``execution="pool"``, and a worker must never spawn its own pool.
    """
    return _WORKER_SYSTEM._query_batch_inline(
        [tuple(t) for t in tuples], k, k_prime
    )


def _chunk(items: list, parts: int) -> list[list]:
    """Split ``items`` into at most ``parts`` contiguous, balanced chunks."""
    parts = max(1, min(parts, len(items)))
    size, remainder = divmod(len(items), parts)
    chunks = []
    start = 0
    for index in range(parts):
        end = start + size + (1 if index < remainder else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


class WorkerPool:
    """N worker processes answering sharded ``query_batch`` windows.

    Parameters
    ----------
    workers:
        Number of worker processes (``None`` →
        :func:`default_worker_count`).
    snapshot_path:
        Snapshot each worker opens itself (the shared-pages path).
        When omitted, ``system`` must be given and the platform must
        support the ``fork`` start method.
    system:
        A built :class:`~repro.core.gqbe.GQBE` to inherit through fork
        when there is no snapshot to reopen.
    config:
        Engine config for snapshot-backed workers (defaults to the
        snapshot's own flags).
    delta_triples:
        Applied ingest triples for snapshot-backed workers to replay on
        top of the snapshot (fork pools inherit the parent's delta in
        their memory image instead).
    """

    def __init__(
        self,
        workers: int | None = None,
        snapshot_path: str | PathLike | None = None,
        system=None,
        config=None,
        delta_triples=None,
        _init_hook=None,
    ) -> None:
        if snapshot_path is None and system is None:
            raise GQBEError("WorkerPool needs a snapshot_path or a system")
        self.workers = workers if workers is not None else default_worker_count()
        if self.workers < 1:
            raise GQBEError(f"workers must be >= 1, got {self.workers}")
        # Absolute: spawned/forkserver workers may not share the parent's
        # working directory by the time they open the snapshot.
        self.snapshot_path = (
            str(Path(snapshot_path).resolve()) if snapshot_path is not None else None
        )
        methods = multiprocessing.get_all_start_methods()
        if self.snapshot_path is not None:
            # Snapshot-backed workers reopen the file themselves and the
            # initargs are picklable, so the pool never needs to fork the
            # (typically multi-threaded) serving parent: workers are
            # forked lazily at first submit, and forking a threaded
            # process risks child deadlock (and deprecation warnings on
            # CPython 3.12+).  forkserver forks from a clean helper
            # process instead; spawn is the portable fallback.
            start_method = "forkserver" if "forkserver" in methods else "spawn"
        else:
            # Inheriting an in-memory system genuinely requires fork.
            if "fork" not in methods:
                raise GQBEError(
                    "pooled execution without a snapshot needs the fork "
                    "start method; build an index snapshot and serve from "
                    "it instead"
                )
            start_method = "fork"
        context = multiprocessing.get_context(start_method)
        # Only fork pools carry the parent system in initargs (fork
        # passes initargs by reference — nothing is pickled).  Fork pools
        # also get a startup barrier so all workers fork *now*, in
        # __init__, rather than lazily at first submit — by then the
        # caller (e.g. the serving frontend) may be running batcher/HTTP
        # threads, and forking a multi-threaded parent risks child
        # deadlock on whatever locks those threads hold.
        inherited = system if self.snapshot_path is None else None
        barrier = context.Barrier(self.workers) if start_method == "fork" else None
        self.delta_triples = (
            [tuple(triple) for triple in delta_triples]
            if self.snapshot_path is not None and delta_triples
            else None
        )
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(
                self.snapshot_path,
                config,
                inherited,
                barrier,
                _init_hook,
                self.delta_triples,
            ),
        )
        self._closed = False
        if barrier is not None:
            # Each submit sees every existing worker still blocked in its
            # initializer (no idle workers), so the executor forks a new
            # one — N no-op tasks therefore fork the full fleet here.
            futures = [
                self._executor.submit(os.getpid) for _ in range(self.workers)
            ]
            self._await_fork_init(futures)

    def _await_fork_init(self, futures) -> None:
        """Wait for the fork fleet, failing *fast* if any worker dies.

        Without this, one worker dying inside ``_init_worker`` left its
        siblings blocked on the startup barrier for the full barrier
        timeout (up to two minutes) before an opaque
        ``BrokenBarrierError`` escaped the constructor.  Here the parent
        polls the worker processes while it waits: a dead worker (or a
        broken executor) aborts the barrier immediately — releasing the
        survivors — tears the pool down, and raises a clean
        :class:`~repro.exceptions.GQBEError`.
        """
        deadline = time.monotonic() + POOL_INIT_TIMEOUT
        pending = set(futures)
        while pending:
            done, pending = wait(pending, timeout=0.05, return_when=FIRST_COMPLETED)
            for future in done:
                error = future.exception()
                if error is not None:
                    self._abort_init(error)
            if not pending:
                return
            processes = dict(getattr(self._executor, "_processes", None) or {})
            dead = [
                pid
                for pid, process in processes.items()
                if not process.is_alive()
            ]
            if dead or getattr(self._executor, "_broken", False):
                self._abort_init(
                    None,
                    detail=(
                        f"worker process {dead[0]} died" if dead else "the pool broke"
                    ),
                )
            if time.monotonic() > deadline:
                self._abort_init(None, detail="initialization timed out")

    def _abort_init(self, cause: BaseException | None, detail: str | None = None):
        """Tear the half-built pool down and raise one clean error.

        Survivors blocked on the startup barrier are killed outright.
        ``barrier.abort()`` would be the polite alternative, but a
        multiprocessing condition's ``notify_all`` handshakes with every
        registered sleeper — and the executor's own broken-pool handling
        may have already terminated one mid-wait, which turns the abort
        into a deadlock.  ``kill()`` cannot hang, and the pool is dead
        either way.
        """
        processes = dict(getattr(self._executor, "_processes", None) or {})
        for process in processes.values():
            try:
                process.kill()
            except (OSError, ValueError):  # pragma: no cover - already gone
                pass
        self._closed = True
        self._executor.shutdown(wait=False, cancel_futures=True)
        if detail is None:
            detail = f"{type(cause).__name__}: {cause}" if cause else "unknown failure"
        raise GQBEError(
            f"worker pool failed during initialization ({detail}); "
            "the pool was shut down"
        ) from cause

    # ------------------------------------------------------------------
    def query_batch(
        self,
        query_tuples: Sequence[Sequence[str]],
        k: int = 10,
        k_prime: int | None = None,
    ) -> list[QueryResult]:
        """Answer a batch, sharded across the pool, in input order.

        Duplicate tuples are collapsed before sharding and fanned back
        out afterwards — the same exact-replay argument as
        :meth:`GQBE.query_batch <repro.core.gqbe.GQBE.query_batch>`
        (the pipeline is deterministic), so the merged ranked answers
        are byte-identical to inline execution.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        tuples = [tuple(t) for t in query_tuples]
        if not tuples:
            return []
        unique: list[tuple[str, ...]] = []
        seen: set[tuple[str, ...]] = set()
        for entities in tuples:
            if entities not in seen:
                seen.add(entities)
                unique.append(entities)
        chunks = _chunk(unique, self.workers)
        futures = [
            self._executor.submit(_run_chunk, chunk, k, k_prime)
            for chunk in chunks
        ]
        by_tuple: dict[tuple[str, ...], QueryResult] = {}
        first_error: BaseException | None = None
        for chunk, future in zip(chunks, futures):
            try:
                results = future.result()
            # gqbe: ignore[EXC001] -- every future must be drained even
            # when one fails (no leaked in-flight work); the first error,
            # whatever its type, is re-raised once draining completes.
            except BaseException as error:  # noqa: BLE001 - re-raised below
                # Drain every future before raising so no work leaks.
                if first_error is None:
                    first_error = error
                continue
            for entities, result in zip(chunk, results):
                by_tuple[entities] = result
        if first_error is not None:
            raise first_error
        results = []
        emitted: set[tuple[str, ...]] = set()
        for entities in tuples:
            result = by_tuple[entities]
            if entities in emitted:
                # Fan-out duplicates get fresh mutable containers, same
                # ranked answers — mirroring GQBE.query_batch.
                result = replace(
                    result,
                    answers=list(result.answers),
                    statistics=replace(result.statistics),
                    per_tuple_discovery_seconds=list(
                        result.per_tuple_discovery_seconds
                    ),
                )
            else:
                emitted.add(entities)
            results.append(result)
        return results

    # ------------------------------------------------------------------
    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (may be lazily spawned)."""
        processes = getattr(self._executor, "_processes", None) or {}
        return sorted(processes)

    def worker_rss_bytes(self) -> list[int]:
        """Resident-set size of each worker, in bytes (Linux; else empty).

        Used by ``gqbe bench-serve --json`` to record how little
        incremental memory N mapped workers cost versus one.
        """
        sizes = []
        for pid in self.worker_pids():
            rss = _rss_bytes(pid)
            if rss is not None:
                sizes.append(rss)
        return sizes

    def worker_peak_rss_bytes(self) -> list[int]:
        """Peak (high-water) RSS of each worker (``VmHWM``; Linux)."""
        sizes = []
        for pid in self.worker_pids():
            peak = _rss_bytes(pid, field="VmHWM:")
            if peak is not None:
                sizes.append(peak)
        return sizes

    def stats(self) -> dict:
        """Pool description for ``/stats`` and bench reports."""
        return {
            "workers": self.workers,
            "snapshot_backed": self.snapshot_path is not None,
            "worker_pids": self.worker_pids(),
            "delta_replayed": len(self.delta_triples or ()),
        }

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _rss_bytes(pid: int, field: str = "VmRSS:") -> int | None:
    """A memory field of ``pid`` from procfs, or ``None`` where unavailable.

    ``VmRSS:`` is the current resident size; ``VmHWM:`` its high-water
    mark (true peak, immune to pages being reclaimed before sampling).
    """
    try:
        with open(f"/proc/{pid}/status", encoding="ascii", errors="replace") as f:
            for line in f:
                if line.startswith(field):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


_FLOOR_SCRIPT = (
    "import numpy, repro.core.gqbe\n"
    "from repro.serving.pool import parent_rss_bytes\n"
    "print(parent_rss_bytes() or 0)\n"
)
_interpreter_floor_cache: list[int | None] = []
_interpreter_floor_lock = threading.Lock()


def interpreter_floor_rss_bytes() -> int | None:
    """RSS of a bare interpreter that imported numpy + the engine.

    The baseline a pool worker cannot go below — everything a worker
    holds *above* this floor is what it actually pays for the graph.
    ``bench-serve`` reports ``worker RSS − floor`` as the per-worker
    *incremental* RSS, which is the number the mapped-snapshot formats
    drive toward zero.  Measured once per process by spawning a child
    (Linux procfs; ``None`` elsewhere) and cached.
    """
    with _interpreter_floor_lock:
        # Unlocked, two handler threads could both see the empty cache,
        # spawn two probe children and double-append.
        if not _interpreter_floor_cache:
            floor: int | None = None
            try:
                completed = subprocess.run(
                    [sys.executable, "-c", _FLOOR_SCRIPT],
                    capture_output=True,
                    timeout=60,
                    check=True,
                )
                floor = int(completed.stdout) or None
            except (OSError, ValueError, subprocess.SubprocessError):
                floor = None
            _interpreter_floor_cache.append(floor)
        return _interpreter_floor_cache[0]


_STRUCTURAL_SCRIPT = (
    "import sys\n"
    "from repro.core.gqbe import GQBE\n"
    "from repro.serving.pool import parent_rss_bytes\n"
    "system = GQBE.from_snapshot(sys.argv[1])\n"
    "system.graph_store.materialize()\n"
    "store = system.store\n"
    "for label in list(store.labels()):\n"
    "    store.table(label)\n"
    "print(parent_rss_bytes() or 0)\n"
)


def snapshot_worker_structural_rss_bytes(
    snapshot_path, strict: bool = False
) -> int | None:
    """RSS of a worker that opened ``snapshot_path`` and touched everything.

    Spawns a fresh process that materializes every section and maps
    every table shard, then reports its ``VmRSS`` — the *structural*
    per-worker footprint, free of transient query allocations (which
    dwarf the sections under load and make live worker RSS useless for
    format comparisons).  Subtract :func:`interpreter_floor_rss_bytes`
    to get the incremental bytes a worker pays for the graph itself:
    v2 drops the table columns+indexes from that figure, v3 additionally
    drops the vocabulary and the graph adjacency.

    ``strict=True`` (the CI gate) raises on probe failure — surfacing
    the child's stderr — instead of returning ``None``; a broken probe
    must fail the gate loudly, not silently disable it.
    """
    samples = []
    for _ in range(2):  # min of two runs damps allocator/procfs noise
        try:
            completed = subprocess.run(
                [sys.executable, "-c", _STRUCTURAL_SCRIPT, str(snapshot_path)],
                capture_output=True,
                timeout=300,
                check=True,
            )
            samples.append(int(completed.stdout))
        except subprocess.CalledProcessError as error:
            if strict:
                raise RuntimeError(
                    "structural RSS probe failed:\n"
                    + error.stderr.decode("utf-8", errors="replace")
                ) from error
            return None
        except (OSError, ValueError, subprocess.SubprocessError):
            if strict:
                raise
            return None
    return min(samples) or None


def parent_rss_bytes() -> int | None:
    """This process's resident-set size (Linux procfs; ``None`` elsewhere)."""
    return _rss_bytes(os.getpid())


def parent_peak_rss_bytes() -> int | None:
    """This process's peak resident size (``VmHWM``; ``None`` elsewhere)."""
    return _rss_bytes(os.getpid(), field="VmHWM:")
