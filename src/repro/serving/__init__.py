"""Long-lived serving frontend: one warm snapshot, many concurrent queries.

The paper's system answers one query at a time from a Python process; the
north star is serving heavy traffic.  This package adds the missing layer:

* :class:`~repro.serving.cache.AnswerCache` — a thread-safe LRU of
  serialized answers keyed on the canonicalized query, with
  generation-based invalidation so a snapshot reload can never serve a
  stale answer;
* :class:`~repro.serving.batching.QueryBatcher` — a micro-batching worker
  that groups requests arriving within a small window into one
  :meth:`~repro.core.gqbe.GQBE.query_batch` call;
* :class:`~repro.serving.server.GQBEServer` — a threaded HTTP server
  (stdlib ``ThreadingHTTPServer``) exposing ``POST /query``,
  ``GET /healthz``, ``GET /stats`` and ``POST /admin/reload``;
* :class:`~repro.serving.pool.WorkerPool` — a process pool that shards
  a batch window across N workers, each holding the same (ideally
  memory-mapped v2) snapshot open, bypassing the GIL for CPU-bound
  explorations (``gqbe serve --workers N``);
* :mod:`~repro.serving.loadgen` — the ``gqbe bench-serve`` load driver
  that measures serve throughput and latency percentiles.

Start a server from the CLI (``gqbe serve --snapshot data.snap``) or
programmatically::

    from repro.serving.server import GQBEServer

    server = GQBEServer.from_snapshot("data.snap", port=0)
    server.start()
    print("listening on", server.port)
    ...
    server.stop()
"""

from repro.serving.batching import QueryBatcher
from repro.serving.cache import AnswerCache
from repro.serving.pool import WorkerPool
from repro.serving.server import GQBEServer

__all__ = ["AnswerCache", "QueryBatcher", "GQBEServer", "WorkerPool"]
