"""Long-lived serving frontend: one warm snapshot, many concurrent queries.

The paper's system answers one query at a time from a Python process; the
north star is serving heavy traffic.  This package adds the missing layer:

* :class:`~repro.serving.cache.AnswerCache` — a thread-safe LRU of
  serialized answers keyed on the canonicalized query, with
  generation-based invalidation so a snapshot reload can never serve a
  stale answer (:class:`~repro.serving.limits.TTLAnswerCache` adds
  per-entry time-to-live on top);
* :class:`~repro.serving.batching.QueryBatcher` — a micro-batching worker
  that groups requests arriving within a small window into one
  :meth:`~repro.core.gqbe.GQBE.query_batch` call;
* :class:`~repro.serving.server.ServingCore` — the frontend-agnostic
  engine (cache + batcher + pool + reload) both HTTP frontends share;
* :class:`~repro.serving.async_server.AsyncGQBEServer` — the default
  asyncio frontend: admission control (bounded in-flight queue,
  per-client token-bucket rate limits, request deadlines) and a
  Prometheus-text ``GET /metrics`` endpoint on top of the core's
  ``POST /query``, ``GET /healthz``, ``GET /stats`` and
  ``POST /admin/reload``;
* :class:`~repro.serving.server.GQBEServer` — the original threaded HTTP
  frontend (stdlib ``ThreadingHTTPServer``), kept as
  ``gqbe serve --frontend threaded`` and as the equivalence reference
  (both frontends serve byte-identical answers);
* :class:`~repro.serving.pool.WorkerPool` — a process pool that shards
  a batch window across N workers, each holding the same (ideally
  memory-mapped v2) snapshot open, bypassing the GIL for CPU-bound
  explorations (``gqbe serve --workers N``);
* :mod:`~repro.serving.loadgen` — the ``gqbe bench-serve`` load driver
  (closed-loop capacity and open-loop overload arrivals) that measures
  serve throughput, latency percentiles and shed behavior.

Start a server from the CLI (``gqbe serve --snapshot data.snap``) or
programmatically::

    from repro.serving.async_server import AsyncGQBEServer

    server = AsyncGQBEServer.from_snapshot("data.snap", port=0)
    server.start()
    print("listening on", server.port)
    ...
    server.stop()
"""

from repro.serving.batching import QueryBatcher
from repro.serving.cache import AnswerCache
from repro.serving.pool import WorkerPool
from repro.serving.server import GQBEServer, ServingCore

__all__ = [
    "AnswerCache",
    "QueryBatcher",
    "GQBEServer",
    "ServingCore",
    "WorkerPool",
]
