"""Thread-safe LRU answer cache with generation-based invalidation.

The serve layer caches *serialized response payloads* keyed on the
canonicalized query (``(query tuples, k, k_prime)``).  Two properties
matter beyond plain LRU semantics:

* **Thread safety** — the HTTP server handles requests on one thread per
  connection; every cache operation holds one lock.
* **Staleness safety across snapshot reloads** — a request may be in
  flight (computing against the *old* snapshot) while an operator swaps
  in a new one.  A plain ``put`` after the swap would poison the cache
  with a stale answer.  The cache therefore carries a monotonically
  increasing *generation*: :meth:`AnswerCache.invalidate` clears all
  entries and bumps the generation, and :meth:`AnswerCache.put` requires
  the generation the caller observed *before* it started computing — a
  put tagged with an outdated generation is dropped.  This is pinned by
  ``tests/test_serving.py``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable


class AnswerCache:
    """LRU mapping of canonical query keys to answer payloads.

    Parameters
    ----------
    capacity:
        Maximum number of cached answers; the least recently used entry
        is evicted first.  ``0`` disables caching entirely (every
        ``get`` misses, every ``put`` is dropped).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._generation = 0
        self.hits = 0
        self.misses = 0
        self.stale_puts = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def generation(self) -> int:
        """The current cache generation (bumped by :meth:`invalidate`)."""
        with self._lock:
            return self._generation

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Any | None:
        """The cached payload for ``key`` (marking it recently used)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, value: Any, generation: int) -> bool:
        """Insert ``value`` if ``generation`` is still current.

        ``generation`` must be the value of :attr:`generation` read
        *before* the caller started computing ``value``; if the cache has
        been invalidated since, the value describes an outdated snapshot
        and is dropped.  Returns whether the value was stored.
        """
        with self._lock:
            if generation != self._generation:
                self.stale_puts += 1
                return False
            if self.capacity == 0:
                return False
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return True

    def invalidate(self) -> int:
        """Drop every entry and start a new generation; returns it."""
        with self._lock:
            self._entries.clear()
            self._generation += 1
            self.invalidations += 1
            return self._generation

    def stats(self) -> dict[str, int]:
        """Counter snapshot for the ``/stats`` endpoint."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "generation": self._generation,
                "hits": self.hits,
                "misses": self.misses,
                "stale_puts": self.stale_puts,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
