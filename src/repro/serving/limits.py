"""Admission control for the async serving frontend.

Three levers, applied in order by
:class:`~repro.serving.async_server.AsyncGQBEServer` before a request is
allowed to touch the batcher/pool:

1. :class:`RateLimiter` — per-client token buckets keyed by API key
   (``Authorization`` header).  A client above its sustained rate is
   shed with ``429`` + ``Retry-After`` computed from its bucket's refill
   time, so one hot client cannot starve the rest.
2. :class:`TTLAnswerCache` — the cross-batch answer cache (LRU +
   generation guard inherited from
   :class:`~repro.serving.cache.AnswerCache`, plus per-entry TTL expiry).
   Duplicate-heavy traffic short-circuits here without consuming an
   admission slot, which is what makes the cache an admission-control
   lever and not just a latency one.
3. :class:`AdmissionGate` — a bounded in-flight counter.  Past the
   high-water mark the request is shed with ``429`` + ``Retry-After``
   instead of queueing unboundedly (the failure mode of the threaded
   frontend: one thread per connection, no backpressure).

Thread-safety note: :class:`RateLimiter` and :class:`AdmissionGate` are
**event-loop confined** — they are only ever touched from coroutines on
the server's loop thread, which serializes access, so they deliberately
own no locks.  Mutating them from a foreign thread would be a bug; the
``CON005`` analyzer (``tools/gqbecheck``) polices exactly that pattern.
:class:`TTLAnswerCache` inherits the parent cache's lock because cache
puts also happen on executor threads.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable, Hashable
from typing import Any

from repro.serving.cache import AnswerCache


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Starts full (a well-behaved client gets its burst immediately).
    ``clock`` is injectable so refill behavior is testable without
    sleeping.
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated", "_now")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0 tokens/second, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1 token, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._now = clock
        self._updated = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def allow(self) -> bool:
        """Spend one token if available."""
        self._refill(self._now())
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after_seconds(self) -> float:
        """Seconds until one full token has accrued (0 if one is ready)."""
        self._refill(self._now())
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate


class RateLimiter:
    """Per-client token buckets keyed by the client's API key.

    ``max_clients`` bounds the bucket table: an attacker rotating keys
    cannot grow it without bound.  When full, the least recently used
    bucket is dropped — a returning client then starts from a full
    bucket, which errs toward admitting, never toward starving.

    Event-loop confined: no locks (see the module docstring).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        max_clients: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {max_clients}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_clients = max_clients
        self._now = clock
        self._buckets: dict[str, TokenBucket] = {}
        self.rejections = 0

    def check(self, client_id: str) -> float | None:
        """``None`` if the client may proceed, else suggested retry-after
        seconds (always > 0)."""
        bucket = self._buckets.pop(client_id, None)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, clock=self._now)
            while len(self._buckets) >= self.max_clients:
                # dicts preserve insertion order; re-inserting on every
                # check makes the first key the least recently used.
                self._buckets.pop(next(iter(self._buckets)))
        self._buckets[client_id] = bucket
        if bucket.allow():
            return None
        self.rejections += 1
        return max(bucket.retry_after_seconds(), 1.0 / self.rate)

    def stats(self) -> dict[str, float]:
        return {
            "rate_rps": self.rate,
            "burst": self.burst,
            "tracked_clients": len(self._buckets),
            "rejections": self.rejections,
        }


class AdmissionGate:
    """Bounded count of in-flight admitted requests (the request queue).

    ``try_enter`` admits while fewer than ``high_water`` requests hold a
    slot; past the mark the caller sheds the request with ``429``.
    Event-loop confined: no locks (see the module docstring).
    """

    def __init__(self, high_water: int, retry_after_seconds: float = 1.0) -> None:
        if high_water < 1:
            raise ValueError(f"high_water must be >= 1, got {high_water}")
        if retry_after_seconds <= 0:
            raise ValueError(
                f"retry_after_seconds must be > 0, got {retry_after_seconds}"
            )
        self.high_water = high_water
        self.retry_after_seconds = retry_after_seconds
        self.depth = 0
        self.admitted = 0
        self.rejections = 0

    def try_enter(self) -> bool:
        if self.depth >= self.high_water:
            self.rejections += 1
            return False
        self.depth += 1
        self.admitted += 1
        return True

    def leave(self) -> None:
        if self.depth <= 0:
            raise RuntimeError("AdmissionGate.leave() without a matching enter")
        self.depth -= 1

    def stats(self) -> dict[str, int]:
        return {
            "high_water": self.high_water,
            "depth": self.depth,
            "admitted": self.admitted,
            "rejections": self.rejections,
        }


def retry_after_header(seconds: float) -> str:
    """``Retry-After`` delay-seconds: a positive integer, rounded up."""
    return str(max(1, math.ceil(seconds)))


class TTLAnswerCache(AnswerCache):
    """The LRU answer cache plus per-entry time-to-live expiry.

    Everything the parent guarantees still holds — thread safety, LRU
    eviction, and the generation guard that drops puts computed against
    a pre-reload snapshot (``tests/test_serving.py`` pins it; the async
    reload test re-pins it through this class).  On top of that, an
    entry older than ``ttl_seconds`` is treated as a miss and evicted on
    access, so long-lived duplicate-heavy traffic cannot pin answers
    forever on a server that never reloads.  ``ttl_seconds=None``
    disables expiry (pure LRU, byte-compatible with the parent).
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0 or None, got {ttl_seconds}")
        super().__init__(capacity)
        self.ttl_seconds = ttl_seconds
        self._now = clock
        self.expirations = 0

    def get(self, key: Hashable) -> Any | None:
        if self.ttl_seconds is None:
            return super().get(key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                value, expires_at = entry
                if self._now() < expires_at:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return value
                del self._entries[key]
                self.expirations += 1
            self.misses += 1
            return None

    def put(self, key: Hashable, value: Any, generation: int) -> bool:
        if self.ttl_seconds is None:
            return super().put(key, value, generation)
        wrapped = (value, self._now() + self.ttl_seconds)
        return super().put(key, wrapped, generation)

    def stats(self) -> dict[str, float]:
        return {
            **super().stats(),
            "ttl_seconds": self.ttl_seconds,
            "expirations": self.expirations,
        }
