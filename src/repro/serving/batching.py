"""Micro-batching of concurrent queries into ``query_batch`` calls.

Requests that arrive while the engine is busy (or within a small batching
window of each other) are grouped and executed as one
:meth:`~repro.core.gqbe.GQBE.query_batch` call: duplicates collapse to a
single evaluation and shared join prefixes are paid once, while every
caller still receives the exact answers a standalone
:meth:`~repro.core.gqbe.GQBE.query` would have produced.

The batcher owns one daemon worker thread.  :meth:`QueryBatcher.submit`
enqueues a request and blocks the calling (HTTP handler) thread until the
worker fills in the result.  The worker sleeps until a request arrives,
then keeps collecting until the window elapses or ``max_batch`` requests
are pending, groups the collected requests by ``(k, k_prime)`` (a batch
call has uniform ranking parameters) and runs each group.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence

from repro.core.answer import QueryResult


class _Pending:
    """One submitted query waiting for its batch to run."""

    __slots__ = ("query_tuple", "k", "k_prime", "event", "result", "error", "abandoned")

    def __init__(self, query_tuple: tuple[str, ...], k: int, k_prime: int | None):
        self.query_tuple = query_tuple
        self.k = k
        self.k_prime = k_prime
        self.event = threading.Event()
        self.result: QueryResult | None = None
        self.error: BaseException | None = None
        #: Set when the submitter gave up (timeout); the worker sheds
        #: abandoned requests instead of computing answers nobody reads.
        self.abandoned = False


class QueryBatcher:
    """Groups concurrent single-tuple queries into batched executions.

    Parameters
    ----------
    runner:
        ``runner(tuples, k, k_prime) -> list[QueryResult | BaseException]``
        — normally a bound :meth:`GQBE.query_batch
        <repro.core.gqbe.GQBE.query_batch>` (the server wraps it to pick
        the current snapshot's system).  A list element that is an
        exception is delivered to that query's caller alone, so one
        invalid query cannot poison its batch-mates; an exception
        *raised* by the runner is delivered to every caller of the batch.
    window_seconds:
        How long the worker keeps collecting after the first request of a
        batch arrives.  ``0`` still batches whatever queued up while the
        previous batch was executing.
    max_batch:
        Hard cap on requests per batch; the rest wait for the next one.
    pool:
        Optional :class:`~repro.serving.pool.WorkerPool`.  When set,
        multi-query windows are dispatched to the pool — sharded across
        worker *processes* and merged byte-identically — instead of the
        inline runner; single-query windows and pool failures fall back
        to ``runner``.  The attribute is mutable: a snapshot reload
        swaps in a pool over the new snapshot.
    """

    def __init__(
        self,
        runner: Callable[[Sequence[tuple[str, ...]], int, int | None], list[QueryResult]],
        window_seconds: float = 0.005,
        max_batch: int = 64,
        pool=None,
    ) -> None:
        if window_seconds < 0:
            raise ValueError(f"window_seconds must be >= 0, got {window_seconds}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._runner = runner
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self.pool = pool
        self._pending: list[_Pending] = []
        self._condition = threading.Condition()
        self._closed = False
        self.batches_run = 0
        self.queries_batched = 0
        self.largest_batch = 0
        self.pooled_batches = 0
        self._worker = threading.Thread(
            target=self._run_worker, name="gqbe-batcher", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    def submit(
        self,
        query_tuple: Sequence[str],
        k: int = 10,
        k_prime: int | None = None,
        timeout: float | None = None,
    ) -> QueryResult:
        """Enqueue one query and block until its batch has run.

        Raises whatever the engine raised for the batch this query was
        grouped into, or ``TimeoutError`` after ``timeout`` seconds.
        """
        pending = _Pending(tuple(query_tuple), k, k_prime)
        with self._condition:
            if self._closed:
                raise RuntimeError("QueryBatcher is closed")
            self._pending.append(pending)
            self._condition.notify_all()
        if not pending.event.wait(timeout):
            # Shed the load: drop the entry if still queued, and mark it
            # abandoned so a worker that already dequeued it skips it —
            # otherwise every timed-out request would still consume a
            # full execution slot during exactly the overload that made
            # it time out.
            with self._condition:
                pending.abandoned = True
                try:
                    self._pending.remove(pending)
                except ValueError:
                    pass
            raise TimeoutError(
                f"query {pending.query_tuple!r} timed out after {timeout}s"
            )
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result

    def close(self) -> None:
        """Stop the worker; outstanding requests fail with ``RuntimeError``."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()
        self._worker.join(timeout=5)

    # ------------------------------------------------------------------
    def _take_batch(self) -> list[_Pending]:
        """Block until requests exist, collect through the window, dequeue."""
        with self._condition:
            while not self._pending and not self._closed:
                self._condition.wait()
            if self._closed:
                group = self._pending[:]
                self._pending.clear()
                return group
            deadline = time.monotonic() + self.window_seconds
            while len(self._pending) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._condition.wait(remaining)
            group = self._pending[: self.max_batch]
            del self._pending[: self.max_batch]
            return group

    def _run_worker(self) -> None:
        while True:
            group = self._take_batch()
            with self._condition:
                closed = self._closed
            if closed:
                for pending in group:
                    pending.error = RuntimeError("QueryBatcher is closed")
                    pending.event.set()
                return
            if not group:
                continue
            with self._condition:
                # stats() runs on handler threads; an unlocked += here is
                # load/add/store and loses increments under contention.
                self.batches_run += 1
                self.queries_batched += len(group)
                self.largest_batch = max(self.largest_batch, len(group))
            # One query_batch call needs uniform (k, k_prime); group by it,
            # preserving arrival order inside each subgroup.
            subgroups: dict[tuple[int, int | None], list[_Pending]] = {}
            for pending in group:
                subgroups.setdefault((pending.k, pending.k_prime), []).append(pending)
            for (k, k_prime), members in subgroups.items():
                members = [member for member in members if not member.abandoned]
                if not members:
                    continue
                tuples = [member.query_tuple for member in members]
                try:
                    results = self._execute(tuples, k, k_prime)
                # gqbe: ignore[EXC001] -- worker thread must never die: every
                # failure (including KeyboardInterrupt-class) is forwarded to
                # the waiting caller, which re-raises it on its own thread.
                except BaseException as error:  # noqa: BLE001 - forwarded to callers
                    for member in members:
                        member.error = error
                else:
                    for member, result in zip(members, results):
                        if isinstance(result, BaseException):
                            member.error = result
                        else:
                            member.result = result
                for member in members:
                    member.event.set()

    def _execute(self, tuples, k, k_prime):
        """One subgroup execution: process pool when it helps, else runner.

        The pool only pays off when a window has several queries to
        shard; a pool failure of any kind (engine error on one tuple, a
        broken worker) degrades to the inline runner, which does its own
        per-query error isolation.
        """
        pool = self.pool
        if pool is not None and len(tuples) > 1:
            try:
                results = pool.query_batch(tuples, k=k, k_prime=k_prime)
            # gqbe: ignore[EXC001] -- deliberate degrade path: any pool
            # failure (broken worker, pickling error, engine fault) falls
            # back to the inline runner, which isolates per-query errors.
            except Exception:  # noqa: BLE001 - degrade to the inline runner
                return self._runner(tuples, k, k_prime)
            with self._condition:
                self.pooled_batches += 1
            return results
        return self._runner(tuples, k, k_prime)

    def stats(self) -> dict[str, float]:
        """Counter snapshot for the ``/stats`` endpoint."""
        with self._condition:
            batches = self.batches_run
            queries = self.queries_batched
            largest = self.largest_batch
            pooled = self.pooled_batches
        return {
            "window_seconds": self.window_seconds,
            "max_batch": self.max_batch,
            "batches_run": batches,
            "queries_batched": queries,
            "largest_batch": largest,
            "mean_batch_size": (queries / batches) if batches else 0.0,
            "pooled_batches": pooled,
        }
