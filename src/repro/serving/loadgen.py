"""Load driver for the serve layer (the ``gqbe bench-serve`` subcommand).

Fires ``requests`` HTTP queries at a running server (threaded or async
frontend), measures per-request latency, and folds in the server's own
``/stats`` counters (cache hit rate, batch sizes).  The report is
printed as a table by the CLI and written as JSON for CI to upload next
to the bench-gate artifact.

Two arrival modes:

* ``closed`` (default) — ``concurrency`` worker threads with one
  persistent connection each, next request issued as soon as the
  previous answer lands.  Measures capacity: the offered load adapts to
  the server's pace, so nothing is shed.
* ``open`` — requests are dispatched on a fixed schedule of ``rate``
  requests/second regardless of completions, each on its own
  connection.  Measures overload behavior: past the admission high-water
  mark the async frontend must shed with ``429`` + ``Retry-After``
  instead of queueing, and the report counts exactly that
  (``status_counts``, ``retry_after_seen``, ``transport_errors``).
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from collections.abc import Sequence

from repro.serving.server import ServingCore


def _connect(host: str, port: int, timeout: float) -> http.client.HTTPConnection:
    """A keep-alive connection with Nagle's algorithm off.

    ``http.client`` writes request headers and body in separate segments;
    with Nagle on, the body then waits for the server's delayed ACK —
    a flat ~40ms stall on every request after the first on a persistent
    connection.
    """
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    connection.connect()
    connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return connection


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0 for empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


class _Outcomes:
    """Thread-safe tally of request outcomes across load workers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.ok = 0
        self.cached = 0
        self.errors = 0
        self.transport_errors = 0
        self.retry_after_seen = 0
        self.status_counts: dict[str, int] = {}
        self.latencies: list[float] = []

    def record(self, status: int, payload: dict, elapsed: float, retry_after) -> None:
        with self._lock:
            key = str(status)
            self.status_counts[key] = self.status_counts.get(key, 0) + 1
            if retry_after is not None:
                self.retry_after_seen += 1
            if status == 200:
                self.ok += 1
                if payload.get("cached"):
                    self.cached += 1
                self.latencies.append(elapsed)
            else:
                self.errors += 1

    def record_transport_error(self) -> None:
        with self._lock:
            self.errors += 1
            self.transport_errors += 1


def _issue(
    connection: http.client.HTTPConnection,
    body: bytes,
    outcomes: _Outcomes,
    headers: dict,
) -> None:
    started = time.perf_counter()
    connection.request("POST", "/query", body=body, headers=headers)
    response = connection.getresponse()
    raw = response.read()
    elapsed = time.perf_counter() - started
    try:
        payload = json.loads(raw) if raw else {}
    except ValueError:
        payload = {}
    outcomes.record(
        response.status, payload, elapsed, response.getheader("Retry-After")
    )


def _request_headers(api_key: str | None) -> dict:
    headers = {"Content-Type": "application/json"}
    if api_key is not None:
        headers["Authorization"] = f"Bearer {api_key}"
    return headers


def run_load(
    host: str,
    port: int,
    query_tuples: Sequence[Sequence[str]],
    k: int = 10,
    requests: int = 200,
    concurrency: int = 8,
    timeout: float = 60.0,
    arrival: str = "closed",
    rate: float | None = None,
    api_key: str | None = None,
) -> dict:
    """Issue ``requests`` queries round-robin over ``query_tuples``.

    Returns the load report: throughput, latency percentiles (ms),
    per-status counts, error/cached counts and the server's ``/stats``
    snapshot.  ``arrival="open"`` dispatches on a fixed ``rate``
    requests/second schedule instead of the closed loop (see the module
    docstring).
    """
    if not query_tuples:
        raise ValueError("bench-serve needs at least one query tuple")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if arrival not in ("closed", "open"):
        raise ValueError(f'arrival must be "closed" or "open", got {arrival!r}')
    if arrival == "open" and (rate is None or rate <= 0):
        raise ValueError("open-loop arrival needs rate > 0 requests/second")
    tuples = [list(t) for t in query_tuples]
    headers = _request_headers(api_key)
    bodies = [
        json.dumps({"tuple": tuples[index % len(tuples)], "k": k}).encode("utf-8")
        for index in range(requests)
    ]
    outcomes = _Outcomes()

    started = time.perf_counter()
    if arrival == "closed":
        _closed_loop(host, port, bodies, outcomes, headers, concurrency, timeout)
    else:
        _open_loop(host, port, bodies, outcomes, headers, rate, timeout)
    duration = time.perf_counter() - started

    merged = sorted(outcomes.latencies)
    server_stats: dict = {}
    try:
        connection = _connect(host, port, timeout)
        connection.request("GET", "/stats", headers=headers)
        server_stats = json.loads(connection.getresponse().read())
        connection.close()
    except (OSError, http.client.HTTPException, ValueError):
        pass

    completed = outcomes.ok
    return {
        "requests": requests,
        "arrival": arrival,
        "rate_rps": rate,
        "concurrency": concurrency if arrival == "closed" else None,
        "distinct_queries": len(tuples),
        "k": k,
        "duration_seconds": duration,
        "throughput_rps": completed / duration if duration > 0 else 0.0,
        "completed": completed,
        "cached_responses": outcomes.cached,
        "errors": outcomes.errors,
        "transport_errors": outcomes.transport_errors,
        "status_counts": dict(sorted(outcomes.status_counts.items())),
        "retry_after_seen": outcomes.retry_after_seen,
        "latency_ms": {
            "mean": (sum(merged) / len(merged) * 1000) if merged else 0.0,
            "p50": _percentile(merged, 0.50) * 1000,
            "p95": _percentile(merged, 0.95) * 1000,
            "p99": _percentile(merged, 0.99) * 1000,
            "max": merged[-1] * 1000 if merged else 0.0,
        },
        "server_stats": server_stats,
    }


def _closed_loop(
    host: str,
    port: int,
    bodies: list[bytes],
    outcomes: _Outcomes,
    headers: dict,
    concurrency: int,
    timeout: float,
) -> None:
    requests = len(bodies)
    concurrency = max(1, min(concurrency, requests))
    counter = {"next": 0}
    counter_lock = threading.Lock()

    def worker() -> None:
        connection = _connect(host, port, timeout)
        try:
            while True:
                with counter_lock:
                    index = counter["next"]
                    if index >= requests:
                        return
                    counter["next"] = index + 1
                try:
                    # Bytes body: http.client then writes headers + body
                    # in one send, avoiding a Nagle/delayed-ACK stall.
                    _issue(connection, bodies[index], outcomes, headers)
                except (OSError, http.client.HTTPException):
                    outcomes.record_transport_error()
                    connection.close()
                    connection = _connect(host, port, timeout)
        finally:
            connection.close()

    threads = [
        threading.Thread(target=worker, daemon=True) for _ in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def _open_loop(
    host: str,
    port: int,
    bodies: list[bytes],
    outcomes: _Outcomes,
    headers: dict,
    rate: float,
    timeout: float,
) -> None:
    """Fixed-schedule dispatch: request ``i`` starts at ``i / rate``
    seconds, on its own connection, whether or not earlier requests have
    completed — offered load does not adapt to the server."""
    epoch = time.perf_counter()

    def fire(index: int) -> None:
        delay = index / rate - (time.perf_counter() - epoch)
        if delay > 0:
            time.sleep(delay)
        try:
            connection = _connect(host, port, timeout)
        except OSError:
            outcomes.record_transport_error()
            return
        try:
            _issue(connection, bodies[index], outcomes, headers)
        except (OSError, http.client.HTTPException):
            outcomes.record_transport_error()
        finally:
            connection.close()

    threads = [
        threading.Thread(target=fire, args=(index,), daemon=True)
        for index in range(len(bodies))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def bench_serve(
    server: ServingCore,
    query_tuples: Sequence[Sequence[str]],
    k: int = 10,
    requests: int = 200,
    concurrency: int = 8,
    warmup_requests: int = 0,
    timeout: float = 60.0,
    arrival: str = "closed",
    rate: float | None = None,
    api_key: str | None = None,
) -> dict:
    """Run a load pass against an (already started) embedded server.

    ``warmup_requests`` are issued and discarded first — with a cold
    snapshot they absorb lazy deserialization and index builds so the
    measured pass reflects steady-state serving.
    """
    if warmup_requests:
        run_load(
            server.host,
            server.port,
            query_tuples,
            k=k,
            requests=warmup_requests,
            concurrency=min(concurrency, warmup_requests),
            timeout=timeout,
            api_key=api_key,
        )
    report = run_load(
        server.host,
        server.port,
        query_tuples,
        k=k,
        requests=requests,
        concurrency=concurrency,
        timeout=timeout,
        arrival=arrival,
        rate=rate,
        api_key=api_key,
    )
    # Peak-RSS bookkeeping (after the load, i.e. with every lazily
    # mapped shard the workload needed faulted in): proves that N
    # snapshot-mapped workers share pages instead of multiplying RSS.
    report["memory"] = server.memory_stats()
    if server.snapshot_path is not None:
        # The *structural* per-worker footprint: a fresh process that
        # opens the snapshot and touches every section/shard, minus the
        # interpreter+numpy floor.  Live worker RSS is dominated by
        # transient query allocations; this figure isolates what the
        # snapshot format itself costs each worker (v2 maps the tables;
        # v3 additionally maps the vocabulary and graph, pushing it
        # toward the statistics pickle alone).
        from repro.serving.pool import (
            interpreter_floor_rss_bytes,
            snapshot_worker_structural_rss_bytes,
        )

        structural = snapshot_worker_structural_rss_bytes(server.snapshot_path)
        floor = interpreter_floor_rss_bytes()
        report["memory"]["snapshot_worker_structural_rss_bytes"] = structural
        report["memory"]["snapshot_worker_structural_incremental_bytes"] = (
            max(0, structural - floor)
            if structural is not None and floor is not None
            else None
        )
    return report
