"""Load driver for the serve layer (the ``gqbe bench-serve`` subcommand).

Fires ``requests`` HTTP queries at a running :class:`GQBEServer` from
``concurrency`` worker threads (stdlib ``http.client``; one persistent
connection per worker), measures per-request latency, and folds in the
server's own ``/stats`` counters (cache hit rate, batch sizes).  The
report is printed as a table by the CLI and written as JSON for CI to
upload next to the bench-gate artifact.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from collections.abc import Sequence

from repro.serving.server import GQBEServer


def _connect(host: str, port: int, timeout: float) -> http.client.HTTPConnection:
    """A keep-alive connection with Nagle's algorithm off.

    ``http.client`` writes request headers and body in separate segments;
    with Nagle on, the body then waits for the server's delayed ACK —
    a flat ~40ms stall on every request after the first on a persistent
    connection.
    """
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    connection.connect()
    connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return connection


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0 for empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def run_load(
    host: str,
    port: int,
    query_tuples: Sequence[Sequence[str]],
    k: int = 10,
    requests: int = 200,
    concurrency: int = 8,
    timeout: float = 60.0,
) -> dict:
    """Issue ``requests`` queries round-robin over ``query_tuples``.

    Returns the load report: throughput, latency percentiles (ms),
    error/cached counts and the server's ``/stats`` snapshot.
    """
    if not query_tuples:
        raise ValueError("bench-serve needs at least one query tuple")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    concurrency = max(1, min(concurrency, requests))
    tuples = [list(t) for t in query_tuples]
    counter = {"next": 0}
    counter_lock = threading.Lock()
    latencies: list[list[float]] = [[] for _ in range(concurrency)]
    outcomes = {"ok": 0, "cached": 0, "errors": 0}
    outcome_lock = threading.Lock()

    def worker(slot: int) -> None:
        connection = _connect(host, port, timeout)
        try:
            while True:
                with counter_lock:
                    index = counter["next"]
                    if index >= requests:
                        return
                    counter["next"] = index + 1
                # Bytes body: http.client then writes headers + body in one
                # send, avoiding a Nagle/delayed-ACK stall per request.
                body = json.dumps(
                    {"tuple": tuples[index % len(tuples)], "k": k}
                ).encode("utf-8")
                started = time.perf_counter()
                try:
                    connection.request(
                        "POST",
                        "/query",
                        body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    payload = json.loads(response.read())
                    elapsed = time.perf_counter() - started
                    with outcome_lock:
                        if response.status == 200:
                            outcomes["ok"] += 1
                            if payload.get("cached"):
                                outcomes["cached"] += 1
                            latencies[slot].append(elapsed)
                        else:
                            outcomes["errors"] += 1
                except (OSError, http.client.HTTPException, ValueError):
                    with outcome_lock:
                        outcomes["errors"] += 1
                    connection.close()
                    connection = _connect(host, port, timeout)
        finally:
            connection.close()

    threads = [
        threading.Thread(target=worker, args=(slot,), daemon=True)
        for slot in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started

    merged = sorted(value for slot in latencies for value in slot)
    server_stats: dict = {}
    try:
        connection = _connect(host, port, timeout)
        connection.request("GET", "/stats")
        server_stats = json.loads(connection.getresponse().read())
        connection.close()
    except (OSError, http.client.HTTPException, ValueError):
        pass

    completed = outcomes["ok"]
    return {
        "requests": requests,
        "concurrency": concurrency,
        "distinct_queries": len(tuples),
        "k": k,
        "duration_seconds": duration,
        "throughput_rps": completed / duration if duration > 0 else 0.0,
        "completed": completed,
        "cached_responses": outcomes["cached"],
        "errors": outcomes["errors"],
        "latency_ms": {
            "mean": (sum(merged) / len(merged) * 1000) if merged else 0.0,
            "p50": _percentile(merged, 0.50) * 1000,
            "p95": _percentile(merged, 0.95) * 1000,
            "p99": _percentile(merged, 0.99) * 1000,
            "max": merged[-1] * 1000 if merged else 0.0,
        },
        "server_stats": server_stats,
    }


def bench_serve(
    server: GQBEServer,
    query_tuples: Sequence[Sequence[str]],
    k: int = 10,
    requests: int = 200,
    concurrency: int = 8,
    warmup_requests: int = 0,
    timeout: float = 60.0,
) -> dict:
    """Run a load pass against an (already started) embedded server.

    ``warmup_requests`` are issued and discarded first — with a cold
    snapshot they absorb lazy deserialization and index builds so the
    measured pass reflects steady-state serving.
    """
    if warmup_requests:
        run_load(
            server.host,
            server.port,
            query_tuples,
            k=k,
            requests=warmup_requests,
            concurrency=min(concurrency, warmup_requests),
            timeout=timeout,
        )
    report = run_load(
        server.host,
        server.port,
        query_tuples,
        k=k,
        requests=requests,
        concurrency=concurrency,
        timeout=timeout,
    )
    # Peak-RSS bookkeeping (after the load, i.e. with every lazily
    # mapped shard the workload needed faulted in): proves that N
    # snapshot-mapped workers share pages instead of multiplying RSS.
    report["memory"] = server.memory_stats()
    if server.snapshot_path is not None:
        # The *structural* per-worker footprint: a fresh process that
        # opens the snapshot and touches every section/shard, minus the
        # interpreter+numpy floor.  Live worker RSS is dominated by
        # transient query allocations; this figure isolates what the
        # snapshot format itself costs each worker (v2 maps the tables;
        # v3 additionally maps the vocabulary and graph, pushing it
        # toward the statistics pickle alone).
        from repro.serving.pool import (
            interpreter_floor_rss_bytes,
            snapshot_worker_structural_rss_bytes,
        )

        structural = snapshot_worker_structural_rss_bytes(server.snapshot_path)
        floor = interpreter_floor_rss_bytes()
        report["memory"]["snapshot_worker_structural_rss_bytes"] = structural
        report["memory"]["snapshot_worker_structural_incremental_bytes"] = (
            max(0, structural - floor)
            if structural is not None and floor is not None
            else None
        )
    return report
