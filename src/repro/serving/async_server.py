"""Asyncio HTTP frontend with admission control and ``/metrics``.

The default ``gqbe serve`` frontend.  One event loop accepts every
connection (``asyncio.start_server``; stdlib-only, no aiohttp), parses
HTTP/1.1 with keep-alive, and applies admission control *before* any
request is allowed to touch the engine:

1. **Auth** — when ``api_keys`` is set, a request must carry
   ``Authorization: Bearer <key>`` with a listed key (``401``
   otherwise).  The key also names the client for rate limiting.
2. **Rate limit** — per-client token buckets
   (:class:`~repro.serving.limits.RateLimiter`); a client over its
   sustained rate is shed with ``429`` + ``Retry-After``.
3. **Answer cache** — duplicate queries are answered from the
   generation-guarded :class:`~repro.serving.limits.TTLAnswerCache`
   without consuming an admission slot.
4. **Admission gate** — a bounded in-flight counter
   (:class:`~repro.serving.limits.AdmissionGate`); past the high-water
   mark the request is shed with ``429`` + ``Retry-After`` instead of
   queueing unboundedly.
5. **Deadline** — with ``deadline_ms`` set, a request whose engine work
   has not finished inside the deadline is answered ``504`` and its
   batcher slot abandoned (the batcher drops timed-out entries before
   dispatch; a request already inside ``query_batch`` finishes on the
   executor thread and is discarded).

Admitted work runs on a thread pool via ``run_in_executor`` feeding the
exact same :class:`~repro.serving.server.ServingCore` the threaded
frontend uses — answers are byte-identical between frontends (the SLO
gate asserts this per commit).  ``GET /metrics`` exposes the Prometheus
text exposition built by :mod:`repro.serving.metrics`.

Event-loop confinement: the rate limiter and admission gate are only
touched from coroutines on the loop thread and therefore hold no locks;
everything shared with executor threads (cache, metrics, core counters)
is locked.  See ``CON005`` in ``tools/gqbecheck``.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from os import PathLike

from repro.core.gqbe import GQBE
from repro.exceptions import GQBEError
from repro.serving.limits import (
    AdmissionGate,
    RateLimiter,
    TTLAnswerCache,
    retry_after_header,
)
from repro.serving.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
)
from repro.serving.server import (
    DEFAULT_MAX_BODY_BYTES,
    ServingCore,
    _result_payload,
)

logger = logging.getLogger("repro.serving.async")

#: Cap on the request head (request line + headers) before ``431``.
MAX_HEAD_BYTES = 32 * 1024

_ANONYMOUS_CLIENT = "-"


class _HttpError(Exception):
    """An error response decided before (or instead of) routing."""

    def __init__(self, status: int, message: str, headers: dict | None = None):
        self.status = status
        self.message = message
        self.headers = headers or {}
        super().__init__(message)


_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class AsyncGQBEServer(ServingCore):
    """The asyncio frontend over a shared :class:`ServingCore`.

    Parameters beyond :class:`ServingCore`'s:

    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read
        :attr:`port` after :meth:`start`).
    high_water:
        Maximum admitted in-flight requests; past it, ``429``.
    deadline_ms:
        Per-request engine deadline (``None`` disables; the core's
        ``request_timeout`` still caps batcher waits with ``503``).
    rate_limit_rps / rate_limit_burst:
        Per-client token-bucket rate limit (``rate_limit_rps=None``
        disables rate limiting).
    api_keys:
        Optional allowlist; when set, requests must present
        ``Authorization: Bearer <key>``.
    cache_ttl_seconds:
        TTL for answer-cache entries (``None`` keeps pure LRU).
    """

    def __init__(
        self,
        system: GQBE,
        snapshot_path: str | PathLike | None = None,
        host: str = "127.0.0.1",
        port: int = 8080,
        high_water: int = 64,
        deadline_ms: int | None = None,
        rate_limit_rps: float | None = None,
        rate_limit_burst: int = 32,
        api_keys: tuple[str, ...] | list[str] | None = None,
        cache_ttl_seconds: float | None = None,
        cache_size: int = 1024,
        **core_kwargs,
    ) -> None:
        if deadline_ms is not None and deadline_ms < 1:
            raise ValueError(f"deadline_ms must be >= 1 or None, got {deadline_ms}")
        cache = TTLAnswerCache(cache_size, ttl_seconds=cache_ttl_seconds)
        super().__init__(
            system,
            snapshot_path=snapshot_path,
            cache_size=cache_size,
            cache=cache,
            **core_kwargs,
        )
        self._requested_host = host
        self._requested_port = port
        self.high_water = high_water
        self.deadline_ms = deadline_ms
        self.api_keys = frozenset(api_keys) if api_keys else None
        self._gate = AdmissionGate(high_water)
        # Loop-confined like the gate: only coroutines touch it, and the
        # /metrics gauge callback also renders on the loop thread.
        self._ingest_inflight = 0
        self._limiter = (
            RateLimiter(rate_limit_rps, rate_limit_burst)
            if rate_limit_rps is not None
            else None
        )
        # The executor only ever holds admitted work (queries and
        # ingests both consume gate slots), so high_water plus a slot
        # for /admin/reload and one for /admin/compact bounds it
        # exactly; nothing queues here.
        self._executor = ThreadPoolExecutor(
            max_workers=high_water + 2, thread_name_prefix="gqbe-async"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._bound: tuple[str, int] | None = None
        self._shutdown: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._build_metrics()

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def _build_metrics(self) -> None:
        registry = MetricsRegistry()
        self.metrics = registry
        self._m_requests = registry.counter(
            "gqbe_http_requests_total",
            "HTTP requests by path and response code.",
            ("path", "code"),
        )
        self._m_shed = registry.counter(
            "gqbe_http_shed_total",
            "Requests shed before reaching the engine, by reason.",
            ("reason",),
        )
        self._m_timeouts = registry.counter(
            "gqbe_http_timeouts_total",
            "Requests that hit the deadline (504) or batcher timeout (503).",
            ("kind",),
        )
        self._m_internal = registry.counter(
            "gqbe_http_internal_errors_total",
            "Unhandled handler exceptions answered with a 500.",
        )
        self._m_cache_hits = registry.counter(
            "gqbe_cache_hits_total", "Answer-cache hits on /query."
        )
        self._m_cache_misses = registry.counter(
            "gqbe_cache_misses_total", "Answer-cache misses on /query."
        )
        self._m_ingest_requests = registry.counter(
            "gqbe_ingest_requests_total",
            "POST /admin/ingest requests answered 200.",
        )
        self._m_ingest_triples = registry.counter(
            "gqbe_ingest_triples_total",
            "Triples received by /admin/ingest, by outcome.",
            ("result",),
        )
        self._m_compactions = registry.counter(
            "gqbe_compactions_total",
            "Completed delta compactions (manual or threshold-triggered).",
        )
        registry.gauge(
            "gqbe_delta_edges",
            "Edges currently held by the in-memory delta overlay.",
            callback=lambda: len(self._system.pending_delta),
        )
        registry.gauge(
            "gqbe_queue_depth",
            "Admitted in-flight requests (admission gate depth).",
            callback=lambda: self._gate.depth,
        )
        registry.gauge(
            "gqbe_ingest_inflight",
            "In-flight /admin/ingest requests (each holds a gate slot).",
            callback=lambda: self._ingest_inflight,
        )
        registry.gauge(
            "gqbe_queue_high_water",
            "Admission high-water mark (requests past it are shed).",
            callback=lambda: self._gate.high_water,
        )
        registry.gauge(
            "gqbe_cache_entries",
            "Entries currently held by the answer cache.",
            callback=lambda: self._cache.stats()["entries"],
        )
        registry.gauge(
            "gqbe_snapshot_generation",
            "Answer-cache generation (bumps on /admin/reload).",
            callback=lambda: self._cache.generation,
        )
        self._m_batch_size = registry.histogram(
            "gqbe_batch_size",
            "Requests per executed batch window.",
            buckets=BATCH_SIZE_BUCKETS,
        )
        self._m_stage_seconds = registry.histogram(
            "gqbe_stage_seconds",
            "Per-stage latency: execute (engine batch) and total (handler).",
            buckets=LATENCY_BUCKETS,
            label_names=("stage",),
        )

    def _run_batch(self, tuples, k, k_prime):
        started = time.monotonic()
        try:
            return super()._run_batch(tuples, k, k_prime)
        finally:
            self._m_batch_size.observe(len(tuples))
            self._m_stage_seconds.observe(
                time.monotonic() - started, stage="execute"
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """The bound host address."""
        return self._bound[0] if self._bound else self._requested_host

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return self._bound[1] if self._bound else self._requested_port

    def start(self) -> "AsyncGQBEServer":
        """Serve from a background event-loop thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="gqbe-async-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join(timeout=5)
            self._thread = None
            self._startup_error = None
            raise error
        if self._bound is None:
            raise RuntimeError("async server failed to bind within 30s")
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``gqbe serve`` entry point)."""
        try:
            asyncio.run(self._serve_main())
        finally:
            self._executor.shutdown(wait=False)
            self.close_engine()

    def stop(self) -> None:
        """Stop the loop, the executor, the batching worker and the pool."""
        if self._loop is not None and self._shutdown is not None:
            loop, shutdown = self._loop, self._shutdown
            try:
                loop.call_soon_threadsafe(shutdown.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._executor.shutdown(wait=False)
        self.close_engine()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve_main())
        # gqbe: ignore[EXC001] -- thread top level: surface bind/startup
        # failures to start() instead of dying silently on a daemon
        # thread.
        except BaseException as error:  # noqa: BLE001
            self._startup_error = error
        finally:
            self._ready.set()

    async def _serve_main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self._requested_host, self._requested_port
        )
        sock = server.sockets[0].getsockname()
        self._bound = (sock[0], sock[1])
        self._ready.set()
        async with server:
            await self._shutdown.wait()
        self._bound = None

    # ------------------------------------------------------------------
    # connection handling (HTTP/1.1 with keep-alive)
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._handle_one_request(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, TimeoutError):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            # Loop shutdown cancels in-flight connection handlers; close
            # the socket quietly instead of propagating (which makes the
            # streams machinery log every idle keep-alive connection).
            pass
        # gqbe: ignore[EXC001] -- connection top level: a handler bug
        # must kill one connection with a log line, not the accept loop.
        except Exception:  # noqa: BLE001
            logger.exception("unhandled error on connection")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_head(self, reader: asyncio.StreamReader):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(431, "request head too large") from None
        if len(head) > MAX_HEAD_BYTES:
            raise _HttpError(431, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise _HttpError(400, f"malformed request line: {lines[0]!r}") from None
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, target, headers

    async def _read_body(self, reader: asyncio.StreamReader, headers: dict) -> bytes:
        raw_length = headers.get("content-length")
        try:
            length = int(raw_length) if raw_length is not None else 0
        except ValueError:
            raise _HttpError(
                400, f"invalid Content-Length header: {raw_length!r}"
            ) from None
        if length < 0:
            raise _HttpError(400, f"invalid Content-Length header: {raw_length!r}")
        if length > self.max_body_bytes:
            raise _HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit",
            )
        return await reader.readexactly(length) if length else b""

    async def _handle_one_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        started = time.monotonic()
        route = "unknown"
        try:
            try:
                method, target, headers = await self._read_head(reader)
            except asyncio.IncompleteReadError as error:
                if not error.partial:
                    return False  # clean keep-alive close between requests
                raise
            route = target.split("?", 1)[0]
            body = await self._read_body(reader, headers)
            keep_alive = headers.get("connection", "").lower() != "close"
            status, payload, extra = await self._route(
                method, route, headers, body, started
            )
        except _HttpError as error:
            self._count("request_errors")
            status, payload, extra = error.status, {"error": error.message}, error.headers
            keep_alive = False
        # gqbe: ignore[EXC001] -- the top-of-request net: any unhandled
        # failure becomes a logged traceback plus a generic 500 rather
        # than a dropped connection or a leaked stack trace.
        except Exception as error:  # noqa: BLE001 - last-resort 500
            self.note_internal_error(route, error)
            self._m_internal.inc()
            status, payload, extra = 500, {"error": "internal server error"}, {}
            keep_alive = False
        self._m_requests.inc(path=self._metric_route(route), code=str(status))
        self._m_stage_seconds.observe(time.monotonic() - started, stage="total")
        await self._send_response(writer, status, payload, extra, keep_alive)
        return keep_alive

    @staticmethod
    def _metric_route(route: str) -> str:
        """Bound the label cardinality: unknown paths collapse to one."""
        if route in (
            "/query",
            "/healthz",
            "/stats",
            "/metrics",
            "/admin/reload",
            "/admin/ingest",
            "/admin/compact",
        ):
            return route
        return "other"

    async def _send_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        extra_headers: dict,
        keep_alive: bool,
    ) -> None:
        if isinstance(payload, (bytes, str)):
            data = payload.encode("utf-8") if isinstance(payload, str) else payload
            content_type = extra_headers.pop(
                "Content-Type", "text/plain; charset=utf-8"
            )
        else:
            data = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(data)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + data)
        await writer.drain()

    # ------------------------------------------------------------------
    # routing + admission control
    # ------------------------------------------------------------------
    async def _route(
        self, method: str, route: str, headers: dict, body: bytes, started: float
    ) -> tuple[int, object, dict]:
        if method == "GET":
            if route == "/healthz":
                return 200, self.healthz(), {}
            if route == "/stats":
                return 200, self.stats(), {}
            if route == "/metrics":
                return (
                    200,
                    self.metrics.render(),
                    {"Content-Type": self.metrics.content_type},
                )
            return 404, {"error": f"unknown path {route!r}"}, {}
        if method != "POST":
            return 405, {"error": f"method {method} not allowed"}, {}
        if route == "/query":
            return await self._handle_query(headers, body, started)
        if route == "/admin/reload":
            return await self._handle_reload(headers, body)
        if route == "/admin/ingest":
            return await self._handle_ingest(headers, body)
        if route == "/admin/compact":
            return await self._handle_compact(headers)
        return 404, {"error": f"unknown path {route!r}"}, {}

    def _authenticate(self, headers: dict) -> str:
        """Return the client id for rate limiting; raise 401 if denied."""
        auth = headers.get("authorization", "")
        scheme, _, key = auth.partition(" ")
        key = key.strip() if scheme.lower() == "bearer" else ""
        if self.api_keys is not None:
            if key not in self.api_keys:
                self._m_shed.inc(reason="unauthorized")
                raise _HttpError(401, "missing or unknown API key")
            return key
        return key or _ANONYMOUS_CLIENT

    def _admit(self, client_id: str) -> None:
        """Rate-limit check (raises 429 + Retry-After when shed)."""
        if self._limiter is None:
            return
        retry_after = self._limiter.check(client_id)
        if retry_after is not None:
            self._m_shed.inc(reason="rate_limit")
            raise _HttpError(
                429,
                "rate limit exceeded",
                {"Retry-After": retry_after_header(retry_after)},
            )

    def _parse_json(self, body: bytes):
        if not body:
            return None
        try:
            return json.loads(body)
        except ValueError:
            raise _HttpError(400, "request body is not valid JSON") from None

    async def _handle_query(
        self, headers: dict, body: bytes, started: float
    ) -> tuple[int, object, dict]:
        client_id = self._authenticate(headers)
        self._admit(client_id)
        payload = self._parse_json(body)
        try:
            tuples, k, k_prime = self._parse_query_payload(payload)
        except ValueError as error:
            self._count("request_errors")
            return 400, {"error": str(error)}, {}
        key = (tuples, k, k_prime)
        cached = self._cache.get(key)
        if cached is not None:
            self._m_cache_hits.inc()
            self._count("requests_served")
            return 200, {**cached, "cached": True}, {}
        self._m_cache_misses.inc()
        # Admission is checked only after the cache: duplicate-heavy
        # traffic is absorbed without holding a slot.
        if not self._gate.try_enter():
            self._m_shed.inc(reason="queue_full")
            return (
                429,
                {"error": "server is at capacity, retry later"},
                {"Retry-After": retry_after_header(self._gate.retry_after_seconds)},
            )
        self._m_stage_seconds.observe(time.monotonic() - started, stage="admission")
        try:
            return await self._execute_admitted(tuples, k, k_prime, key, started)
        finally:
            self._gate.leave()

    async def _execute_admitted(
        self, tuples, k: int, k_prime, key, started: float
    ) -> tuple[int, object, dict]:
        # The generation must be read before computing: if a snapshot
        # reload lands mid-flight, this answer describes the old graph
        # and the put below is dropped (same contract as the threaded
        # frontend; tests/test_async_serving.py pins it).
        generation = self._cache.generation
        loop = asyncio.get_running_loop()
        deadline_seconds = (
            self.deadline_ms / 1000.0 if self.deadline_ms is not None else None
        )
        if len(tuples) == 1:
            # The batcher enforces its own timeout and *abandons* the
            # entry (it is dropped before dispatch if the deadline fires
            # first), so the executor thread is released promptly.
            budget = self.request_timeout
            if deadline_seconds is not None:
                budget = min(budget, deadline_seconds)
            work = loop.run_in_executor(
                self._executor,
                lambda: self._batcher.submit(
                    tuples[0], k=k, k_prime=k_prime, timeout=budget
                ),
            )
        else:
            work = loop.run_in_executor(
                self._executor,
                lambda: self._run_multi(tuples, k, k_prime),
            )
        try:
            if deadline_seconds is not None:
                remaining = deadline_seconds - (time.monotonic() - started)
                result = await asyncio.wait_for(work, timeout=max(remaining, 0.001))
            else:
                result = await work
        except (TimeoutError, asyncio.TimeoutError):
            # Deadline expiry: the batcher entry was (or will be)
            # abandoned; a multi-tuple query keeps its executor thread
            # until the engine returns, but the response is discarded.
            self._count("request_errors")
            if deadline_seconds is not None:
                self._m_timeouts.inc(kind="deadline")
                return (
                    504,
                    {"error": f"deadline of {self.deadline_ms}ms exceeded"},
                    {},
                )
            self._m_timeouts.inc(kind="request_timeout")
            return 503, {"error": "timed out waiting for execution"}, {}
        except GQBEError as error:
            self._count("request_errors")
            return 400, {"error": str(error), "type": type(error).__name__}, {}
        body = {
            "query": [list(t) for t in tuples],
            "k": k,
            "k_prime": k_prime,
            "generation": generation,
            **_result_payload(result),
        }
        self._cache.put(key, body, generation)
        self._count("requests_served")
        return 200, {**body, "cached": False}, {}

    def _run_multi(self, tuples, k, k_prime):
        # Multi-tuple (merged-MQG) queries are rare and heavier; they run
        # directly under the execution lock instead of the batcher.
        with self._exec_lock:
            return self._system.query_multi(
                [list(t) for t in tuples], k=k, k_prime=k_prime
            )

    async def _handle_reload(
        self, headers: dict, body: bytes
    ) -> tuple[int, object, dict]:
        self._authenticate(headers)
        payload = self._parse_json(body)
        if not isinstance(payload, dict) or not isinstance(
            payload.get("snapshot"), str
        ):
            return 400, {"error": 'body must be {"snapshot": "<path>"}'}, {}
        loop = asyncio.get_running_loop()
        try:
            generation = await loop.run_in_executor(
                self._executor, lambda: self.load_snapshot(payload["snapshot"])
            )
        except GQBEError as error:
            return 400, {"error": str(error), "type": type(error).__name__}, {}
        return (
            200,
            {
                "reloaded": True,
                "snapshot": payload["snapshot"],
                "generation": generation,
            },
            {},
        )

    async def _handle_ingest(
        self, headers: dict, body: bytes
    ) -> tuple[int, object, dict]:
        client_id = self._authenticate(headers)
        self._admit(client_id)
        payload = self._parse_json(body)
        # Ingest shares the executor with queries, so it must consume an
        # admission slot too — otherwise a burst of ingests could occupy
        # every worker thread while the gate still reports capacity.
        if not self._gate.try_enter():
            self._m_shed.inc(reason="queue_full")
            return (
                429,
                {"error": "server is at capacity, retry later"},
                {"Retry-After": retry_after_header(self._gate.retry_after_seconds)},
            )
        self._ingest_inflight += 1
        loop = asyncio.get_running_loop()
        try:
            status, response = await loop.run_in_executor(
                self._executor, lambda: self.handle_ingest(payload)
            )
        finally:
            self._ingest_inflight -= 1
            self._gate.leave()
        if status == 200:
            self._m_ingest_requests.inc()
            if response["applied"]:
                self._m_ingest_triples.inc(
                    amount=response["applied"], result="applied"
                )
            if response["duplicates"]:
                self._m_ingest_triples.inc(
                    amount=response["duplicates"], result="duplicate"
                )
        return status, response, {}

    async def _handle_compact(self, headers: dict) -> tuple[int, object, dict]:
        self._authenticate(headers)
        loop = asyncio.get_running_loop()
        status, response = await loop.run_in_executor(
            self._executor, lambda: self.handle_compact()
        )
        return status, response, {}

    def _note_compaction(self) -> None:
        self._m_compactions.inc()

    # ------------------------------------------------------------------
    # info endpoints
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        body = super().stats()
        body["admission"] = self._gate.stats()
        if self._limiter is not None:
            body["rate_limit"] = self._limiter.stats()
        body["frontend"] = "async"
        return body
