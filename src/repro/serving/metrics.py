"""Zero-dependency Prometheus-text metrics for the serving frontend.

The async frontend (:mod:`repro.serving.async_server`) exposes a
``GET /metrics`` endpoint in the Prometheus text exposition format
(version 0.0.4) so a standard scraper can watch queue depth, batch
sizes, cache effectiveness, per-stage latency and the shed/timeout/error
counters without any client library.  Everything here is stdlib.

Three metric kinds, the Prometheus core set:

* :class:`Counter` — monotonically increasing totals, optionally split
  by label (``gqbe_http_requests_total{path="/query",code="200"}``);
* :class:`Gauge` — a value that goes up and down (queue depth).  A gauge
  may carry a ``callback`` so its value is *pulled* at render time from
  live state instead of being pushed on every change;
* :class:`Histogram` — bucketed observations with ``_bucket``/``_sum``/
  ``_count`` series (request latency per stage, batch sizes).

Thread safety: metrics are updated from the event loop, from executor
threads and from the batcher worker thread, so every mutation and every
render holds the metric's lock.  :func:`parse_prometheus_text` is the
inverse of :meth:`MetricsRegistry.render` — the SLO gate
(``benchmarks/check_serve_slo.py``) uses it to reconcile the server's
counters against the load generator's ground truth.
"""

from __future__ import annotations

import math
import threading
from collections.abc import Callable, Sequence

#: Default latency buckets (seconds): 1ms .. 10s, roughly log-spaced.
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default batch-size buckets (requests per executed batch).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def _format_number(value: float) -> str:
    """Prometheus-style rendering: integers without a trailing ``.0``."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class _Metric:
    """Shared name/help/label plumbing; subclasses render themselves."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str] = ()):
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()

    def _key(self, labels: dict[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _labels_of_key(self, key: tuple[str, ...]) -> dict[str, str]:
        return dict(zip(self.label_names, key))

    def header(self) -> list[str]:
        return [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def render(self) -> list[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing total, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str] = ()):
        super().__init__(name, help_text, label_names)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """The sum over every labelset (for quick assertions)."""
        with self._lock:
            return sum(self._values.values())

    def render(self) -> list[str]:
        lines = self.header()
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.label_names:
            items = [((), 0.0)]
        for key, value in items:
            labels = _render_labels(self._labels_of_key(key))
            lines.append(f"{self.name}{labels} {_format_number(value)}")
        return lines


class Gauge(_Metric):
    """A value that can go up and down; optionally pulled via callback."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        callback: Callable[[], float] | None = None,
    ):
        super().__init__(name, help_text, ())
        self._value = 0.0
        self._callback = callback

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        with self._lock:
            return self._value

    def render(self) -> list[str]:
        return [*self.header(), f"{self.name} {_format_number(self.value())}"]


class Histogram(_Metric):
    """Cumulative-bucket observations with ``_sum`` and ``_count``."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        label_names: Sequence[str] = (),
    ):
        super().__init__(name, help_text, label_names)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.bounds = bounds
        #: labelset -> ([per-bucket counts..., +Inf count], sum)
        self._series: dict[tuple[str, ...], tuple[list[int], float]] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            counts, total = self._series.get(key, (None, 0.0))
            if counts is None:
                counts = [0] * (len(self.bounds) + 1)
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    counts[index] += 1
            counts[-1] += 1  # the +Inf bucket counts every observation
            self._series[key] = (counts, total + value)

    def count(self, **labels: str) -> int:
        key = self._key(labels)
        with self._lock:
            counts, _total = self._series.get(key, (None, 0.0))
            return counts[-1] if counts else 0

    def render(self) -> list[str]:
        lines = self.header()
        with self._lock:
            items = sorted(
                (key, (list(counts), total))
                for key, (counts, total) in self._series.items()
            )
        for key, (counts, total) in items:
            base_labels = self._labels_of_key(key)
            for index, bound in enumerate((*self.bounds, math.inf)):
                labels = _render_labels({**base_labels, "le": _format_number(bound)})
                lines.append(f"{self.name}_bucket{labels} {counts[index]}")
            labels = _render_labels(base_labels)
            lines.append(f"{self.name}_sum{labels} {_format_number(total)}")
            lines.append(f"{self.name}_count{labels} {counts[-1]}")
        return lines


class MetricsRegistry:
    """An ordered collection of metrics with one text exposition."""

    content_type = "text/plain; version=0.0.4; charset=utf-8"

    def __init__(self) -> None:
        self._metrics: list[_Metric] = []
        self._lock = threading.Lock()

    def register(self, metric: _Metric) -> _Metric:
        with self._lock:
            if any(existing.name == metric.name for existing in self._metrics):
                raise ValueError(f"metric {metric.name!r} already registered")
            self._metrics.append(metric)
        return metric

    def counter(self, name: str, help_text: str, label_names: Sequence[str] = ()) -> Counter:
        return self.register(Counter(name, help_text, label_names))  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        help_text: str,
        callback: Callable[[], float] | None = None,
    ) -> Gauge:
        return self.register(Gauge(name, help_text, callback))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        label_names: Sequence[str] = (),
    ) -> Histogram:
        return self.register(Histogram(name, help_text, buckets, label_names))  # type: ignore[return-value]

    def render(self) -> str:
        with self._lock:
            metrics = list(self._metrics)
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


def parse_prometheus_text(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse an exposition back into ``{(name, sorted labels): value}``.

    The inverse of :meth:`MetricsRegistry.render`, used by the SLO gate
    and the tests to reconcile served counters with ground truth.  Label
    values may contain the standard escapes (``\\\\``, ``\\"``, ``\\n``).
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, labels, value = _parse_sample_line(line)
        samples[(name, tuple(sorted(labels.items())))] = value
    return samples


def _parse_sample_line(line: str) -> tuple[str, dict[str, str], float]:
    if "{" in line:
        name, _, rest = line.partition("{")
        label_text, _, value_text = rest.rpartition("}")
        labels = _parse_labels(label_text)
    else:
        name, _, value_text = line.rpartition(" ")
        labels = {}
    value_text = value_text.strip()
    value = math.inf if value_text == "+Inf" else float(value_text)
    return name.strip(), labels, value


def _parse_labels(label_text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    index = 0
    while index < len(label_text):
        equals = label_text.index("=", index)
        name = label_text[index:equals].strip(" ,")
        assert label_text[equals + 1] == '"', f"malformed labels: {label_text!r}"
        cursor = equals + 2
        value_chars: list[str] = []
        while label_text[cursor] != '"':
            char = label_text[cursor]
            if char == "\\":
                cursor += 1
                escaped = label_text[cursor]
                char = {"n": "\n", '"': '"', "\\": "\\"}.get(escaped, escaped)
            value_chars.append(char)
            cursor += 1
        labels[name] = "".join(value_chars)
        index = cursor + 1
    return labels
