"""Threaded HTTP frontend serving GQBE queries from one warm snapshot.

``gqbe serve --snapshot data.snap`` wires this up from the CLI; tests and
the ``bench-serve`` load driver embed :class:`GQBEServer` directly.  The
server is deliberately stdlib-only (``http.server``): one daemon thread
runs a ``ThreadingHTTPServer`` (a handler thread per connection), handler
threads funnel single-tuple queries through the shared
:class:`~repro.serving.batching.QueryBatcher` (so concurrent requests
are executed as one :meth:`~repro.core.gqbe.GQBE.query_batch`), and a
generation-guarded :class:`~repro.serving.cache.AnswerCache` short-cuts
repeat queries entirely.

Endpoints
---------
``POST /query``
    Body ``{"tuple": ["Jerry Yang", "Yahoo!"], "k": 10}`` for a
    single-tuple query, or ``{"tuples": [[...], [...]], ...}`` for a
    multi-tuple (merged-MQG) query; optional ``k_prime``.  Responds with
    the ranked answers, timing, and whether the answer came from cache.
``GET /healthz``
    Liveness plus snapshot metadata (cheap: never materializes lazy
    snapshot sections).
``GET /stats``
    Serve counters: cache hits/misses, batch sizes, request totals.
``POST /admin/reload``
    Body ``{"snapshot": "path"}`` — load a new snapshot, swap it in and
    invalidate the answer cache (in-flight computations against the old
    snapshot can no longer be cached; see
    :mod:`repro.serving.cache`).
``POST /admin/ingest``
    Body ``{"triples": [["s", "label", "o"], ...]}`` — apply new edges
    to the live graph as an in-memory delta overlay; queries see the
    union immediately (the answer cache is invalidated, so no response
    after the ack describes the pre-ingest graph).  The delta is
    volatile until compacted.
``POST /admin/compact``
    Fold (base snapshot + delta) into a fresh on-disk generation next to
    the base (``<snapshot>.genN``) and swap it in — the LSM-style
    flush.  ``--compact-threshold`` triggers the same fold automatically
    in the background once the delta grows past it.
"""

from __future__ import annotations

import json
import logging
import os
import shutil
import threading
import time
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from os import PathLike

from repro.core.answer import QueryResult
from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.exceptions import GQBEError
from repro.serving.batching import QueryBatcher
from repro.serving.cache import AnswerCache
from repro.storage.generations import next_generation_path, prune_generations
from repro.storage.snapshot import GraphStore

logger = logging.getLogger("repro.serving")

#: Default cap on ``POST`` request bodies.  Query payloads are a few
#: hundred bytes; anything near the cap is abuse or a bug, and an
#: unbounded ``Content-Length`` would let one request allocate arbitrary
#: memory.
DEFAULT_MAX_BODY_BYTES = 4 * 1024 * 1024


class _RequestBodyError(Exception):
    """A request body that must be rejected before reading/parsing it."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        self.message = message
        super().__init__(message)


def _result_payload(result: QueryResult) -> dict:
    """The JSON-serializable body describing one query result."""
    return {
        "answers": [
            {
                "rank": answer.rank,
                "entities": list(answer.entities),
                "score": answer.score,
                "structure_score": answer.structure_score,
                "content_score": answer.content_score,
            }
            for answer in result.answers
        ],
        "mqg_edges": result.mqg.num_edges,
        "nodes_evaluated": result.statistics.nodes_evaluated,
        "timing": {
            "discovery_seconds": result.discovery_seconds,
            "processing_seconds": result.processing_seconds,
            "total_seconds": result.total_seconds,
        },
    }


class ServingCore:
    """The frontend-agnostic serving engine: cache, batcher, pool, reload.

    Both HTTP frontends — the threaded :class:`GQBEServer` below and the
    asyncio :class:`~repro.serving.async_server.AsyncGQBEServer` — are
    thin transports over this core, so answers, caching semantics and
    reload behavior are identical regardless of which frontend accepted
    the connection.

    Parameters
    ----------
    system:
        The (already built or snapshot-loaded) engine to serve.
    snapshot_path:
        Recorded for ``/healthz`` and reload bookkeeping (optional).
    batch_window_seconds / max_batch:
        Micro-batching knobs (see :class:`~repro.serving.batching.QueryBatcher`).
    cache_size:
        LRU answer-cache capacity (``0`` disables caching).
    request_timeout:
        Per-request cap on waiting for a batch slot plus execution.
    max_body_bytes:
        Cap on ``POST`` request bodies.  A larger declared
        ``Content-Length`` is refused with ``413`` before any byte of
        the body is read; a malformed ``Content-Length`` is a ``400``.
    workers:
        Process-pool width for batch execution (``gqbe serve
        --workers``).  With ``workers > 1`` every multi-query batching
        window is sharded across a
        :class:`~repro.serving.pool.WorkerPool` whose workers each open
        the served snapshot (shared mapped pages with a v2 snapshot),
        bypassing the GIL for CPU-bound explorations; ``1`` keeps the
        inline single-process path.
    cache:
        An :class:`~repro.serving.cache.AnswerCache` instance to use
        instead of constructing one from ``cache_size`` — the async
        frontend passes a :class:`~repro.serving.limits.TTLAnswerCache`
        here.
    compact_threshold:
        Trigger a background compaction once the in-memory delta holds
        at least this many edges (``gqbe serve --compact-threshold``).
        ``None`` (the default) leaves compaction to explicit
        ``POST /admin/compact`` calls.
    """

    def __init__(
        self,
        system: GQBE,
        snapshot_path: str | PathLike | None = None,
        batch_window_seconds: float = 0.005,
        max_batch: int = 64,
        cache_size: int = 1024,
        request_timeout: float = 60.0,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        workers: int = 1,
        cache: AnswerCache | None = None,
        compact_threshold: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be >= 1, got {max_body_bytes}")
        if compact_threshold is not None and compact_threshold < 1:
            raise ValueError(
                f"compact_threshold must be >= 1, got {compact_threshold}"
            )
        self._system = system
        self.snapshot_path = str(snapshot_path) if snapshot_path is not None else None
        self.request_timeout = request_timeout
        self.max_body_bytes = max_body_bytes
        self.workers = workers
        self.compact_threshold = compact_threshold
        self._exec_lock = threading.Lock()
        # Mutations (ingest, compaction, reload) serialize on this outer
        # lock; each briefly takes ``_exec_lock`` inside it for the
        # actual swap.  Lock order is always mutate -> exec, never the
        # reverse — query execution takes only ``_exec_lock``.
        self._mutate_lock = threading.Lock()
        self._cache = cache if cache is not None else AnswerCache(cache_size)
        self._pool = self._make_pool()
        self._batcher = QueryBatcher(
            self._run_batch,
            window_seconds=batch_window_seconds,
            max_batch=max_batch,
            pool=self._pool,
        )
        self._started_at = time.monotonic()
        # Handler threads are concurrent; counter updates take this lock
        # (a bare += is a lost-update race across threads).
        self._counter_lock = threading.Lock()
        self.requests_served = 0
        self.request_errors = 0
        self.internal_errors = 0
        self.ingest_requests = 0
        self.triples_applied = 0
        self.triples_duplicate = 0
        self.compactions = 0
        self._compact_thread: threading.Thread | None = None

    def _count(self, counter: str) -> None:
        with self._counter_lock:
            setattr(self, counter, getattr(self, counter) + 1)

    def note_internal_error(self, path: str, error: BaseException) -> None:
        """Record an unhandled handler exception: log it server-side only.

        The client gets an opaque 500 body — exception types/messages can
        leak internals (paths, snapshot layout, library versions) and are
        of no use to a well-behaved client.  ``/stats`` carries the count.
        """
        logger.error(
            "unhandled error serving POST %s", path, exc_info=error
        )
        self._count("internal_errors")
        self._count("request_errors")

    def _make_pool(self):
        """Build the worker pool for the current system (None if workers=1)."""
        if self.workers <= 1:
            return None
        from repro.serving.pool import WorkerPool

        return WorkerPool(
            workers=self.workers,
            snapshot_path=self.snapshot_path,
            system=self._system if self.snapshot_path is None else None,
            config=replace(self._system.config, execution="inline"),
            # Spawned workers reopen the snapshot from disk, which lacks
            # any live delta — they replay it at init so pooled answers
            # match the parent's (base + delta) union exactly.
            delta_triples=(
                self._system.pending_delta or None
                if self.snapshot_path is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(cls, path: str | PathLike, **kwargs):
        """Build a server around :meth:`GQBE.from_snapshot`."""
        return cls(GQBE.from_snapshot(path), snapshot_path=path, **kwargs)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def system(self) -> GQBE:
        """The engine currently serving queries."""
        return self._system

    def close_engine(self) -> None:
        """Shut the batching worker and the pool down (frontends call
        this from their own ``stop``)."""
        self._batcher.close()
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # ------------------------------------------------------------------
    # snapshot reloads
    # ------------------------------------------------------------------
    def load_snapshot(self, path: str | PathLike) -> int:
        """Swap in a new snapshot; returns the new cache generation.

        The swap holds the execution lock, so it serializes against any
        running batch; requests computed against the old snapshot can no
        longer enter the cache because their recorded generation is
        outdated after :meth:`AnswerCache.invalidate`.  Any live delta
        overlay is discarded: a reload is an explicit statement that
        ``path`` is the truth.
        """
        with self._mutate_lock:
            return self._load_snapshot_locked(path)

    def _load_snapshot_locked(self, path: str | PathLike) -> int:
        """:meth:`load_snapshot` body; caller holds ``_mutate_lock``."""
        graph_store = GraphStore.load(path)
        config = GQBEConfig(
            intern_entities=graph_store.intern_entities,
            columnar=graph_store.columnar,
            # Engine-selection knobs that are not snapshot properties
            # survive the reload; everything else re-derives from the
            # new snapshot's flags.
            native_kernels=self._system.config.native_kernels,
        )
        system = GQBE(config=config, graph_store=graph_store)
        system._snapshot_path = str(path)
        old_pool = None
        with self._exec_lock:
            self._system = system
            self.snapshot_path = str(path)
            if self.workers > 1:
                # Rebuild the pool over the new snapshot, under the same
                # lock as the system swap so two concurrent reloads
                # cannot interleave (one would wire a just-closed pool
                # into the batcher and leak the other).
                old_pool = self._pool
                self._pool = self._make_pool()
                self._batcher.pool = self._pool
        if old_pool is not None:
            # Closed outside the lock: shutdown waits for in-flight
            # pooled batches to drain (their results are dropped by the
            # cache's generation guard, same as inline in-flight work).
            old_pool.close()
        return self._cache.invalidate()

    # ------------------------------------------------------------------
    # live ingest + compaction
    # ------------------------------------------------------------------
    @staticmethod
    def _parse_ingest_payload(payload) -> list[tuple[str, str, str]]:
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        raw = payload.get("triples")
        if not isinstance(raw, list) or not raw:
            raise ValueError(
                '"triples" must be a non-empty list of '
                "[subject, label, object] triples"
            )
        triples: list[tuple[str, str, str]] = []
        for position, entry in enumerate(raw):
            if (
                not isinstance(entry, list)
                or len(entry) != 3
                or not all(isinstance(item, str) and item for item in entry)
            ):
                raise ValueError(
                    f"triple #{position} must be a [subject, label, object] "
                    "list of non-empty strings"
                )
            triples.append((entry[0], entry[1], entry[2]))
        return triples

    def handle_ingest(self, payload) -> tuple[int, dict]:
        """Apply one ``POST /admin/ingest`` body; returns ``(status, body)``.

        The triples land in the engine's in-memory delta overlay under
        the execution lock, so no query batch runs against a
        half-applied state; the answer cache is invalidated afterwards,
        so every response sent after this ack reflects the new edges.
        """
        try:
            triples = self._parse_ingest_payload(payload)
        except ValueError as error:
            self._count("request_errors")
            return 400, {"error": str(error)}
        self._count("ingest_requests")
        old_pool = None
        with self._mutate_lock:
            with self._exec_lock:
                try:
                    result = self._system.ingest(triples)
                except GQBEError as error:
                    self._count("request_errors")
                    return 400, {"error": str(error), "type": type(error).__name__}
                if result["applied"] and self.workers > 1:
                    # Pool workers hold pre-ingest state; rebuild them
                    # with the updated delta replay, under the same lock
                    # as the mutation (mirrors load_snapshot).
                    old_pool = self._pool
                    self._pool = self._make_pool()
                    self._batcher.pool = self._pool
            if old_pool is not None:
                old_pool.close()
            generation = (
                self._cache.invalidate()
                if result["applied"]
                else self._cache.generation
            )
        with self._counter_lock:
            self.triples_applied += result["applied"]
            self.triples_duplicate += result["duplicates"]
        compacting = self._maybe_start_compaction(result["delta_edges"])
        return 200, {
            "ingested": True,
            "applied": result["applied"],
            "duplicates": result["duplicates"],
            "delta_edges": result["delta_edges"],
            "generation": generation,
            "compacting": compacting,
        }

    def compact(self) -> dict:
        """Fold (base + delta) into a fresh snapshot generation and swap it in.

        The new generation is written to ``<target>.tmp`` and moved into
        place with one atomic ``os.replace`` — a crash mid-write leaves
        only ``.tmp`` wreckage, which
        :func:`~repro.storage.generations.resolve_latest_generation`
        sweeps on the next start.  After the swap the two newest
        generations are kept and older ones pruned (never the root).
        """
        if self.snapshot_path is None:
            raise GQBEError(
                "compaction requires a snapshot-backed server "
                "(started from --snapshot)"
            )
        with self._mutate_lock:
            graph_store = self._system.graph_store
            delta_edges = len(graph_store.delta_triples)
            target = next_generation_path(self.snapshot_path)
            tmp = target.with_name(target.name + ".tmp")
            # The compacted generation keeps the store's own layout: a
            # columnar+interned store flushes to a v3 directory even if
            # the base was a v1 file (load auto-detects either).
            fmt = (
                "v3"
                if graph_store.columnar and graph_store.intern_entities
                else "v1"
            )
            try:
                # Held across the save so no query can trigger lazy
                # section materialization while the writer iterates the
                # store (writes still serialize via _mutate_lock).
                with self._exec_lock:
                    graph_store.save(tmp, format=fmt)
            # gqbe: ignore[EXC001] -- cleanup-and-reraise: whatever
            # interrupted the save (including KeyboardInterrupt), the
            # half-written tmp dir must not survive to be mistaken for
            # a generation; the exception itself propagates unchanged.
            except BaseException:
                if tmp.is_dir():
                    shutil.rmtree(tmp, ignore_errors=True)
                elif tmp.exists():
                    tmp.unlink()
                raise
            os.replace(tmp, target)
            generation = self._load_snapshot_locked(target)
            prune_generations(target, keep=2)
        self._count("compactions")
        self._note_compaction()
        return {
            "compacted": True,
            "snapshot": str(target),
            "generation": generation,
            "delta_edges": delta_edges,
            "format": fmt,
        }

    def handle_compact(self) -> tuple[int, dict]:
        """Run :meth:`compact` for ``POST /admin/compact``."""
        try:
            return 200, self.compact()
        except GQBEError as error:
            self._count("request_errors")
            return 400, {"error": str(error), "type": type(error).__name__}

    def _note_compaction(self) -> None:
        """Hook for frontends to observe completed compactions (metrics)."""

    def _maybe_start_compaction(self, delta_edges: int) -> bool:
        """Kick off a background compaction when the delta is big enough.

        Returns whether a compaction is running (just started or already
        in flight); at most one background compaction exists at a time.
        """
        if (
            self.compact_threshold is None
            or self.snapshot_path is None
            or delta_edges < self.compact_threshold
        ):
            return False
        with self._counter_lock:
            if self._compact_thread is not None and self._compact_thread.is_alive():
                return True
            thread = threading.Thread(
                target=self._background_compact, name="gqbe-compact", daemon=True
            )
            self._compact_thread = thread
        thread.start()
        return True

    def _background_compact(self) -> None:
        try:
            self.compact()
        # gqbe: ignore[EXC001] -- a failed background compaction must
        # not take the serving process down; the delta stays live and
        # queryable, and a later ingest retries the flush.
        except Exception:  # noqa: BLE001
            logger.exception("background compaction failed")

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def _run_batch(self, tuples, k, k_prime):
        """Batcher runner: one ``query_batch`` under the execution lock.

        Falls back to per-query execution when the batch raises (e.g. one
        tuple references an unknown entity) so each caller receives its
        own result or its own error.
        """
        with self._exec_lock:
            # Read the system inside the lock: a snapshot reload swaps it
            # under the same lock, so a batch never computes against the
            # pre-reload engine after the reload was acknowledged.
            system = self._system
            try:
                return system.query_batch(list(tuples), k=k, k_prime=k_prime)
            except GQBEError:
                results: list[QueryResult | BaseException] = []
                for query_tuple in tuples:
                    try:
                        results.append(system.query(query_tuple, k=k, k_prime=k_prime))
                    except GQBEError as error:
                        results.append(error)
                return results

    @staticmethod
    def _parse_query_payload(payload) -> tuple[tuple[tuple[str, ...], ...], int, int | None]:
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        if ("tuple" in payload) == ("tuples" in payload):
            raise ValueError('pass exactly one of "tuple" or "tuples"')
        raw = [payload["tuple"]] if "tuple" in payload else payload["tuples"]
        if not isinstance(raw, list) or not raw:
            raise ValueError('"tuples" must be a non-empty list of entity tuples')
        tuples = []
        for entry in raw:
            if (
                not isinstance(entry, list)
                or not entry
                or not all(isinstance(item, str) for item in entry)
            ):
                raise ValueError(
                    "each query tuple must be a non-empty list of entity strings"
                )
            tuples.append(tuple(entry))
        k = payload.get("k", 10)
        k_prime = payload.get("k_prime")
        if not isinstance(k, int) or k < 1:
            raise ValueError(f'"k" must be a positive integer, got {k!r}')
        if k_prime is not None and (not isinstance(k_prime, int) or k_prime < 1):
            raise ValueError(f'"k_prime" must be a positive integer, got {k_prime!r}')
        return tuple(tuples), k, k_prime

    def handle_query(self, payload) -> tuple[int, dict]:
        """Answer one ``POST /query`` body; returns ``(status, response)``.

        Exposed as a method so tests can exercise request handling
        without sockets.
        """
        try:
            tuples, k, k_prime = self._parse_query_payload(payload)
        except ValueError as error:
            self._count("request_errors")
            return 400, {"error": str(error)}
        key = (tuples, k, k_prime)
        cached = self._cache.get(key)
        if cached is not None:
            self._count("requests_served")
            return 200, {**cached, "cached": True}
        # The generation must be read before computing: if a snapshot
        # reload lands mid-flight, this answer describes the old graph
        # and the put below is dropped.
        generation = self._cache.generation
        try:
            if len(tuples) == 1:
                result = self._batcher.submit(
                    tuples[0], k=k, k_prime=k_prime, timeout=self.request_timeout
                )
            else:
                # Multi-tuple (merged-MQG) queries are rare and heavier;
                # they run directly under the execution lock instead of
                # passing through the single-tuple batcher.
                with self._exec_lock:
                    result = self._system.query_multi(
                        [list(t) for t in tuples], k=k, k_prime=k_prime
                    )
        except GQBEError as error:
            self._count("request_errors")
            return 400, {"error": str(error), "type": type(error).__name__}
        except TimeoutError as error:
            self._count("request_errors")
            return 503, {"error": str(error)}
        body = {
            "query": [list(t) for t in tuples],
            "k": k,
            "k_prime": k_prime,
            "generation": generation,
            **_result_payload(result),
        }
        self._cache.put(key, body, generation)
        self._count("requests_served")
        return 200, {**body, "cached": False}

    # ------------------------------------------------------------------
    # info endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """The ``/healthz`` body (cheap; no lazy sections materialized)."""
        meta = self._system.graph_store.meta()
        return {
            "status": "ok",
            "snapshot": self.snapshot_path,
            "generation": self._cache.generation,
            "delta_edges": len(self._system.pending_delta),
            "graph": {
                "nodes": meta.get("num_nodes"),
                "edges": meta.get("num_edges"),
                "labels": meta.get("num_labels"),
            },
            "engine": {
                "intern_entities": bool(meta.get("intern_entities")),
                "columnar": bool(meta.get("columnar")),
            },
        }

    def stats(self) -> dict:
        """The ``/stats`` body."""
        body = {
            "uptime_seconds": time.monotonic() - self._started_at,
            "requests_served": self.requests_served,
            "request_errors": self.request_errors,
            "internal_errors": self.internal_errors,
            "cache": self._cache.stats(),
            "batcher": self._batcher.stats(),
            "ingest": {
                "requests": self.ingest_requests,
                "triples_applied": self.triples_applied,
                "triples_duplicate": self.triples_duplicate,
                "delta_edges": len(self._system.pending_delta),
                "compactions": self.compactions,
                "compact_threshold": self.compact_threshold,
            },
        }
        if self._pool is not None:
            body["pool"] = self._pool.stats()
        return body

    def memory_stats(self) -> dict:
        """Parent and per-worker RSS (Linux procfs; best-effort elsewhere).

        ``gqbe bench-serve --json`` records this next to the throughput
        numbers: with a v2 mapped snapshot the per-worker RSS stays
        nearly flat as ``--workers`` grows, because the shard pages are
        shared, not copied.  The ``peak`` fields are ``VmHWM`` —
        high-water marks, immune to pages being reclaimed before
        sampling.
        """
        from repro.serving.pool import (
            interpreter_floor_rss_bytes,
            parent_peak_rss_bytes,
            parent_rss_bytes,
        )

        worker_rss = (
            self._pool.worker_rss_bytes() if self._pool is not None else []
        )
        worker_peak = (
            self._pool.worker_peak_rss_bytes() if self._pool is not None else []
        )
        # The interpreter+numpy floor turns absolute worker RSS into the
        # *incremental* cost of serving this graph — the figure the
        # mapped snapshot formats (v2 tables, v3 vocabulary+graph) drive
        # toward zero.  Only measured when there are workers to compare.
        floor = interpreter_floor_rss_bytes() if worker_rss else None
        incremental = (
            [max(0, rss - floor) for rss in worker_rss] if floor else []
        )
        return {
            "workers": self.workers,
            "parent_rss_bytes": parent_rss_bytes(),
            "parent_peak_rss_bytes": parent_peak_rss_bytes(),
            "worker_rss_bytes": worker_rss,
            "worker_peak_rss_bytes": worker_peak,
            "total_worker_rss_bytes": sum(worker_rss),
            "total_worker_peak_rss_bytes": sum(worker_peak),
            "interpreter_floor_rss_bytes": floor,
            "worker_incremental_rss_bytes": incremental,
            "total_worker_incremental_rss_bytes": sum(incremental),
        }


class GQBEServer(ServingCore):
    """One warm GQBE system behind a threaded HTTP server.

    The original (threaded) frontend: one daemon thread runs a
    ``ThreadingHTTPServer`` — a handler thread per connection — over the
    shared :class:`ServingCore`.  ``gqbe serve --frontend threaded``
    selects it; the asyncio frontend
    (:class:`~repro.serving.async_server.AsyncGQBEServer`) is the
    default and adds admission control and ``/metrics``.

    Takes every :class:`ServingCore` parameter plus ``host`` / ``port``
    (``port=0`` picks an ephemeral port; read :attr:`port` after
    construction).
    """

    def __init__(
        self,
        system: GQBE,
        snapshot_path: str | PathLike | None = None,
        host: str = "127.0.0.1",
        port: int = 8080,
        **core_kwargs,
    ) -> None:
        super().__init__(system, snapshot_path=snapshot_path, **core_kwargs)
        self._http = _Http((host, port), _Handler)
        self._http.daemon_threads = True
        self._http.app = self  # type: ignore[attr-defined] - handler backref
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        """The bound host address."""
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return self._http.server_address[1]

    def start(self) -> "GQBEServer":
        """Serve in a background daemon thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="gqbe-serve", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``gqbe serve`` entry point)."""
        self._http.serve_forever()

    def stop(self) -> None:
        """Shut the HTTP listener, the batching worker and the pool down."""
        self._http.shutdown()
        self._http.server_close()
        self.close_engine()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


class _Http(ThreadingHTTPServer):
    daemon_threads = True


class _Handler(BaseHTTPRequestHandler):
    """Maps HTTP routes onto the owning :class:`GQBEServer`."""

    server_version = "gqbe-serve/1.0"
    protocol_version = "HTTP/1.1"
    # Send each small JSON response immediately instead of letting Nagle's
    # algorithm hold the tail segment for the client's delayed ACK — that
    # interaction costs a flat ~40ms per keep-alive request on loopback.
    disable_nagle_algorithm = True

    @property
    def app(self) -> GQBEServer:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # access logs stay off; /stats carries the counters

    def _send_json(self, status: int, body: dict) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_json(self):
        """Parse the request body, bounding it *before* reading a byte.

        ``Content-Length`` is attacker-controlled: an unbounded
        ``rfile.read(length)`` would allocate whatever the header claims.
        A malformed value is a 400 naming the header (it used to fall
        through to the generic "not valid JSON" 400, which misdirects
        debugging); a value over the server's cap is a 413.
        """
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length is not None else 0
        except ValueError:
            raise _RequestBodyError(
                400, f"invalid Content-Length header: {raw_length!r}"
            ) from None
        if length < 0:
            raise _RequestBodyError(
                400, f"invalid Content-Length header: {raw_length!r}"
            )
        cap = self.app.max_body_bytes
        if length > cap:
            raise _RequestBodyError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{cap}-byte limit",
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return None
        return json.loads(raw)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            self._send_json(200, self.app.healthz())
        elif self.path == "/stats":
            self._send_json(200, self.app.stats())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            payload = self._read_json()
        except _RequestBodyError as error:
            self.app._count("request_errors")
            # The body was never read off the socket, so the connection
            # cannot be reused for another request.
            self.close_connection = True
            self._send_json(error.status, {"error": error.message})
            return
        except ValueError:
            self.app._count("request_errors")
            self._send_json(400, {"error": "request body is not valid JSON"})
            return
        try:
            if self.path == "/query":
                status, body = self.app.handle_query(payload)
            elif self.path == "/admin/reload":
                status, body = self._handle_reload(payload)
            elif self.path == "/admin/ingest":
                status, body = self.app.handle_ingest(payload)
            elif self.path == "/admin/compact":
                status, body = self.app.handle_compact()
            else:
                status, body = 404, {"error": f"unknown path {self.path!r}"}
        # gqbe: ignore[EXC001] -- the top-of-request net: any unhandled
        # failure becomes a logged traceback plus a generic 500 rather
        # than a dropped connection or a leaked stack trace.
        except Exception as error:  # noqa: BLE001 - last-resort 500
            # Log the traceback server-side; never echo exception details
            # to the client.
            self.app.note_internal_error(self.path, error)
            status, body = 500, {"error": "internal server error"}
        self._send_json(status, body)

    def _handle_reload(self, payload) -> tuple[int, dict]:
        if not isinstance(payload, dict) or not isinstance(
            payload.get("snapshot"), str
        ):
            return 400, {"error": 'body must be {"snapshot": "<path>"}'}
        try:
            generation = self.app.load_snapshot(payload["snapshot"])
        except GQBEError as error:
            return 400, {"error": str(error), "type": type(error).__name__}
        return 200, {
            "reloaded": True,
            "snapshot": payload["snapshot"],
            "generation": generation,
        }
