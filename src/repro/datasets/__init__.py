"""Datasets: synthetic knowledge graphs, example excerpts and query workloads.

The paper evaluates GQBE on Freebase and DBpedia.  Those dumps are not
available offline, so this package generates *synthetic* knowledge graphs
whose topology exercises the same code paths (multi-domain schemas,
skewed label frequencies, hub nodes, noise relationships) and whose ground
truth answer tables are known by construction — mirroring how the paper
derives ground truth from Freebase/Wikipedia/DBpedia tables.

* :mod:`repro.datasets.domains` — the individual domain generators
  (technology founders, awards, sports, languages, films, ...).
* :mod:`repro.datasets.synthetic` — the Freebase-like and DBpedia-like
  graph generators that assemble domains plus noise.
* :mod:`repro.datasets.workloads` — the query workloads analogous to the
  paper's Table I (F1–F20 and D1–D8), each with its ground-truth table.
* :mod:`repro.datasets.example_graph` — the small excerpt of Fig. 1 used in
  examples and unit tests.
"""

from repro.datasets.example_graph import figure1_excerpt
from repro.datasets.synthetic import (
    DBpediaLikeGenerator,
    FreebaseLikeGenerator,
    SyntheticDataset,
)
from repro.datasets.workloads import Query, Workload, build_dbpedia_workload, build_freebase_workload

__all__ = [
    "figure1_excerpt",
    "FreebaseLikeGenerator",
    "DBpediaLikeGenerator",
    "SyntheticDataset",
    "Query",
    "Workload",
    "build_freebase_workload",
    "build_dbpedia_workload",
]
