"""The small knowledge-graph excerpt of Fig. 1 of the paper.

This hand-built graph contains the founders of Yahoo!, Apple, Google and
Microsoft with their companies, cities, universities and a few distractor
relationships.  It is intentionally tiny: unit tests and the quickstart
example use it to exercise the whole pipeline deterministically, and its
expected answers (``<Steve Wozniak, Apple Inc.>``, ``<Sergey Brin, Google>``,
``<Bill Gates, Microsoft>`` for the query ``<Jerry Yang, Yahoo!>``) match the
paper's running example.
"""

from __future__ import annotations

from repro.graph.knowledge_graph import KnowledgeGraph

_TRIPLES: list[tuple[str, str, str]] = [
    # Jerry Yang / Yahoo!
    ("Jerry Yang", "founded", "Yahoo!"),
    ("Jerry Yang", "places_lived", "San Jose"),
    ("Jerry Yang", "education", "Stanford"),
    ("Jerry Yang", "nationality", "USA"),
    ("Yahoo!", "headquartered_in", "Sunnyvale"),
    ("Yahoo!", "industry", "Technology"),
    ("Sunnyvale", "in_state", "California"),
    ("San Jose", "in_state", "California"),
    # Steve Wozniak / Apple Inc.
    ("Steve Wozniak", "founded", "Apple Inc."),
    ("Steve Wozniak", "places_lived", "San Jose"),
    ("Steve Wozniak", "education", "UC Berkeley"),
    ("Steve Wozniak", "nationality", "USA"),
    ("Apple Inc.", "headquartered_in", "Cupertino"),
    ("Apple Inc.", "industry", "Technology"),
    ("Cupertino", "in_state", "California"),
    # Sergey Brin / Google
    ("Sergey Brin", "founded", "Google"),
    ("Sergey Brin", "places_lived", "Palo Alto"),
    ("Sergey Brin", "education", "Stanford"),
    ("Sergey Brin", "nationality", "USA"),
    ("Google", "headquartered_in", "Mountain View"),
    ("Google", "industry", "Technology"),
    ("Mountain View", "in_state", "California"),
    ("Palo Alto", "in_state", "California"),
    # Bill Gates / Microsoft (headquartered outside California)
    ("Bill Gates", "founded", "Microsoft"),
    ("Bill Gates", "places_lived", "Medina"),
    ("Bill Gates", "education", "Harvard"),
    ("Bill Gates", "nationality", "USA"),
    ("Microsoft", "headquartered_in", "Redmond"),
    ("Microsoft", "industry", "Technology"),
    ("Redmond", "in_state", "Washington"),
    ("Medina", "in_state", "Washington"),
    # Distractors: employees, other Stanford alumni, board members
    ("Marissa Mayer", "employment", "Yahoo!"),
    ("Marissa Mayer", "education", "Stanford"),
    ("Marissa Mayer", "nationality", "USA"),
    ("Tim Cook", "employment", "Apple Inc."),
    ("Tim Cook", "nationality", "USA"),
    ("Sundar Pichai", "employment", "Google"),
    ("Sundar Pichai", "education", "Stanford"),
    ("John Doerr", "board_member", "Google"),
    ("David Filo", "founded", "Yahoo!"),
    ("David Filo", "education", "Stanford"),
    ("David Filo", "nationality", "USA"),
    ("David Filo", "places_lived", "Palo Alto"),
]


def figure1_excerpt() -> KnowledgeGraph:
    """Return the Fig. 1 excerpt as a :class:`KnowledgeGraph`."""
    return KnowledgeGraph(_TRIPLES)


def figure1_ground_truth() -> list[tuple[str, str]]:
    """Founder–company pairs other than ``<Jerry Yang, Yahoo!>``."""
    return [
        ("Steve Wozniak", "Apple Inc."),
        ("Sergey Brin", "Google"),
        ("Bill Gates", "Microsoft"),
        ("David Filo", "Yahoo!"),
    ]
