"""Freebase-like and DBpedia-like synthetic knowledge-graph generators.

The paper evaluates on Freebase (28M nodes / 47M edges / 5,428 labels) and
DBpedia (759K nodes / 2.6M edges / 9,110 labels).  Those dumps are not
available offline; the generators here build laptop-scale graphs that keep
the *relevant* characteristics:

* multiple topical domains with distinct relational patterns,
* shared hub entities (cities, countries, universities) and high-frequency
  noise labels (``nationality``, ``gender``, ``industry``) so that the
  inverse-edge-label-frequency and participation-degree heuristics have
  signal to work with,
* known ground-truth answer tables per domain.

The DBpedia-like graph is smaller but uses a distinct label namespace (a
``dbp_`` prefix), giving it a larger label-to-edge ratio, analogous to the
real datasets' differences.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.exceptions import DatasetError
from repro.datasets.domains import ALL_DOMAINS, SharedContext
from repro.graph.knowledge_graph import KnowledgeGraph


@dataclass
class SyntheticDataset:
    """A generated knowledge graph plus its ground-truth tables."""

    name: str
    graph: KnowledgeGraph
    tables: dict[str, list[tuple[str, ...]]] = field(default_factory=dict)
    seed: int = 0

    def table(self, name: str) -> list[tuple[str, ...]]:
        """A ground-truth table by name; raises for unknown tables."""
        try:
            return self.tables[name]
        except KeyError:
            raise DatasetError(
                f"dataset {self.name!r} has no ground-truth table {name!r}; "
                f"known tables: {sorted(self.tables)}"
            ) from None

    def table_names(self) -> list[str]:
        """Sorted names of all ground-truth tables."""
        return sorted(self.tables)


class _BaseGenerator:
    """Shared machinery of the synthetic generators."""

    name = "synthetic"
    label_prefix = ""
    default_instances = 30

    def __init__(self, seed: int = 7, scale: float = 1.0) -> None:
        if scale <= 0:
            raise DatasetError(f"scale must be positive, got {scale}")
        self.seed = seed
        self.scale = scale

    def instances_per_domain(self) -> int:
        """Number of instances each domain generates at this scale."""
        return max(int(self.default_instances * self.scale), 4)

    def generate(self) -> SyntheticDataset:
        """Build the knowledge graph and its ground-truth tables."""
        rng = random.Random(self.seed)
        context = SharedContext.build(rng, label_prefix=self.label_prefix)
        graph = KnowledgeGraph()
        tables: dict[str, list[tuple[str, ...]]] = {}

        for triple in context.context_triples():
            graph.add_edge(*triple)

        count = self.instances_per_domain()
        for domain_builder in ALL_DOMAINS:
            domain = domain_builder(rng, count, context)
            for triple in domain.triples:
                graph.add_edge(*triple)
            for table_name, rows in domain.tables.items():
                tables.setdefault(table_name, []).extend(rows)

        return SyntheticDataset(
            name=self.name, graph=graph, tables=tables, seed=self.seed
        )


class FreebaseLikeGenerator(_BaseGenerator):
    """A multi-domain graph standing in for the paper's Freebase dataset."""

    name = "freebase-like"
    label_prefix = ""
    default_instances = 30


class DBpediaLikeGenerator(_BaseGenerator):
    """A smaller graph with a distinct label namespace standing in for DBpedia."""

    name = "dbpedia-like"
    label_prefix = "dbp_"
    default_instances = 18
