"""Domain generators for the synthetic knowledge graphs.

Each domain mirrors one of the subject areas behind the paper's Table I
queries (technology founders, academic awards, automobiles, sports,
programming languages, films, ...).  A domain generator produces:

* **triples** — the edges contributed to the knowledge graph, including
  realistic *noise* (nationalities, genders, industries, distractor
  entities such as employees who did not found the company), and
* **tables** — the ground-truth answer tables, i.e. the sets of entity
  tuples that genuinely satisfy the relational pattern the corresponding
  query asks for.  The workload builder turns each table into a query
  (first row = example tuple, remaining rows = ground truth), exactly like
  the paper derives queries from Freebase/Wikipedia/DBpedia tables.

The generators are deterministic given the :class:`random.Random` instance
they receive, so datasets are reproducible from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

Triple = tuple[str, str, str]


@dataclass
class DomainData:
    """Triples and ground-truth tables produced by one domain generator."""

    name: str
    triples: list[Triple] = field(default_factory=list)
    tables: dict[str, list[tuple[str, ...]]] = field(default_factory=dict)

    def add(self, subject: str, label: str, obj: str) -> None:
        """Append one triple."""
        self.triples.append((subject, label, obj))

    def table(self, name: str) -> list[tuple[str, ...]]:
        """Get (creating if needed) a ground-truth table."""
        return self.tables.setdefault(name, [])


@dataclass
class SharedContext:
    """Entities shared across domains: places, countries, genders.

    Sharing them creates the hub nodes and high-frequency labels (e.g.
    ``nationality``) that make edge weighting meaningful.
    """

    countries: list[str]
    states: list[str]
    cities: list[str]
    city_state: dict[str, str]
    universities: list[str]
    genders: list[str]
    label_prefix: str = ""

    def lab(self, label: str) -> str:
        """Apply the dataset-specific label prefix (DBpedia-like graphs use one)."""
        return f"{self.label_prefix}{label}" if self.label_prefix else label

    @classmethod
    def build(cls, rng: random.Random, label_prefix: str = "") -> "SharedContext":
        """Create the shared context entities."""
        countries = [f"Country_{i}" for i in range(8)]
        states = [f"State_{i}" for i in range(10)]
        cities = [f"City_{i}" for i in range(40)]
        city_state = {city: rng.choice(states) for city in cities}
        universities = [f"University_{i}" for i in range(12)]
        genders = ["Male", "Female"]
        return cls(
            countries=countries,
            states=states,
            cities=cities,
            city_state=city_state,
            universities=universities,
            genders=genders,
            label_prefix=label_prefix,
        )

    def context_triples(self) -> list[Triple]:
        """Triples describing the shared context itself (city → state)."""
        lab = self.lab
        triples = [(city, lab("in_state"), state) for city, state in self.city_state.items()]
        triples.extend((state, lab("in_country"), self.countries[0]) for state in self.states)
        return triples


#: Rare person attributes: each is present on only a small fraction of
#: entities, so maximal query graphs built around an entity that has one
#: include edges whose label combinations do not co-occur for most other
#: entities — the source of the null lattice nodes that drive GQBE's
#: pruning and early termination (Sec. V-B).
_RARE_PERSON_LABELS: list[str] = [
    "authored_book",
    "military_service",
    "honorary_degree",
    "honored_with",
    "hobby",
    "member_of",
]

#: Rare organisation attribute labels, for the same reason.
_RARE_ORG_LABELS: list[str] = [
    "listed_on",
    "acquired",
    "subsidiary_of",
    "operates_in",
]


def _rare_object(rng: random.Random, label: str) -> str:
    """A diverse object for a rare attribute edge.

    The objects are drawn from a per-label pool of ~25 values so that rare
    edges keep a *low participation degree* (Eq. 4) — pointing every
    ``authored_book`` edge at one shared node would turn that node into a
    hub and the weighting scheme would (correctly) discount the edges.
    """
    return f"{label.title()}_{rng.randint(0, 24)}"


def _add_person_noise(
    domain: DomainData,
    ctx: SharedContext,
    rng: random.Random,
    person: str,
    instance: int | None = None,
) -> None:
    """High-frequency context edges plus occasional rare attributes.

    When ``instance`` is one of the first few instances of a domain (the
    rows later promoted to example tuples by the workload builder), a pair
    of rare attributes is attached deterministically.  Their *combination*
    is unlikely to recur on other entities, so the query's MQG contains
    lattice nodes with no answers — the null nodes that let the best-first
    exploration prune and terminate early, as on the real datasets.
    """
    lab = ctx.lab
    domain.add(person, lab("nationality"), rng.choice(ctx.countries))
    domain.add(person, lab("gender"), rng.choice(ctx.genders))
    if rng.random() < 0.6:
        domain.add(person, lab("places_lived"), rng.choice(ctx.cities))
    if instance is not None and instance < 3:
        first = _RARE_PERSON_LABELS[instance % len(_RARE_PERSON_LABELS)]
        second = _RARE_PERSON_LABELS[(instance + 2) % len(_RARE_PERSON_LABELS)]
        domain.add(person, lab(first), _rare_object(rng, first))
        domain.add(person, lab(second), _rare_object(rng, second))
    for label in _RARE_PERSON_LABELS:
        if rng.random() < 0.12:
            domain.add(person, lab(label), _rare_object(rng, label))


def _add_org_noise(
    domain: DomainData, ctx: SharedContext, rng: random.Random, organisation: str
) -> None:
    """Occasional rare attributes for companies / clubs / studios."""
    lab = ctx.lab
    for label in _RARE_ORG_LABELS:
        if rng.random() < 0.15:
            domain.add(organisation, lab(label), _rare_object(rng, label))


# ----------------------------------------------------------------------
# individual domains
# ----------------------------------------------------------------------
def tech_companies(rng: random.Random, count: int, ctx: SharedContext) -> DomainData:
    """Founders, companies, headquarters, investors, employees (F12, F18)."""
    domain = DomainData("tech_companies")
    lab = ctx.lab
    founders = domain.table("tech_founders")
    founders_city = domain.table("tech_founders_city")
    investors_table = domain.table("company_investors")
    investors = [f"Investor_{i}" for i in range(max(count // 4, 3))]
    for i in range(count):
        person = f"TechFounder_{i}"
        company = f"TechCompany_{i}"
        city = rng.choice(ctx.cities)
        domain.add(person, lab("founded"), company)
        domain.add(company, lab("headquartered_in"), city)
        domain.add(company, lab("industry"), "Technology")
        domain.add(person, lab("education"), rng.choice(ctx.universities))
        _add_person_noise(domain, ctx, rng, person, instance=i)
        _add_org_noise(domain, ctx, rng, company)
        founders.append((person, company))
        founders_city.append((person, company, city))
        investor = rng.choice(investors)
        domain.add(investor, lab("invested_in"), company)
        investors_table.append((company, investor))
        # distractors: employees and board members who are not founders
        for j in range(rng.randint(1, 3)):
            employee = f"TechEmployee_{i}_{j}"
            domain.add(employee, lab("employment"), company)
            _add_person_noise(domain, ctx, rng, employee)
        if rng.random() < 0.5:
            board = f"BoardMember_{i}"
            domain.add(board, lab("board_member"), company)
            _add_person_noise(domain, ctx, rng, board)
    return domain


def software_products(rng: random.Random, count: int, ctx: SharedContext) -> DomainData:
    """Companies and the software they develop; implementation languages (F10, F15, D3)."""
    domain = DomainData("software_products")
    lab = ctx.lab
    company_software = domain.table("company_software")
    software_language = domain.table("software_language")
    languages = [f"Language_{i}" for i in range(max(count // 3, 4))]
    for i in range(count):
        company = f"SoftwareVendor_{i}"
        domain.add(company, lab("industry"), "Software")
        domain.add(company, lab("headquartered_in"), rng.choice(ctx.cities))
        for j in range(rng.randint(1, 3)):
            product = f"SoftwareProduct_{i}_{j}"
            language = rng.choice(languages)
            domain.add(company, lab("developed"), product)
            domain.add(product, lab("written_in"), language)
            domain.add(product, lab("software_genre"), rng.choice(["Office", "Game", "Database"]))
            company_software.append((company, product))
            software_language.append((product, language))
    return domain


def programming_languages(rng: random.Random, count: int, ctx: SharedContext) -> DomainData:
    """Programming languages, their designers and influences (F16, F19, D8)."""
    domain = DomainData("programming_languages")
    lab = ctx.lab
    designers = domain.table("language_designers")
    languages_table = domain.table("programming_languages")
    language_names = [f"ProgLang_{i}" for i in range(count)]
    for i, language in enumerate(language_names):
        designer = f"LanguageDesigner_{i}"
        domain.add(designer, lab("designed"), language)
        domain.add(language, lab("paradigm"), rng.choice(["Imperative", "Functional", "ObjectOriented"]))
        domain.add(language, lab("typed"), rng.choice(["Static", "Dynamic"]))
        if i > 0 and rng.random() < 0.7:
            domain.add(language, lab("influenced_by"), rng.choice(language_names[:i]))
        _add_person_noise(domain, ctx, rng, designer, instance=i)
        designers.append((designer, language))
        languages_table.append((language,))
    return domain


def academia(rng: random.Random, count: int, ctx: SharedContext) -> DomainData:
    """Researchers, their universities and academic awards (F1, D1)."""
    domain = DomainData("academia")
    lab = ctx.lab
    scholars = domain.table("award_scholars")
    computer_scientists = domain.table("computer_scientists")
    awards = ["Turing_Award", "Von_Neumann_Medal", "Fields_Medal"]
    for i in range(count):
        person = f"Researcher_{i}"
        university = rng.choice(ctx.universities)
        # Round-robin keeps the Turing_Award table non-trivial at any scale
        # (at least a third of the researchers), with instance 0 in it so the
        # F1-style query tuple can be drawn from that table.
        award = awards[i % len(awards)]
        domain.add(person, lab("education"), university)
        domain.add(person, lab("employed_by"), university)
        domain.add(person, lab("won_award"), award)
        domain.add(person, lab("profession"), "Computer_Scientist")
        _add_person_noise(domain, ctx, rng, person, instance=i)
        if award == "Turing_Award":
            scholars.append((person, university, award))
        computer_scientists.append((person, "Computer_Scientist"))
        # distractor: students at the same university without awards
        student = f"Student_{i}"
        domain.add(student, lab("education"), university)
        _add_person_noise(domain, ctx, rng, student)
    return domain


def automobiles(rng: random.Random, count: int, ctx: SharedContext) -> DomainData:
    """Car manufacturers, brands and models (F2)."""
    domain = DomainData("automobiles")
    lab = ctx.lab
    models = domain.table("car_models")
    for i in range(count):
        manufacturer = f"CarMaker_{i}"
        brand = f"CarBrand_{i}"
        domain.add(manufacturer, lab("owns_brand"), brand)
        domain.add(manufacturer, lab("industry"), "Automotive")
        domain.add(manufacturer, lab("headquartered_in"), rng.choice(ctx.cities))
        for j in range(rng.randint(1, 3)):
            model = f"CarModel_{i}_{j}"
            domain.add(brand, lab("makes_model"), model)
            domain.add(model, lab("vehicle_class"), rng.choice(["Sedan", "SUV", "Truck"]))
            models.append((manufacturer, brand, model))
    return domain


def sports_clubs(rng: random.Random, count: int, ctx: SharedContext) -> DomainData:
    """Football clubs, owners, leagues and players (F6, F8, D2, D7)."""
    domain = DomainData("sports_clubs")
    lab = ctx.lab
    owners_table = domain.table("club_owners")
    player_table = domain.table("player_clubs")
    leagues = [f"League_{i}" for i in range(3)]
    for i in range(count):
        club = f"FootballClub_{i}"
        owner = f"ClubOwner_{i}"
        league = rng.choice(leagues)
        domain.add(club, lab("owned_by"), owner)
        domain.add(club, lab("plays_in_league"), league)
        domain.add(club, lab("based_in"), rng.choice(ctx.cities))
        _add_person_noise(domain, ctx, rng, owner, instance=i)
        _add_org_noise(domain, ctx, rng, club)
        owners_table.append((club, owner))
        for j in range(rng.randint(1, 3)):
            player = f"FootballPlayer_{i}_{j}"
            domain.add(player, lab("plays_for"), club)
            domain.add(player, lab("position"), rng.choice(["Forward", "Midfielder", "Defender"]))
            _add_person_noise(domain, ctx, rng, player)
            player_table.append((player, club))
        # distractor: club staff
        coach = f"Coach_{i}"
        domain.add(coach, lab("coaches"), club)
        _add_person_noise(domain, ctx, rng, coach)
    return domain


def athlete_awards(rng: random.Random, count: int, ctx: SharedContext) -> DomainData:
    """Athletes and sports awards (F4, D6)."""
    domain = DomainData("athlete_awards")
    lab = ctx.lab
    winners = domain.table("sports_award_winners")
    sports = ["Swimming", "Golf", "Tennis", "Athletics"]
    for i in range(count):
        athlete = f"Athlete_{i}"
        domain.add(athlete, lab("competes_in"), rng.choice(sports))
        _add_person_noise(domain, ctx, rng, athlete, instance=i)
        if rng.random() < 0.7:
            domain.add(athlete, lab("won_award"), "Sportsman_of_the_Year")
            winners.append((athlete, "Sportsman_of_the_Year"))
        else:
            domain.add(athlete, lab("won_award"), "Rookie_of_the_Year")
    return domain


def sponsorships(rng: random.Random, count: int, ctx: SharedContext) -> DomainData:
    """Companies sponsoring athletes (F3)."""
    domain = DomainData("sponsorships")
    lab = ctx.lab
    table = domain.table("sponsorships")
    for i in range(count):
        company = f"SportsBrand_{i}"
        athlete = f"SponsoredAthlete_{i}"
        domain.add(company, lab("sponsors"), athlete)
        domain.add(company, lab("industry"), "Apparel")
        domain.add(company, lab("headquartered_in"), rng.choice(ctx.cities))
        domain.add(athlete, lab("competes_in"), rng.choice(["Golf", "Basketball", "Football"]))
        _add_person_noise(domain, ctx, rng, athlete, instance=i)
        table.append((company, athlete))
    return domain


def aircraft(rng: random.Random, count: int, ctx: SharedContext) -> DomainData:
    """Aircraft manufacturers and their models (F7, D5)."""
    domain = DomainData("aircraft")
    lab = ctx.lab
    table = domain.table("aircraft_models")
    for i in range(count):
        manufacturer = f"AircraftMaker_{i}"
        domain.add(manufacturer, lab("industry"), "Aerospace")
        domain.add(manufacturer, lab("headquartered_in"), rng.choice(ctx.cities))
        for j in range(rng.randint(1, 3)):
            model = f"Aircraft_{i}_{j}"
            domain.add(manufacturer, lab("developed"), model)
            domain.add(model, lab("aircraft_type"), rng.choice(["Transport", "Fighter", "Airliner"]))
            table.append((manufacturer, model))
    return domain


def olympic_games(rng: random.Random, count: int, ctx: SharedContext) -> DomainData:
    """Host cities and editions of the games (F9)."""
    domain = DomainData("olympic_games")
    lab = ctx.lab
    table = domain.table("olympic_hosts")
    for i in range(count):
        city = rng.choice(ctx.cities)
        games = f"Olympics_{1960 + 4 * i}"
        domain.add(city, lab("hosted"), games)
        domain.add(games, lab("sport_event_type"), "Summer_Olympics")
        table.append((city, games))
    return domain


def films(rng: random.Random, count: int, ctx: SharedContext) -> DomainData:
    """Directors, films, actors and studios (F17, D4)."""
    domain = DomainData("films")
    lab = ctx.lab
    director_films = domain.table("director_films")
    for i in range(count):
        director = f"Director_{i}"
        _add_person_noise(domain, ctx, rng, director, instance=i)
        for j in range(rng.randint(1, 3)):
            film = f"Film_{i}_{j}"
            studio = f"Studio_{i % max(count // 4, 1)}"
            domain.add(director, lab("directed"), film)
            domain.add(studio, lab("produced"), film)
            domain.add(film, lab("film_genre"), rng.choice(["Drama", "SciFi", "Comedy"]))
            director_films.append((director, film))
            actor = f"Actor_{i}_{j}"
            domain.add(actor, lab("starred_in"), film)
            _add_person_noise(domain, ctx, rng, actor)
    return domain


def classical_music(rng: random.Random, count: int, ctx: SharedContext) -> DomainData:
    """Composers and their works (F13)."""
    domain = DomainData("classical_music")
    lab = ctx.lab
    table = domain.table("composer_works")
    for i in range(count):
        composer = f"Composer_{i}"
        _add_person_noise(domain, ctx, rng, composer, instance=i)
        for j in range(rng.randint(1, 4)):
            work = f"Symphony_{i}_{j}"
            domain.add(composer, lab("composed"), work)
            domain.add(work, lab("musical_form"), rng.choice(["Symphony", "Concerto", "Sonata"]))
            table.append((composer, work))
    return domain


def comics(rng: random.Random, count: int, ctx: SharedContext) -> DomainData:
    """Comic creators and their characters (F11)."""
    domain = DomainData("comics")
    lab = ctx.lab
    table = domain.table("creator_characters")
    publishers = ["ComicHouse_A", "ComicHouse_B"]
    for i in range(count):
        creator = f"ComicCreator_{i}"
        character = f"ComicCharacter_{i}"
        publisher = rng.choice(publishers)
        domain.add(creator, lab("created"), character)
        domain.add(character, lab("published_by"), publisher)
        _add_person_noise(domain, ctx, rng, creator, instance=i)
        table.append((creator, character))
    return domain


def religions(rng: random.Random, count: int, ctx: SharedContext) -> DomainData:
    """Religious traditions and their founders (F5)."""
    domain = DomainData("religions")
    lab = ctx.lab
    table = domain.table("religion_founders")
    for i in range(count):
        founder = f"ReligiousFigure_{i}"
        religion = f"Religion_{i}"
        domain.add(founder, lab("founded_religion"), religion)
        domain.add(religion, lab("belief_system"), rng.choice(["Monotheistic", "Polytheistic", "NonTheistic"]))
        _add_person_noise(domain, ctx, rng, founder, instance=i)
        table.append((founder, religion))
    return domain


def chemistry(rng: random.Random, count: int, ctx: SharedContext) -> DomainData:
    """Chemical elements and their isotopes (F14)."""
    domain = DomainData("chemistry")
    lab = ctx.lab
    table = domain.table("element_isotopes")
    for i in range(count):
        element = f"Element_{i}"
        domain.add(element, lab("element_category"), rng.choice(["Metal", "Nonmetal", "Metalloid"]))
        for j in range(rng.randint(1, 3)):
            isotope = f"Element_{i}_isotope_{j}"
            domain.add(element, lab("has_isotope"), isotope)
            domain.add(isotope, lab("decay_mode"), rng.choice(["Stable", "Alpha", "Beta"]))
            table.append((element, isotope))
    return domain


def celebrity_couples(rng: random.Random, count: int, ctx: SharedContext) -> DomainData:
    """Celebrity couples as single entities with member edges (F20)."""
    domain = DomainData("celebrity_couples")
    lab = ctx.lab
    table = domain.table("celebrity_couples")
    for i in range(count):
        couple = f"CelebrityCouple_{i}"
        member_a = f"Celebrity_{i}_a"
        member_b = f"Celebrity_{i}_b"
        domain.add(couple, lab("couple_member"), member_a)
        domain.add(couple, lab("couple_member"), member_b)
        domain.add(member_a, lab("married_to"), member_b)
        _add_person_noise(domain, ctx, rng, member_a)
        _add_person_noise(domain, ctx, rng, member_b)
        table.append((couple,))
    return domain


#: Registry of every domain generator, in a deterministic order.
ALL_DOMAINS = [
    tech_companies,
    software_products,
    programming_languages,
    academia,
    automobiles,
    sports_clubs,
    athlete_awards,
    sponsorships,
    aircraft,
    olympic_games,
    films,
    classical_music,
    comics,
    religions,
    chemistry,
    celebrity_couples,
]
