"""Query workloads analogous to the paper's Table I.

The paper's 28 queries (F1–F20 on Freebase, D1–D8 on DBpedia) were derived
from Freebase/Wikipedia/DBpedia tables: one or more rows serve as example
tuples and the remaining rows are the ground truth.  We mirror the process
against the synthetic datasets' ground-truth tables, mapping each query id
to the domain its real-world counterpart came from (F1 = academic awards,
F2 = car models, F18 = technology founders, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import DatasetError
from repro.datasets.synthetic import (
    DBpediaLikeGenerator,
    FreebaseLikeGenerator,
    SyntheticDataset,
)

#: Mapping of Freebase-workload query ids to ground-truth tables (analogous
#: to the subject areas of the paper's F1–F20).
FREEBASE_QUERY_TABLES: list[tuple[str, str]] = [
    ("F1", "award_scholars"),        # <Donald Knuth, Stanford, Turing Award>
    ("F2", "car_models"),            # <Ford Motor, Lincoln, Lincoln MKS>
    ("F3", "sponsorships"),          # <Nike, Tiger Woods>
    ("F4", "sports_award_winners"),  # <Michael Phelps, Sportsman of the Year>
    ("F5", "religion_founders"),     # <Gautam Buddha, Buddhism>
    ("F6", "club_owners"),           # <Manchester United, Malcolm Glazer>
    ("F7", "aircraft_models"),       # <Boeing, Boeing C-22>
    ("F8", "player_clubs"),          # <David Beckham, A.C. Milan>
    ("F9", "olympic_hosts"),         # <Beijing, 2008 Summer Olympics>
    ("F10", "company_software"),     # <Microsoft, Microsoft Office>
    ("F11", "creator_characters"),   # <Jack Kirby, Ironman>
    ("F12", "company_investors"),    # <Apple Inc, Sequoia Capital>
    ("F13", "composer_works"),       # <Beethoven, Symphony No. 5>
    ("F14", "element_isotopes"),     # <Uranium, Uranium-238>
    ("F15", "software_language"),    # <Microsoft Office, C++>
    ("F16", "language_designers"),   # <Dennis Ritchie, C>
    ("F17", "director_films"),       # <Steven Spielberg, Minority Report>
    ("F18", "tech_founders"),        # <Jerry Yang, Yahoo!>
    ("F19", "programming_languages"),  # <C> (single-entity)
    ("F20", "celebrity_couples"),    # <TomKat> (single-entity)
]

#: Mapping of DBpedia-workload query ids to ground-truth tables (D1–D8).
DBPEDIA_QUERY_TABLES: list[tuple[str, str]] = [
    ("D1", "computer_scientists"),   # <Alan Turing, Computer Scientist>
    ("D2", "player_clubs"),          # <David Beckham, Manchester United>
    ("D3", "company_software"),      # <Microsoft, Microsoft Excel>
    ("D4", "director_films"),        # <Steven Spielberg, Catch Me If You Can>
    ("D5", "aircraft_models"),       # <Boeing C-40 Clipper, Boeing>
    ("D6", "sports_award_winners"),  # <Arnold Palmer, Sportsman of the year>
    ("D7", "club_owners"),           # <Manchester City FC, Mansour bin Zayed>
    ("D8", "language_designers"),    # <Bjarne Stroustrup, C++>
]


@dataclass
class Query:
    """One workload query: example tuple(s) plus its ground truth."""

    query_id: str
    table_name: str
    query_tuples: tuple[tuple[str, ...], ...]
    ground_truth: list[tuple[str, ...]] = field(default_factory=list)

    @property
    def query_tuple(self) -> tuple[str, ...]:
        """The primary (first) example tuple."""
        return self.query_tuples[0]

    @property
    def arity(self) -> int:
        """Number of entities per tuple."""
        return len(self.query_tuple)

    @property
    def ground_truth_size(self) -> int:
        """Size of the ground-truth table (excluding the example tuples)."""
        return len(self.ground_truth)

    def with_extra_tuples(self, extra: int) -> "Query":
        """Promote ``extra`` more ground-truth rows to example tuples.

        Used by the multi-tuple experiments (Table V): ``Tuple2`` and
        ``Tuple3`` are rows taken from the ground truth.
        """
        if extra < 0:
            raise DatasetError("extra must be non-negative")
        if extra > len(self.ground_truth):
            raise DatasetError(
                f"query {self.query_id} has only {len(self.ground_truth)} "
                f"ground-truth rows; cannot promote {extra}"
            )
        promoted = tuple(tuple(row) for row in self.ground_truth[:extra])
        return Query(
            query_id=self.query_id,
            table_name=self.table_name,
            query_tuples=self.query_tuples + promoted,
            ground_truth=[tuple(row) for row in self.ground_truth[extra:]],
        )


@dataclass
class Workload:
    """A dataset plus the queries defined over it."""

    name: str
    dataset: SyntheticDataset
    queries: list[Query] = field(default_factory=list)

    def query(self, query_id: str) -> Query:
        """Look a query up by id."""
        for query in self.queries:
            if query.query_id == query_id:
                return query
        raise DatasetError(f"workload {self.name!r} has no query {query_id!r}")

    def query_ids(self) -> list[str]:
        """All query ids, in workload order."""
        return [query.query_id for query in self.queries]


def _build_queries(
    dataset: SyntheticDataset, table_map: list[tuple[str, str]]
) -> list[Query]:
    queries: list[Query] = []
    for query_id, table_name in table_map:
        rows = [tuple(row) for row in dataset.table(table_name)]
        if len(rows) < 2:
            raise DatasetError(
                f"table {table_name!r} has {len(rows)} rows; need at least 2 "
                f"to build query {query_id}"
            )
        queries.append(
            Query(
                query_id=query_id,
                table_name=table_name,
                query_tuples=(rows[0],),
                ground_truth=rows[1:],
            )
        )
    return queries


def build_freebase_workload(seed: int = 7, scale: float = 1.0) -> Workload:
    """Generate the Freebase-like dataset and its F1–F20 analogue queries."""
    dataset = FreebaseLikeGenerator(seed=seed, scale=scale).generate()
    return Workload(
        name="freebase-like",
        dataset=dataset,
        queries=_build_queries(dataset, FREEBASE_QUERY_TABLES),
    )


def build_dbpedia_workload(seed: int = 11, scale: float = 1.0) -> Workload:
    """Generate the DBpedia-like dataset and its D1–D8 analogue queries."""
    dataset = DBpediaLikeGenerator(seed=seed, scale=scale).generate()
    return Workload(
        name="dbpedia-like",
        dataset=dataset,
        queries=_build_queries(dataset, DBPEDIA_QUERY_TABLES),
    )
