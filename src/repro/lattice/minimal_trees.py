"""Minimal query trees — the leaf nodes of the query lattice (Definition 7).

A minimal query tree is a query graph none of whose subgraphs is still a
query graph: removing any edge either disconnects it or drops a query
entity.  Such a graph is necessarily a tree, and it can only use edges that
lie on undirected paths between query entities — i.e. edges of the MQG's
*core component* (Sec. IV-A).

The paper enumerates all spanning trees of the core component and trims
them: repeatedly delete non-query nodes of degree one together with their
edges; distinct results are the minimal query trees.  Because the MQG is
small (r ≈ 15 edges) exhaustive enumeration is cheap; we enumerate edge
subsets of the right cardinality and keep those that form spanning trees.

Single-entity query tuples are a degenerate case the paper does not spell
out: the core component has no edges, so we take each MQG edge incident on
the query entity as a (single-edge) minimal query tree, which keeps the
lattice's bottom level non-trivial and matches how queries like
``<C>`` behave in the evaluation.
"""

from __future__ import annotations

from itertools import combinations

from repro.graph.knowledge_graph import Edge
from repro.lattice.query_graph import LatticeSpace


def _spanning_trees(edges: list[Edge]) -> list[frozenset[Edge]]:
    """All spanning trees of the (small) graph formed by ``edges``."""
    nodes: set[str] = set()
    for edge in edges:
        nodes.add(edge.subject)
        nodes.add(edge.object)
    tree_size = len(nodes) - 1
    if tree_size <= 0:
        return []

    trees: list[frozenset[Edge]] = []
    for subset in combinations(edges, tree_size):
        adjacency: dict[str, list[str]] = {node: [] for node in nodes}
        for edge in subset:
            adjacency[edge.subject].append(edge.object)
            adjacency[edge.object].append(edge.subject)
        # gqbe: ignore[DET003] -- connectivity is invariant in the start
        # node: the reachability verdict is the same from any element.
        start = next(iter(nodes))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        if len(seen) == len(nodes):
            trees.append(frozenset(subset))
    return trees


def _trim_tree(tree: frozenset[Edge], query_entities: set[str]) -> frozenset[Edge]:
    """Iteratively remove degree-1 non-query nodes and their edges."""
    edges = set(tree)
    changed = True
    while changed and edges:
        changed = False
        degree: dict[str, int] = {}
        # gqbe: ignore[DET001] -- commutative accumulation: degree counts
        # do not depend on the order edges are visited.
        for edge in edges:
            degree[edge.subject] = degree.get(edge.subject, 0) + 1
            degree[edge.object] = degree.get(edge.object, 0) + 1
        removable_nodes = {
            node
            for node, count in degree.items()
            if count == 1 and node not in query_entities
        }
        if not removable_nodes:
            break
        # gqbe: ignore[DET001] -- order-independent: every edge incident
        # to a removable node is discarded regardless of visit order; the
        # surviving edge set is the same under any ordering.
        for edge in list(edges):
            if edge.subject in removable_nodes or edge.object in removable_nodes:
                edges.discard(edge)
                changed = True
    return frozenset(edges)


def _minimal_masks_from(
    space: LatticeSpace, edges: list[Edge], entities: set[str]
) -> set[int]:
    """Spanning trees of ``edges`` trimmed down to minimal query trees."""
    minimal: set[int] = set()
    for tree in _spanning_trees(edges):
        trimmed = _trim_tree(tree, entities)
        if not trimmed:
            continue
        mask = space.mask_of(trimmed)
        if space.is_valid_query_graph(mask):
            minimal.add(mask)
    return minimal


def minimal_query_trees(space: LatticeSpace) -> list[int]:
    """Enumerate the masks of all minimal query trees of the lattice.

    The result is deduplicated and deterministic (sorted by mask value).
    """
    entities = set(space.query_tuple)

    if len(entities) == 1:
        # gqbe: ignore[DET003] -- singleton set: there is only one
        # element to extract, so the choice is fully determined.
        entity = next(iter(entities))
        leaves = {
            1 << i
            for i, edge in enumerate(space.edge_list)
            if edge.subject == entity or edge.object == entity
        }
        return sorted(leaves)

    core_edges = [
        edge
        for i, edge in enumerate(space.edge_list)
        if (1 << i) & space.core_mask
    ]
    if not core_edges:
        # Fall back to the whole MQG if the core bookkeeping is missing.
        core_edges = list(space.edge_list)

    minimal = _minimal_masks_from(space, core_edges, entities)
    if not minimal and len(core_edges) != len(space.edge_list):
        # The recorded core was too small to connect all query entities
        # (possible after aggressive trimming of merged MQGs); retry with
        # the whole MQG, which is weakly connected by construction.
        minimal = _minimal_masks_from(space, list(space.edge_list), entities)

    # Remove non-minimal duplicates: a leaf must not subsume another leaf.
    masks = sorted(minimal, key=lambda m: (bin(m).count("1"), m))
    leaves: list[int] = []
    for mask in masks:
        if not any((mask | kept) == mask and kept != mask for kept in leaves):
            leaves.append(mask)
    return sorted(leaves)
