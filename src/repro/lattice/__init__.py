"""Answer-space modeling and query processing over the query lattice.

This package implements Sections IV and V of the paper:

* :mod:`repro.lattice.query_graph` — the lattice *space*: the MQG's edges in
  a fixed order, query graphs as bitmasks over that order, structure scores.
* :mod:`repro.lattice.minimal_trees` — the lattice's leaf nodes
  (Definition 7), enumerated from the MQG's core component.
* :mod:`repro.lattice.scoring` — the answer-graph scoring function
  (Eq. 1, 5, 6): structure score plus content score.
* :mod:`repro.lattice.exploration` — Algorithm 2 (best-first exploration
  with upper-bound scores) and Algorithm 3 (upper-boundary recomputation
  after pruning), including the two-stage top-k' / top-k ranking.
"""

from repro.lattice.exploration import (
    AnswerAccumulator,
    BestFirstExplorer,
    ExplorationResult,
    RankedAnswer,
)
from repro.lattice.minimal_trees import minimal_query_trees
from repro.lattice.query_graph import LatticeSpace, QueryGraph
from repro.lattice.scoring import (
    content_score,
    content_score_from_matched,
    match_credit,
    structure_score,
)

__all__ = [
    "LatticeSpace",
    "QueryGraph",
    "minimal_query_trees",
    "structure_score",
    "content_score",
    "content_score_from_matched",
    "match_credit",
    "AnswerAccumulator",
    "BestFirstExplorer",
    "ExplorationResult",
    "RankedAnswer",
]
