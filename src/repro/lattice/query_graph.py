"""The lattice space: query graphs as bitmasks over the MQG's edge list.

The query lattice (Definition 6) is the poset of all query graphs — weakly
connected subgraphs of the MQG containing every query entity — ordered by
the subgraph relation.  Following the paper (Sec. V-C complexity analysis),
each query graph is represented as a **bit vector** over the MQG's edges:
bit ``i`` is set when edge ``i`` belongs to the query graph.  Subsumption
tests, children/parents generation and the pruning bookkeeping of
Algorithm 3 then reduce to integer bit operations.

:class:`LatticeSpace` holds everything that is shared by all query graphs of
one query: the ordered MQG edge list, the scoring weights, the query
entities and the per-node incident-edge counts used by the content score.
:class:`QueryGraph` is a lightweight handle (space + mask).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.exceptions import LatticeError
from repro.graph.knowledge_graph import Edge
from repro.discovery.mqg import MaximalQueryGraph


class LatticeSpace:
    """Shared context for every query graph in one query's lattice."""

    def __init__(self, mqg: MaximalQueryGraph) -> None:
        if mqg.num_edges == 0:
            raise LatticeError("cannot build a lattice over an MQG with no edges")
        self.mqg = mqg
        self.query_tuple: tuple[str, ...] = tuple(mqg.query_tuple)
        #: Deterministic edge order; bit i of a mask refers to edge_list[i].
        self.edge_list: tuple[Edge, ...] = tuple(mqg.edges())
        self.edge_index: dict[Edge, int] = {
            edge: i for i, edge in enumerate(self.edge_list)
        }
        self.weights: tuple[float, ...] = tuple(
            mqg.edge_weights.get(edge, 0.0) for edge in self.edge_list
        )
        #: |E(v)| in the MQG for every node v (content score denominator).
        self.incident_counts: dict[str, int] = {
            node: mqg.graph.degree(node) for node in mqg.graph.nodes
        }
        self.full_mask: int = (1 << len(self.edge_list)) - 1
        self.core_mask: int = self.mask_of(mqg.core_edges)
        #: Per-mask structure-score memo.  The exploration evaluates
        #: ``weight_of_mask`` for every UF×LF pair when refreshing upper
        #: bounds; weights are immutable, so each mask is summed once.
        self._weight_cache: dict[int, float] = {}
        #: For every edge i, the mask of edges sharing an endpoint with it
        #: (including i itself); lets parents_of run on pure int ops.
        node_masks: dict[str, int] = {}
        for i, edge in enumerate(self.edge_list):
            bit = 1 << i
            node_masks[edge.subject] = node_masks.get(edge.subject, 0) | bit
            node_masks[edge.object] = node_masks.get(edge.object, 0) | bit
        self._adjacent_masks: tuple[int, ...] = tuple(
            node_masks[edge.subject] | node_masks[edge.object]
            for edge in self.edge_list
        )
        #: Lazily filled by the explorers: the lattice's minimal query
        #: trees, which are a pure function of this space.
        self.minimal_trees_cache: list[int] | None = None

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of MQG edges (bit width of masks)."""
        return len(self.edge_list)

    def mask_of(self, edges: Iterable[Edge]) -> int:
        """Bitmask for a collection of MQG edges."""
        mask = 0
        for edge in edges:
            try:
                mask |= 1 << self.edge_index[edge]
            except KeyError:
                raise LatticeError(f"edge {edge!r} is not part of the MQG") from None
        return mask

    def edges_of(self, mask: int) -> list[Edge]:
        """The MQG edges selected by ``mask``."""
        return [self.edge_list[i] for i in self._bit_positions(mask)]

    def weight_of_mask(self, mask: int) -> float:
        """Sum of edge weights selected by ``mask`` (the structure score, memoized)."""
        weight = self._weight_cache.get(mask)
        if weight is None:
            weights = self.weights
            weight = 0.0
            remaining = mask
            while remaining:
                low = remaining & -remaining
                weight += weights[low.bit_length() - 1]
                remaining ^= low
            self._weight_cache[mask] = weight
        return weight

    def nodes_of(self, mask: int) -> set[str]:
        """The nodes touched by the edges of ``mask``."""
        nodes: set[str] = set()
        for i in self._bit_positions(mask):
            edge = self.edge_list[i]
            nodes.add(edge.subject)
            nodes.add(edge.object)
        return nodes

    @staticmethod
    def _bit_positions(mask: int) -> Iterator[int]:
        position = 0
        while mask:
            if mask & 1:
                yield position
            mask >>= 1
            position += 1

    # ------------------------------------------------------------------
    def is_weakly_connected_mask(self, mask: int) -> bool:
        """Whether the edges of ``mask`` form a weakly connected graph."""
        edges = self.edges_of(mask)
        if not edges:
            return False
        adjacency: dict[str, list[str]] = {}
        for edge in edges:
            adjacency.setdefault(edge.subject, []).append(edge.object)
            adjacency.setdefault(edge.object, []).append(edge.subject)
        start = edges[0].subject
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor in adjacency.get(node, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == len(adjacency)

    def contains_query_entities(self, mask: int) -> bool:
        """Whether every query entity is an endpoint of some edge in ``mask``."""
        nodes = self.nodes_of(mask)
        return all(entity in nodes for entity in self.query_tuple)

    def is_valid_query_graph(self, mask: int) -> bool:
        """Definition 2: weakly connected and containing all query entities."""
        if mask == 0:
            return False
        return self.contains_query_entities(mask) and self.is_weakly_connected_mask(mask)

    def query_graph(self, mask: int) -> "QueryGraph":
        """Wrap ``mask`` into a :class:`QueryGraph` handle."""
        return QueryGraph(space=self, mask=mask)

    def connected_component_mask(self, mask: int) -> int:
        """Mask of the weakly connected component of ``mask`` containing the query entities.

        Returns 0 when the query entities are not all inside one component of
        the edge-induced subgraph.  This is the ``Q_sub`` construction used
        by Algorithm 3.
        """
        edges = [(i, self.edge_list[i]) for i in self._bit_positions(mask)]
        if not edges:
            return 0
        adjacency: dict[str, list[tuple[int, str]]] = {}
        for index, edge in edges:
            adjacency.setdefault(edge.subject, []).append((index, edge.object))
            adjacency.setdefault(edge.object, []).append((index, edge.subject))
        entities = self.query_tuple
        for entity in entities:
            if entity not in adjacency:
                return 0
        start = entities[0]
        seen_nodes = {start}
        component_mask = 0
        stack = [start]
        while stack:
            node = stack.pop()
            for index, other in adjacency.get(node, ()):
                component_mask |= 1 << index
                if other not in seen_nodes:
                    seen_nodes.add(other)
                    stack.append(other)
        if not all(entity in seen_nodes for entity in entities):
            return 0
        return component_mask

    # ------------------------------------------------------------------
    def parents_of(self, mask: int) -> list[int]:
        """Masks of the query graphs with exactly one more edge (Definition 6).

        An edge can extend ``mask`` exactly when it shares an endpoint with
        some edge of ``mask``, so the candidate set is the union of the
        precomputed adjacency masks — integer bit operations only.
        """
        adjacent = 0
        adjacent_masks = self._adjacent_masks
        remaining = mask
        while remaining:
            low = remaining & -remaining
            adjacent |= adjacent_masks[low.bit_length() - 1]
            remaining ^= low
        parents: list[int] = []
        remaining = adjacent & ~mask
        while remaining:
            low = remaining & -remaining
            parents.append(mask | low)
            remaining ^= low
        return parents

    def children_of(self, mask: int) -> list[int]:
        """Masks of the valid query graphs with exactly one less edge."""
        children: list[int] = []
        for i in self._bit_positions(mask):
            candidate = mask & ~(1 << i)
            if candidate and self.is_valid_query_graph(candidate):
                children.append(candidate)
        return children


@dataclass(frozen=True)
class QueryGraph:
    """A query graph: a bitmask over its :class:`LatticeSpace`'s edge list."""

    space: LatticeSpace
    mask: int

    @property
    def edges(self) -> list[Edge]:
        """The MQG edges belonging to this query graph."""
        return self.space.edges_of(self.mask)

    @property
    def num_edges(self) -> int:
        """Number of edges in this query graph."""
        return bin(self.mask).count("1")

    @property
    def nodes(self) -> set[str]:
        """The nodes of this query graph."""
        return self.space.nodes_of(self.mask)

    @property
    def structure_score(self) -> float:
        """s_score(Q): total edge weight (Eq. 5)."""
        return self.space.weight_of_mask(self.mask)

    def is_valid(self) -> bool:
        """Definition 2 check."""
        return self.space.is_valid_query_graph(self.mask)

    def subsumes(self, other: "QueryGraph") -> bool:
        """Whether ``other`` is a subgraph of (or equal to) this query graph."""
        return (self.mask | other.mask) == self.mask

    def __hash__(self) -> int:
        return hash(self.mask)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryGraph):
            return NotImplemented
        return self.mask == other.mask and self.space is other.space

    def __repr__(self) -> str:
        return f"QueryGraph(mask={self.mask:b}, edges={self.num_edges})"
