"""Best-first exploration of the query lattice (Algorithms 2 and 3).

The exploration keeps three mutually exclusive sets of lattice nodes —
evaluated, pruned and unevaluated — plus two frontiers:

* the **lower frontier** ``LF``: unevaluated, unpruned candidates that are
  either minimal query trees or have an evaluated child; the next node to
  evaluate (``Q_best``) is the LF node with the highest upper-bound score;
* the **upper frontier** ``UF``: maximal unpruned nodes; the upper bound of
  an LF node is the best structure score among the UF nodes that subsume it
  (Definitions 8–9).

Evaluating a node reuses the materialized answers of one of its already
evaluated children as the probe relation of a single hash join (Sec. V-A/B).
When a node turns out to have no answers (a *null node*) it and all its
ancestors are pruned (Property 3), the UF is recomputed by the equivalent of
Algorithm 3, and upper bounds of dirty LF nodes are refreshed.

The exploration runs in two stages (Sec. V-B): stage one ranks answer
tuples by the structure score only and stops once the current k'-th best
answer beats every remaining upper bound (Theorem 4); stage two re-ranks the
top-k' answers with the full scoring function (structure + content, Eq. 5)
and returns the top-k.
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.exceptions import LatticeError
from repro.lattice.minimal_trees import minimal_query_trees
from repro.lattice.query_graph import LatticeSpace
from repro.lattice.scoring import content_score, structure_score
from repro.storage.join import Relation, evaluate_query_edges, extend_with_edge
from repro.storage.store import VerticalPartitionStore

#: Default stage-one oversampling: the paper reports best accuracy with
#: k' ≈ 100 for k between 10 and 25.
DEFAULT_K_PRIME = 100


@dataclass(frozen=True)
class RankedAnswer:
    """One answer tuple with its scores and provenance."""

    entities: tuple[str, ...]
    score: float
    structure_score: float
    content_score: float
    query_graph_mask: int

    def __iter__(self):
        return iter(self.entities)


@dataclass
class ExplorationStatistics:
    """Counters describing one lattice exploration run."""

    nodes_evaluated: int = 0
    null_nodes: int = 0
    nodes_skipped: int = 0
    upper_frontier_recomputations: int = 0
    answers_found: int = 0
    terminated_early: bool = False
    node_budget_exhausted: bool = False
    elapsed_seconds: float = 0.0


@dataclass
class ExplorationResult:
    """Top-k answers plus the statistics of the run that produced them."""

    answers: list[RankedAnswer]
    statistics: ExplorationStatistics
    lattice_size_hint: int = 0

    def answer_tuples(self) -> list[tuple[str, ...]]:
        """Just the entity tuples, in rank order."""
        return [answer.entities for answer in self.answers]


def drop_trivial_self_match(relation: Relation) -> Relation:
    """Remove the identity match (the query graph matching itself).

    Definition 3 of the paper excludes the trivial answer graph in which
    every query-graph node is mapped to itself; a lattice node whose only
    match is that identity mapping is therefore a *null* node.
    """
    variables = relation.variables
    kept = [
        row
        for row in relation.rows
        if any(value != variables[i] for i, value in enumerate(row))
    ]
    if len(kept) == len(relation.rows):
        return relation
    return Relation(variables=variables, rows=kept)


@dataclass
class _AnswerRecord:
    best_structure: float = 0.0
    best_full: float = 0.0
    best_content: float = 0.0
    best_mask: int = 0

    def update(self, structure: float, content: float, mask: int) -> None:
        if structure > self.best_structure:
            self.best_structure = structure
        full = structure + content
        if full > self.best_full:
            self.best_full = full
            self.best_content = content
            self.best_mask = mask


class BestFirstExplorer:
    """Algorithm 2 (with Algorithm 3 pruning bookkeeping) over one lattice."""

    def __init__(
        self,
        space: LatticeSpace,
        store: VerticalPartitionStore,
        k: int = 10,
        k_prime: int | None = None,
        excluded_tuples: Iterable[tuple[str, ...]] = (),
        max_rows: int | None = None,
        node_budget: int | None = None,
    ) -> None:
        if k < 1:
            raise LatticeError(f"k must be positive, got {k}")
        self.space = space
        self.store = store
        self.k = k
        self.k_prime = k_prime if k_prime is not None else max(DEFAULT_K_PRIME, 4 * k)
        self.excluded_tuples = {tuple(t) for t in excluded_tuples}
        self.max_rows = max_rows
        self.node_budget = node_budget

        self._evaluated: dict[int, Relation] = {}
        self._null_masks: list[int] = []
        self._upper_frontier: set[int] = {space.full_mask}
        self._lower_frontier: dict[int, float] = {}
        self._answers: dict[tuple[str, ...], _AnswerRecord] = {}
        self._stats = ExplorationStatistics()

    # ------------------------------------------------------------------
    # pruning / upper bounds
    # ------------------------------------------------------------------
    def _is_pruned(self, mask: int) -> bool:
        """Whether ``mask`` subsumes some null node (Property 3)."""
        return any((mask & null) == null for null in self._null_masks)

    def _upper_bound(self, mask: int) -> float | None:
        """U(Q): best structure score among UF nodes subsuming ``mask``."""
        best: float | None = None
        for frontier_mask in self._upper_frontier:
            if (frontier_mask & mask) == mask:
                score = structure_score(self.space, frontier_mask)
                if best is None or score > best:
                    best = score
        return best

    def _add_to_lower_frontier(self, mask: int) -> None:
        if mask in self._evaluated or mask in self._lower_frontier:
            return
        if self._is_pruned(mask):
            return
        bound = self._upper_bound(mask)
        if bound is None:
            return
        self._lower_frontier[mask] = bound

    def _recompute_upper_frontier(self, null_mask: int) -> None:
        """Algorithm 3: rebuild the UF after pruning ``null_mask``'s ancestors."""
        self._stats.upper_frontier_recomputations += 1
        pruned_frontier = [
            frontier_mask
            for frontier_mask in self._upper_frontier
            if (frontier_mask & null_mask) == null_mask
        ]
        for frontier_mask in pruned_frontier:
            self._upper_frontier.discard(frontier_mask)

        candidates: set[int] = set()
        null_bits = [1 << i for i in range(self.space.num_edges) if null_mask & (1 << i)]
        for frontier_mask in pruned_frontier:
            for bit in null_bits:
                candidate = frontier_mask & ~bit
                if candidate == 0:
                    continue
                component = self.space.connected_component_mask(candidate)
                if component == 0 or self._is_pruned(component):
                    continue
                candidates.add(component)

        for candidate in sorted(candidates, key=lambda m: -bin(m).count("1")):
            subsumed = any(
                (other | candidate) == other and other != candidate
                for other in self._upper_frontier
            )
            if not subsumed:
                self._upper_frontier.add(candidate)

        # Refresh the (possibly dirty) lower-frontier upper bounds.
        for mask in list(self._lower_frontier):
            if self._is_pruned(mask):
                del self._lower_frontier[mask]
                continue
            bound = self._upper_bound(mask)
            if bound is None:
                del self._lower_frontier[mask]
            else:
                self._lower_frontier[mask] = bound

    # ------------------------------------------------------------------
    # evaluation of one lattice node
    # ------------------------------------------------------------------
    def _evaluate_mask(self, mask: int) -> Relation | None:
        """Materialize the answers of ``mask``, reusing an evaluated child.

        Among the already evaluated children the one with the fewest rows is
        used as the probe relation (smallest intermediate result).  When the
        join blows past ``max_rows`` the node is reported as too expensive
        (``None``) so the caller can skip it without (incorrectly) treating
        it as a null node.
        """
        best_child: tuple[int, int] | None = None  # (rows, edge bit index)
        for i in range(self.space.num_edges):
            bit = 1 << i
            if not mask & bit:
                continue
            child = mask & ~bit
            if child not in self._evaluated:
                continue
            child_relation = self._evaluated[child]
            if child_relation.is_empty():
                continue
            edge = self.space.edge_list[i]
            if child_relation.has_variable(edge.subject) or child_relation.has_variable(
                edge.object
            ):
                if best_child is None or child_relation.num_rows < best_child[0]:
                    best_child = (child_relation.num_rows, i)
        try:
            if best_child is not None:
                i = best_child[1]
                child_relation = self._evaluated[mask & ~(1 << i)]
                relation = extend_with_edge(
                    self.store,
                    child_relation,
                    self.space.edge_list[i],
                    max_rows=self.max_rows,
                )
            else:
                relation = evaluate_query_edges(
                    self.store, self.space.edges_of(mask), max_rows=self.max_rows
                )
            return relation
        except LatticeError:
            return None

    def _record_answers(self, mask: int, relation: Relation) -> None:
        entities = self.space.query_tuple
        try:
            entity_columns = [relation.column(entity) for entity in entities]
        except KeyError:
            # A valid query graph always covers the query entities; missing
            # columns mean the relation is degenerate (empty schema).
            return
        mask_structure = structure_score(self.space, mask)
        edges = self.space.edges_of(mask)
        variables = relation.variables

        for row in relation.rows:
            answer = tuple(row[col] for col in entity_columns)
            if answer in self.excluded_tuples:
                continue
            matched = {
                variables[i]
                for i, value in enumerate(row)
                if value == variables[i]
            }
            if matched:
                binding = dict(zip(variables, row))
                content = content_score(self.space, edges, binding)
            else:
                content = 0.0
            record = self._answers.get(answer)
            if record is None:
                record = _AnswerRecord()
                self._answers[answer] = record
            record.update(mask_structure, content, mask)

    # ------------------------------------------------------------------
    # termination
    # ------------------------------------------------------------------
    def _stage_one_threshold(self) -> float | None:
        """Structure score of the current k'-th best answer (None if too few)."""
        if len(self._answers) < self.k_prime:
            return None
        scores = sorted(
            (record.best_structure for record in self._answers.values()), reverse=True
        )
        return scores[self.k_prime - 1]

    def _should_terminate(self) -> bool:
        if not self._lower_frontier:
            return True
        threshold = self._stage_one_threshold()
        if threshold is None:
            return False
        best_remaining = max(self._lower_frontier.values())
        # Theorem 4 uses a strict inequality; we also stop on equality,
        # which preserves the top-k guarantee up to ties (an unevaluated
        # node whose upper bound equals the k'-th score can at best tie it,
        # never beat it).  This matters on graphs where the full MQG itself
        # has k' exact matches and the strict bound would force an
        # exhaustive sweep.
        return threshold >= best_remaining

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> ExplorationResult:
        """Execute the best-first exploration and return the top-k answers."""
        start = time.perf_counter()
        leaves = minimal_query_trees(self.space)
        if not leaves:
            raise LatticeError("the query lattice has no minimal query trees")
        for leaf in leaves:
            self._add_to_lower_frontier(leaf)

        while self._lower_frontier:
            if self.node_budget is not None and self._stats.nodes_evaluated >= self.node_budget:
                self._stats.node_budget_exhausted = True
                break
            # Highest upper bound first; among ties prefer the smaller query
            # graph — it is cheaper to join and, if null, prunes more.
            best_mask = max(
                self._lower_frontier,
                key=lambda m: (self._lower_frontier[m], -bin(m).count("1"), m),
            )
            del self._lower_frontier[best_mask]
            if self._is_pruned(best_mask):
                continue

            relation = self._evaluate_mask(best_mask)
            self._stats.nodes_evaluated += 1
            if relation is None:
                # Too expensive to materialize under the row cap; skip it
                # without pruning (it may still have answers).
                self._stats.nodes_skipped += 1
                continue

            # The trivial self-match does not count as an answer graph
            # (Definition 3), so a node whose only match is the identity
            # mapping is a null node.  The unfiltered relation is still kept
            # for extending parents (Property 1 works on all matches).
            effective = drop_trivial_self_match(relation)
            if effective.is_empty():
                self._stats.null_nodes += 1
                self._null_masks.append(best_mask)
                self._recompute_upper_frontier(best_mask)
            else:
                self._evaluated[best_mask] = relation
                self._record_answers(best_mask, effective)
                for parent in self.space.parents_of(best_mask):
                    self._add_to_lower_frontier(parent)

            if self._should_terminate():
                self._stats.terminated_early = bool(self._lower_frontier)
                break

        self._stats.answers_found = len(self._answers)
        self._stats.elapsed_seconds = time.perf_counter() - start
        return ExplorationResult(
            answers=self._final_ranking(),
            statistics=self._stats,
            lattice_size_hint=2 ** self.space.num_edges,
        )

    def _final_ranking(self) -> list[RankedAnswer]:
        """Stage two: re-rank the top-k' answers by the full score, keep top-k."""
        by_structure = sorted(
            self._answers.items(),
            key=lambda item: (-item[1].best_structure, item[0]),
        )[: self.k_prime]
        by_full = sorted(
            by_structure, key=lambda item: (-item[1].best_full, item[0])
        )[: self.k]
        return [
            RankedAnswer(
                entities=answer,
                score=record.best_full,
                structure_score=record.best_structure,
                content_score=record.best_content,
                query_graph_mask=record.best_mask,
            )
            for answer, record in by_full
        ]
