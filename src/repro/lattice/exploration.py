"""Best-first exploration of the query lattice (Algorithms 2 and 3).

The exploration keeps three mutually exclusive sets of lattice nodes —
evaluated, pruned and unevaluated — plus two frontiers:

* the **lower frontier** ``LF``: unevaluated, unpruned candidates that are
  either minimal query trees or have an evaluated child; the next node to
  evaluate (``Q_best``) is the LF node with the highest upper-bound score;
* the **upper frontier** ``UF``: maximal unpruned nodes; the upper bound of
  an LF node is the best structure score among the UF nodes that subsume it
  (Definitions 8–9).  The UF is kept an *antichain*: adding a candidate
  evicts any member it subsumes, so bounds stay as tight as Algorithm 3
  allows.

Evaluating a node reuses the materialized answers of one of its already
evaluated children as the probe relation of a single hash join (Sec. V-A/B).
When a node turns out to have no answers (a *null node*) it and all its
ancestors are pruned (Property 3), the UF is recomputed by the equivalent of
Algorithm 3, and upper bounds of dirty LF nodes are refreshed.

The exploration runs in two stages (Sec. V-B): stage one ranks answer
tuples by the structure score only and stops once the current k'-th best
answer beats every remaining upper bound (Theorem 4); stage two re-ranks the
top-k' answers with the full scoring function (structure + content, Eq. 5)
and returns the top-k.

Performance notes (the hot path of the Fig. 14/16 experiments):

* join relations carry **interned int entity ids** (see
  :mod:`repro.storage.vocabulary`); answers are decoded back to entity
  strings only in :meth:`BestFirstExplorer._final_ranking`;
* under a columnar store the relations are
  :class:`~repro.storage.join.ColumnarRelation` column arrays; the
  self-match filter and the answer-recording sweep below vectorize over
  them for bulk relations and fall back to the tuple-row code path for
  tiny ones (``prefers_columns``);
* ``Q_best`` selection uses a lazy-deletion max-heap instead of scanning
  every LF node per iteration;
* the stage-one k'-threshold is maintained incrementally with a bounded
  min-heap of the current top-k' structure scores instead of sorting all
  answers per iteration;
* structure scores are memoized per mask in the
  :class:`~repro.lattice.query_graph.LatticeSpace`.
"""

from __future__ import annotations

import heapq
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from itertools import filterfalse
from operator import itemgetter

from repro.exceptions import LatticeError
from repro.storage.batch import OVERFLOW
from repro.lattice.minimal_trees import minimal_query_trees
from repro.lattice.query_graph import LatticeSpace
from repro._kernels import kernels
from repro.lattice.scoring import (
    accumulate_content_scores,
    accumulate_structure_scores,
    content_score_from_matched,
    structure_score,
)
from repro.storage.join import (
    _SCALAR_TAIL_ROWS,
    ColumnarRelation,
    Relation,
    evaluate_query_edges,
    extend_with_edge,
    np,
)
from repro.storage.store import VerticalPartitionStore
from repro.storage.vocabulary import EntityId

#: Default stage-one oversampling: the paper reports best accuracy with
#: k' ≈ 100 for k between 10 and 25.
DEFAULT_K_PRIME = 100


@dataclass(frozen=True)
class RankedAnswer:
    """One answer tuple with its scores and provenance."""

    entities: tuple[str, ...]
    score: float
    structure_score: float
    content_score: float
    query_graph_mask: int

    def __iter__(self):
        return iter(self.entities)


@dataclass
class ExplorationStatistics:
    """Counters describing one lattice exploration run."""

    nodes_evaluated: int = 0
    null_nodes: int = 0
    nodes_skipped: int = 0
    upper_frontier_recomputations: int = 0
    answers_found: int = 0
    terminated_early: bool = False
    node_budget_exhausted: bool = False
    elapsed_seconds: float = 0.0


@dataclass
class ExplorationResult:
    """Top-k answers plus the statistics of the run that produced them."""

    answers: list[RankedAnswer]
    statistics: ExplorationStatistics
    lattice_size_hint: int = 0

    def answer_tuples(self) -> list[tuple[str, ...]]:
        """Just the entity tuples, in rank order."""
        return [answer.entities for answer in self.answers]


def drop_trivial_self_match(
    relation: Relation, identity_row: Sequence[EntityId | None] | None = None
) -> Relation:
    """Remove the identity match (the query graph matching itself).

    Definition 3 of the paper excludes the trivial answer graph in which
    every query-graph node is mapped to itself; a lattice node whose only
    match is that identity mapping is therefore a *null* node.

    ``identity_row`` holds, per column, the interned id of the column's own
    variable name (``None`` when the variable is not a data entity).  It
    defaults to the variable names themselves, which is correct for
    relations produced by an identity-vocabulary (string path) store.

    A row is the trivial self-match exactly when *every* column equals its
    own variable's id — i.e. when the row equals ``identity_row`` as a
    tuple — and rows are unique, so removal is a single C-level
    ``list.index`` scan plus two slices (tuple rows) or one vectorized
    equality mask (columnar).  (If any variable has no id,
    ``identity_row`` contains ``None`` and no row can equal it.)
    """
    variables = relation.variables
    identity = tuple(identity_row) if identity_row is not None else variables

    if isinstance(relation, ColumnarRelation):
        if not variables or relation.is_empty() or None in identity:
            return relation
        if relation.prefers_columns():
            match = relation.columns[0] == identity[0]
            for column, ident in zip(relation.columns[1:], identity[1:]):
                match &= column == ident
            hits = np.nonzero(match)[0]
            if not len(hits):
                return relation
            keep = ~match
            return ColumnarRelation(
                variables,
                [column[keep] for column in relation.columns],
                index=relation._index,
            )
        rows = relation.to_rows()
        try:
            at = rows.index(identity)
        except ValueError:
            return relation
        return ColumnarRelation(
            variables, rows=rows[:at] + rows[at + 1:], index=relation._index
        )

    rows = relation.rows
    try:
        at = rows.index(identity)
    except ValueError:
        return relation
    return Relation(variables, rows[:at] + rows[at + 1:], index=relation._index)


#: Index layout of a per-answer record list: the best structure score over
#: all answer graphs projecting to the answer, the best full (Eq. 5) score,
#: and the content score / query-graph mask of that best full answer graph.
#: Plain lists instead of a dataclass: the update runs once per join row on
#: the hottest loop of the exploration.
STRUCTURE, FULL, CONTENT, MASK = range(4)

AnswerRecord = list  # [structure: float, full: float, content: float, mask: int]


class AnswerAccumulator:
    """Interning-aware per-answer score bookkeeping shared by the explorers.

    Answers are keyed by their interned id tuples — or, for single-entity
    query tuples, by the bare id, which keeps the hot path free of
    one-element tuple packing — while the exploration runs;
    :meth:`decoded_items` converts them back to entity-string tuples when
    the final ranking is materialized.  Excluded tuples are interned once
    up front (a tuple containing an entity unknown to the data graph can
    never be produced, so it is dropped).
    """

    def __init__(
        self,
        space: LatticeSpace,
        store: VerticalPartitionStore,
        excluded_tuples: Iterable[tuple[str, ...]],
    ) -> None:
        self.space = space
        self.vocabulary = store.vocabulary
        self._arity_one = len(space.query_tuple) == 1
        self.records: dict[EntityId | tuple[EntityId, ...], AnswerRecord] = {}
        id_of = self.vocabulary.id_of
        self._excluded: set[EntityId | tuple[EntityId, ...]] = set()
        for entities in excluded_tuples:
            ids = tuple(id_of(entity) for entity in entities)
            if None not in ids:
                self._excluded.add(ids[0] if self._arity_one else ids)
        #: Variable names are always MQG nodes; resolving them against this
        #: small mapping keeps identity_info off the full vocabulary dict.
        self._node_ids: dict[str, EntityId | None] = {
            node: id_of(node) for node in space.mqg.graph.nodes
        }
        #: variables -> (identity row, self-match checks, identity id set).
        self._identity_info: dict[
            tuple[str, ...],
            tuple[
                tuple[EntityId | None, ...],
                list[tuple[int, EntityId, str]],
                frozenset[EntityId],
            ],
        ] = {}

    def __len__(self) -> int:
        return len(self.records)

    def identity_info(
        self, variables: tuple[str, ...]
    ) -> tuple[
        tuple[EntityId | None, ...],
        list[tuple[int, EntityId, str]],
        frozenset[EntityId],
    ]:
        """(identity row, self-match checks, identity id set) — memoized.

        Variable names are MQG nodes, so their ids are resolved through a
        small per-space mapping built once instead of the full vocabulary.
        """
        info = self._identity_info.get(variables)
        if info is None:
            node_ids = self._node_ids
            identity = tuple(map(node_ids.get, variables))
            checks = [
                (i, ident, variables[i])
                for i, ident in enumerate(identity)
                if ident is not None
            ]
            values = frozenset(ident for _, ident, _ in checks)
            info = (identity, checks, values)
            self._identity_info[variables] = info
        return info

    def record(
        self,
        mask: int,
        relation: Relation,
        on_structure_improved: Callable[[tuple[EntityId, ...], float], None] | None = None,
        identity_info: tuple | None = None,
    ) -> None:
        """Fold every row of ``relation`` into the per-answer records.

        ``on_structure_improved`` is called whenever an answer's best
        structure score strictly increases (used by the best-first
        explorer to maintain its stage-one threshold heap).  Callers that
        already hold the relation's :meth:`identity_info` pass it through
        to skip the lookup.
        """
        space = self.space
        entities = space.query_tuple
        try:
            entity_columns = [relation.column(entity) for entity in entities]
        except KeyError:
            # A valid query graph always covers the query entities; missing
            # columns mean the relation is degenerate (empty schema).
            return
        mask_structure = structure_score(space, mask)
        if identity_info is None:
            identity_info = self.identity_info(relation.variables)
        _, checks, identity_values = identity_info
        records = self.records
        excluded = self._excluded

        # Every row contributes at least (structure, content=0) to its
        # answer; rows that bind some query node to itself additionally
        # contribute their content score, and only those need per-row
        # Python work.  The content-0 sweep therefore runs over the
        # *distinct* answers.  Both branches below produce the same
        # distinct-answer set and the same (answer, signature) matches —
        # the columnar one extracts them with whole-array operations (for
        # relations past the scalar-tail threshold), the tuple-row one at
        # C speed via itemgetter/filterfalse.
        matches: "Sequence[tuple[EntityId | tuple[EntityId, ...], int]]"
        if isinstance(relation, ColumnarRelation) and relation.prefers_columns():
            columns = relation.columns
            answer_columns = [columns[i] for i in entity_columns]
            if self._arity_one:
                distinct_answers = set(answer_columns[0].tolist())
            else:
                distinct_answers = set(
                    zip(*(column.tolist() for column in answer_columns))
                )
            if checks:
                # Per-row bitmask of the columns bound to their own query
                # node; rows with signature 0 have no self-match.
                signature_array = np.zeros(relation.num_rows, dtype=np.int64)
                for i, ident, _name in checks:
                    signature_array |= (columns[i] == ident).astype(np.int64) << i
                hit_rows = np.nonzero(signature_array)[0]
            else:
                hit_rows = ()
            if len(hit_rows):
                signatures = signature_array[hit_rows].tolist()
                if self._arity_one:
                    hit_answers = answer_columns[0][hit_rows].tolist()
                else:
                    hit_answers = list(
                        zip(*(column[hit_rows].tolist() for column in answer_columns))
                    )
                matches = list(zip(hit_answers, signatures))
            else:
                matches = ()
        else:
            rows = relation.rows
            answer_of = itemgetter(*entity_columns)  # bare id when arity is one
            if identity_values:
                matched_rows = filterfalse(identity_values.isdisjoint, rows)
            else:
                matched_rows = ()
            distinct_answers = set(map(answer_of, rows))
            matches = []
            for row in matched_rows:
                signature = 0
                for i, ident, _name in checks:
                    if row[i] == ident:
                        signature |= 1 << i
                if signature:  # 0: shared id at a different column only
                    matches.append((answer_of(row), signature))

        accumulate_structure_scores(
            distinct_answers, excluded, records, mask_structure, mask,
            on_structure_improved,
        )

        if not matches:
            return
        edges = space.edges_of(mask)

        def content_of(signature: int) -> float:
            matched = {name for i, ident, name in checks if signature & (1 << i)}
            return content_score_from_matched(space, edges, matched)

        accumulate_content_scores(
            matches, records, mask_structure, mask, content_of
        )

    def decoded_items(self) -> list[tuple[tuple[str, ...], AnswerRecord]]:
        """All ``(decoded entity-string tuple, record)`` pairs, unordered."""
        if self._arity_one:
            term_of = self.vocabulary.term_of
            return [
                ((term_of(answer),), record)
                for answer, record in self.records.items()
            ]
        decode = self.vocabulary.decode_row
        return [(decode(answer), record) for answer, record in self.records.items()]


class LatticeNodeEvaluator:
    """Null-node pruning and node materialization shared by the explorers.

    Subclasses provide ``space``, ``store``, ``max_rows``, an
    ``_evaluated`` mask-to-relation dict and a ``_null_masks`` list.  They
    may also set ``arena`` (a batch-scoped
    :class:`~repro.storage.batch.JoinMemoArena`) to share from-scratch
    evaluation work with other explorations of the same batch.
    """

    #: Optional cross-query join memo; ``None`` keeps every evaluation local.
    arena = None

    def _is_pruned(self, mask: int) -> bool:
        """Whether ``mask`` subsumes some null node (Property 3)."""
        for null in self._null_masks:
            if (mask & null) == null:
                return True
        return False

    def _add_null_mask(self, mask: int) -> None:
        """Record a null node, keeping the list minimal.

        A stored null that subsumes the new one prunes a strict subset of
        what the new one prunes, so it is dropped; this keeps the linear
        ``_is_pruned`` scans short.
        """
        self._null_masks = [
            null for null in self._null_masks if (null & mask) != mask
        ]
        self._null_masks.append(mask)

    def _evaluate_mask(self, mask: int) -> Relation | None:
        """Materialize the answers of ``mask``, reusing an evaluated child.

        Among the already evaluated children the one with the fewest rows is
        used as the probe relation (smallest intermediate result).  When the
        join blows past ``max_rows`` the node is reported as too expensive
        (``None``) so the caller can skip it without (incorrectly) treating
        it as a null node.
        """
        best_child: tuple[int, int] | None = None  # (rows, edge bit)
        evaluated = self._evaluated
        edge_list = self.space.edge_list
        remaining = mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            child_relation = evaluated.get(mask ^ low)
            if child_relation is None or child_relation.is_empty():
                continue
            edge = edge_list[low.bit_length() - 1]
            index = child_relation._index
            if edge.subject in index or edge.object in index:
                rows = child_relation.num_rows
                if best_child is None or rows < best_child[0]:
                    best_child = (rows, low)
        arena = self.arena
        if best_child is not None:
            # A child extension's outcome (row multiset, overflow) is a
            # pure function of the mask's edge set, so a batch arena may
            # replay another query's extension result here — see
            # ``JoinMemoArena.extended_get`` for the equivalence argument.
            # Only extensions of probe relations past the scalar-tail
            # threshold are memoized: for tiny children the extension is
            # cheaper than the memo-key bookkeeping itself.
            key = None
            if arena is not None and best_child[0] > _SCALAR_TAIL_ROWS:
                edge_ids = self._arena_edge_ids
                ids = []
                remaining = mask
                while remaining:
                    low = remaining & -remaining
                    remaining ^= low
                    ids.append(edge_ids[low.bit_length() - 1])
                key = frozenset(ids)
                cached = arena.extended_get(key)
                if cached is not None:
                    return None if cached is OVERFLOW else cached
            low = best_child[1]
            try:
                relation = extend_with_edge(
                    self.store,
                    evaluated[mask ^ low],
                    edge_list[low.bit_length() - 1],
                    max_rows=self.max_rows,
                )
            except LatticeError:
                if key is not None:
                    arena.extended_put(key, OVERFLOW)
                return None
            if key is not None:
                arena.extended_put(key, relation)
            return relation
        try:
            return evaluate_query_edges(
                self.store,
                self.space.edges_of(mask),
                max_rows=self.max_rows,
                arena=arena,
            )
        except LatticeError:
            return None


class BestFirstExplorer(LatticeNodeEvaluator):
    """Algorithm 2 (with Algorithm 3 pruning bookkeeping) over one lattice."""

    def __init__(
        self,
        space: LatticeSpace,
        store: VerticalPartitionStore,
        k: int = 10,
        k_prime: int | None = None,
        excluded_tuples: Iterable[tuple[str, ...]] = (),
        max_rows: int | None = None,
        node_budget: int | None = None,
        arena=None,
    ) -> None:
        if k < 1:
            raise LatticeError(f"k must be positive, got {k}")
        self.space = space
        self.store = store
        self.k = k
        self.k_prime = k_prime if k_prime is not None else max(DEFAULT_K_PRIME, 4 * k)
        self.max_rows = max_rows
        self.node_budget = node_budget
        #: Batch-scoped join memo shared across the explorations of one
        #: :meth:`~repro.core.gqbe.GQBE.query_batch`; ``None`` outside one.
        self.arena = arena
        #: Arena-interned ids of this space's edges (bit order), so the
        #: per-evaluation memo keys hash small ints, not Edge tuples.
        self._arena_edge_ids = (
            arena.intern_edges(space.edge_list) if arena is not None else None
        )

        self._evaluated: dict[int, Relation] = {}
        self._null_masks: list[int] = []
        self._upper_frontier: set[int] = {space.full_mask}
        #: mask -> current upper bound; the source of truth for LF
        #: membership.  ``_lf_heap`` mirrors it as a lazy-deletion max-heap
        #: of ``(-bound, popcount, -mask)`` entries; stale entries (bound
        #: changed or mask removed) are skipped on pop.
        self._lower_frontier: dict[int, float] = {}
        self._lf_heap: list[tuple[float, int, int]] = []
        self._answers = AnswerAccumulator(space, store, excluded_tuples)
        #: Bounded min-heap of the current top-k' structure scores (the
        #: stage-one threshold of Theorem 4), maintained by the active
        #: kernel backend.  Scores only ever increase, so the live entries
        #: are always exactly the top ``min(len(answers), k')`` per-answer
        #: structure scores.
        self._threshold_top = kernels.TopKThreshold(self.k_prime)
        self._stats = ExplorationStatistics()

    # ------------------------------------------------------------------
    # upper bounds
    # ------------------------------------------------------------------
    def _upper_bound(self, mask: int) -> float | None:
        """U(Q): best structure score among UF nodes subsuming ``mask``."""
        best: float | None = None
        space = self.space
        cache = space._weight_cache
        for frontier_mask in self._upper_frontier:
            if (frontier_mask & mask) == mask:
                score = cache.get(frontier_mask)
                if score is None:
                    score = space.weight_of_mask(frontier_mask)
                if best is None or score > best:
                    best = score
        return best

    def _add_to_lower_frontier(self, mask: int) -> None:
        if mask in self._evaluated or mask in self._lower_frontier:
            return
        if self._null_masks and self._is_pruned(mask):
            return
        bound = self._upper_bound(mask)
        if bound is None:
            return
        self._lower_frontier[mask] = bound
        heapq.heappush(self._lf_heap, (-bound, mask.bit_count(), -mask))

    def _pop_best_mask(self) -> int | None:
        """Pop the LF node with the highest upper bound (lazy deletion).

        Ties prefer the smaller query graph — it is cheaper to join and,
        if null, prunes more — then the larger mask, matching the ordering
        of the pre-heap ``max()`` scan.
        """
        frontier = self._lower_frontier
        heap = self._lf_heap
        while heap:
            negative_bound, _, negative_mask = heapq.heappop(heap)
            mask = -negative_mask
            bound = frontier.get(mask)
            if bound is None or bound != -negative_bound:
                continue  # stale entry: removed or re-bounded since pushed
            del frontier[mask]
            return mask
        return None

    def _peek_best_bound(self) -> float | None:
        """Highest current LF upper bound without removing the node."""
        frontier = self._lower_frontier
        heap = self._lf_heap
        while heap:
            negative_bound, _, negative_mask = heap[0]
            bound = frontier.get(-negative_mask)
            if bound is None or bound != -negative_bound:
                heapq.heappop(heap)
                continue
            return bound
        return None

    def _recompute_upper_frontier(self, null_mask: int) -> None:
        """Algorithm 3: rebuild the UF after pruning ``null_mask``'s ancestors."""
        self._stats.upper_frontier_recomputations += 1
        pruned_frontier = [
            frontier_mask
            for frontier_mask in self._upper_frontier
            if (frontier_mask & null_mask) == null_mask
        ]
        for frontier_mask in pruned_frontier:
            self._upper_frontier.discard(frontier_mask)

        candidates: set[int] = set()
        null_bits = [1 << i for i in range(self.space.num_edges) if null_mask & (1 << i)]
        for frontier_mask in pruned_frontier:
            for bit in null_bits:
                candidate = frontier_mask & ~bit
                if candidate == 0:
                    continue
                component = self.space.connected_component_mask(candidate)
                if component == 0 or self._is_pruned(component):
                    continue
                candidates.add(component)

        for candidate in sorted(candidates, key=lambda m: -m.bit_count()):
            subsumed = any(
                (other | candidate) == other and other != candidate
                for other in self._upper_frontier
            )
            if subsumed:
                continue
            # Keep the UF an antichain: a retained non-maximal member would
            # never win a bound (the candidate subsuming it scores higher)
            # but would be scanned by every _upper_bound call.
            dominated = [
                other
                for other in self._upper_frontier
                if other != candidate and (candidate | other) == candidate
            ]
            for other in dominated:
                self._upper_frontier.discard(other)
            self._upper_frontier.add(candidate)

        # Refresh the dirty lower-frontier upper bounds.  A bound can only
        # have changed for masks subsumed by a *removed* UF member (the
        # surviving members and the new candidates are subsets of those),
        # and the only newly pruned LF masks are the ones subsuming this
        # null node — everything else keeps its bound.
        for mask in list(self._lower_frontier):
            if (mask & null_mask) == null_mask:
                del self._lower_frontier[mask]
                continue
            if not any(
                (frontier_mask & mask) == mask for frontier_mask in pruned_frontier
            ):
                continue
            bound = self._upper_bound(mask)
            if bound is None:
                del self._lower_frontier[mask]
            elif bound != self._lower_frontier[mask]:
                self._lower_frontier[mask] = bound
                heapq.heappush(self._lf_heap, (-bound, mask.bit_count(), -mask))

    # ------------------------------------------------------------------
    # termination
    # ------------------------------------------------------------------
    def _note_structure_improved(
        self, answer: tuple[EntityId, ...], score: float
    ) -> None:
        """Maintain the bounded top-k' min-heap after a score improvement."""
        self._threshold_top.note(answer, score)

    def _stage_one_threshold(self) -> float | None:
        """Structure score of the current k'-th best answer (None if too few)."""
        return self._threshold_top.threshold()

    def _should_terminate(self) -> bool:
        if not self._lower_frontier:
            return True
        threshold = self._stage_one_threshold()
        if threshold is None:
            return False
        best_remaining = self._peek_best_bound()
        if best_remaining is None:
            return True
        # Theorem 4 uses a strict inequality; we also stop on equality,
        # which preserves the top-k guarantee up to ties (an unevaluated
        # node whose upper bound equals the k'-th score can at best tie it,
        # never beat it).  This matters on graphs where the full MQG itself
        # has k' exact matches and the strict bound would force an
        # exhaustive sweep.
        return threshold >= best_remaining

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> ExplorationResult:
        """Execute the best-first exploration and return the top-k answers."""
        start = time.perf_counter()
        leaves = self.space.minimal_trees_cache
        if leaves is None:
            leaves = minimal_query_trees(self.space)
            self.space.minimal_trees_cache = leaves
        if not leaves:
            raise LatticeError("the query lattice has no minimal query trees")
        for leaf in leaves:
            self._add_to_lower_frontier(leaf)

        # The main loop runs once per evaluated lattice node; everything it
        # touches repeatedly is bound to a local first.
        stats = self._stats
        frontier = self._lower_frontier
        evaluated = self._evaluated
        node_budget = self.node_budget
        null_masks = self._null_masks
        pop_best = self._pop_best_mask
        is_pruned = self._is_pruned
        evaluate = self._evaluate_mask
        identity_info_of = self._answers.identity_info
        record = self._answers.record
        note_improved = self._threshold_top.note
        parents_of = self.space.parents_of
        add_to_frontier = self._add_to_lower_frontier
        should_terminate = self._should_terminate
        nodes_evaluated = 0

        while frontier:
            if node_budget is not None and nodes_evaluated >= node_budget:
                stats.node_budget_exhausted = True
                break
            best_mask = pop_best()
            if best_mask is None:
                break
            if null_masks and is_pruned(best_mask):
                continue

            relation = evaluate(best_mask)
            nodes_evaluated += 1
            if relation is None:
                # Too expensive to materialize under the row cap; skip it
                # without pruning (it may still have answers).
                stats.nodes_skipped += 1
                continue

            # The trivial self-match does not count as an answer graph
            # (Definition 3), so a node whose only match is the identity
            # mapping is a null node.  The unfiltered relation is still kept
            # for extending parents (Property 1 works on all matches).
            identity_info = identity_info_of(relation.variables)
            effective = drop_trivial_self_match(relation, identity_info[0])
            if effective.is_empty():
                stats.null_nodes += 1
                self._add_null_mask(best_mask)
                self._recompute_upper_frontier(best_mask)
                null_masks = self._null_masks  # _add_null_mask rebinds it
            else:
                evaluated[best_mask] = relation
                record(
                    best_mask,
                    effective,
                    note_improved,
                    identity_info=identity_info,
                )
                for parent in parents_of(best_mask):
                    add_to_frontier(parent)

            if should_terminate():
                stats.terminated_early = bool(frontier)
                break

        stats.nodes_evaluated = nodes_evaluated
        self._stats.answers_found = len(self._answers)
        self._stats.elapsed_seconds = time.perf_counter() - start
        return ExplorationResult(
            answers=self._final_ranking(),
            statistics=self._stats,
            lattice_size_hint=2 ** self.space.num_edges,
        )

    def _final_ranking(self) -> list[RankedAnswer]:
        """Stage two: re-rank the top-k' answers by the full score, keep top-k.

        Answers are decoded to entity strings *before* sorting so that the
        deterministic tie-breaks compare entity names, exactly as the
        string-path engine does.
        """
        by_structure = sorted(
            self._answers.decoded_items(),
            key=lambda item: (-item[1][STRUCTURE], item[0]),
        )[: self.k_prime]
        by_full = sorted(
            by_structure, key=lambda item: (-item[1][FULL], item[0])
        )[: self.k]
        return [
            RankedAnswer(
                entities=answer,
                score=record[FULL],
                structure_score=record[STRUCTURE],
                content_score=record[CONTENT],
                query_graph_mask=record[MASK],
            )
            for answer, record in by_full
        ]
