"""Answer-graph and answer-tuple scoring (Eq. 1, 5 and 6 of the paper).

The score of an answer graph ``A`` for a query graph ``Q`` is::

    score_Q(A) = s_score(Q) + c_score_Q(A)

* ``s_score(Q)`` — the **structure score**: the total (Eq. 8) weight of Q's
  edges.  It measures how much of the MQG's important structure ``Q`` (and
  therefore ``A``) captures, and is independent of the concrete answer.
* ``c_score_Q(A)`` — the **content score**: extra credit for answer nodes
  that are *identical* to the corresponding query-graph nodes (e.g. the
  answer also lives in ``San Jose``).  The credit for an edge is a fraction
  of its weight, damped by the number of MQG edges incident on the matched
  node (Eq. 6), so that hub nodes do not dominate.

An answer tuple's score (Eq. 1) is the maximum ``score_Q(A)`` over every
answer graph that projects to it.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence, Set

from repro._kernels import kernels
from repro.graph.knowledge_graph import Edge
from repro.lattice.query_graph import LatticeSpace


def structure_score(space: LatticeSpace, mask: int) -> float:
    """s_score(Q): total edge weight of the query graph ``mask``."""
    return space.weight_of_mask(mask)


def accumulate_structure_scores(
    distinct_answers: Set,
    excluded: Set,
    records: dict,
    mask_structure: float,
    mask: int,
    on_structure_improved: Callable | None,
) -> None:
    """Fold one lattice node's distinct answers into the score records.

    Every (non-excluded) answer gets at least ``(structure=mask_structure,
    full=mask_structure, content=0.0, mask)``; existing records are
    max-merged field by field, and ``on_structure_improved`` fires on
    every strict increase of an answer's best structure score.  This is
    the content-0 sweep of Eq. 5 — the structure score is a property of
    the query graph alone — and the hottest per-answer loop of the
    exploration, so it runs in the active kernel backend
    (:data:`repro._kernels.kernels`).
    """
    kernels.accumulate_structure(
        distinct_answers, excluded, records, mask_structure, mask,
        on_structure_improved,
    )


def accumulate_content_scores(
    matches: Sequence,
    records: dict,
    mask_structure: float,
    mask: int,
    content_of: Callable[[int], float],
) -> None:
    """Fold the self-match rows' content scores into the score records.

    ``matches`` holds ``(answer, signature)`` pairs — ``signature`` is
    the bitmask of answer columns bound to their own query node —
    produced by the relation sweep of Eq. 5's content term.  Distinct
    signatures repeat heavily within one relation, so ``content_of``
    runs once per distinct signature; answers without a record were
    excluded by the structure sweep and are skipped.  Runs in the active
    kernel backend, like the structure sweep.
    """
    kernels.accumulate_content(matches, records, mask_structure, mask, content_of)


def match_credit(
    space: LatticeSpace,
    edge: Edge,
    subject_matched: bool,
    object_matched: bool,
) -> float:
    """The per-edge extra credit ``match(e, e')`` of Eq. 6."""
    if not subject_matched and not object_matched:
        return 0.0
    weight = space.mqg.edge_weights.get(edge, 0.0)
    subject_incident = max(space.incident_counts.get(edge.subject, 1), 1)
    object_incident = max(space.incident_counts.get(edge.object, 1), 1)
    if subject_matched and object_matched:
        return weight / min(subject_incident, object_incident)
    if subject_matched:
        return weight / subject_incident
    return weight / object_incident


def content_score_from_matched(
    space: LatticeSpace,
    edges: Sequence[Edge],
    matched: Set[str],
) -> float:
    """c_score_Q(A) given the set of query nodes bound to themselves.

    The interned engine never materializes a string binding: it compares
    interned row ids against the interned query-node ids and collects the
    *matched* node names directly, so this entry point skips building the
    ``{variable: entity}`` dict of :func:`content_score`.
    """
    total = 0.0
    for edge in edges:
        subject_matched = edge.subject in matched
        object_matched = edge.object in matched
        if subject_matched or object_matched:
            total += match_credit(space, edge, subject_matched, object_matched)
    return total


def content_score(
    space: LatticeSpace,
    edges: Sequence[Edge],
    binding: Mapping[str, str],
) -> float:
    """c_score_Q(A) for the answer graph given by ``binding``.

    ``binding`` maps query-graph node names to data-graph entities (the
    bijection ``f`` of Definition 3).  A node is *matched* when it is bound
    to itself — i.e. the answer reuses the exact entity of the MQG.
    """
    matched = {node for node, value in binding.items() if value == node}
    return content_score_from_matched(space, edges, matched)


def answer_graph_score(
    space: LatticeSpace,
    mask: int,
    binding: Mapping[str, str],
) -> float:
    """score_Q(A) = s_score(Q) + c_score_Q(A) (Eq. 5)."""
    edges = space.edges_of(mask)
    return structure_score(space, mask) + content_score(space, edges, binding)
