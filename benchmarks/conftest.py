"""Shared fixtures for the benchmark suite.

Each benchmark file regenerates one table or figure of the paper's
evaluation section (Sec. VI): it prints the same rows/series the paper
reports (so the shape can be compared side by side) and uses
pytest-benchmark to time the underlying computation.

The harness runs at a reduced scale by default so the whole suite finishes
in minutes; set the environment variable ``GQBE_BENCH_SCALE`` to run larger
graphs.
"""

from __future__ import annotations

import os

import pytest

from repro.evaluation.harness import ExperimentHarness, HarnessConfig

#: Scale factor of the synthetic datasets used by the benchmarks.
BENCH_SCALE = float(os.environ.get("GQBE_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def harness() -> ExperimentHarness:
    """One experiment harness shared by every benchmark."""
    return ExperimentHarness(
        HarnessConfig(
            scale=BENCH_SCALE,
            mqg_size=10,
            k_prime=25,
            node_budget=1000,
            max_join_rows=100_000,
        )
    )
