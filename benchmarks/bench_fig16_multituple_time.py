"""Figure 16 — query processing time of 2-tuple queries.

The paper compares the processing time of the merged 2-tuple MQG
(Combined(1,2)) against evaluating the two tuples' MQGs separately
(Tuple1 + Tuple2), finding the merged MQG competitive or faster because the
merge up-weights selective, shared edges.

Known deviation (see EXPERIMENTS.md): on the laptop-scale synthetic graphs
the individual lattices are already tiny, so the merged MQG — which has
more edges than either individual one — is often *slower* here even though
the merge itself is negligible.  The benchmark therefore prints both series
for comparison with the paper and only asserts that the merged evaluation
stays in the same order of magnitude as the separate evaluations.
"""

from __future__ import annotations

from repro.evaluation.reporting import format_table, summarize_ratio

QUERY_IDS = ("F2", "F8", "F10", "F12", "F14", "F16", "F18", "F19")


def test_fig16_combined_vs_separate_processing_time(harness, benchmark):
    rows = benchmark(harness.table6_fig16_multituple_efficiency, QUERY_IDS, 10)
    print()
    print(
        format_table(
            rows,
            columns=[
                "query",
                "combined_processing_seconds",
                "separate_processing_seconds",
            ],
            title="Figure 16 — merged vs separate 2-tuple query time (seconds)",
            float_digits=4,
        )
    )
    combined = sum(row["combined_processing_seconds"] for row in rows)
    separate = sum(row["separate_processing_seconds"] for row in rows)
    print(summarize_ratio("separate_time / combined_time", separate, max(combined, 1e-9)))
    assert rows
    # Same order of magnitude; see the module docstring for why the merged
    # MQG can be slower than the separate evaluations at this scale.
    assert combined <= max(separate, 0.01) * 10
