"""Table VI — time for discovering and merging MQGs (2-tuple queries).

The paper reports, per query, the time to discover the MQG of each of the
two example tuples and the time to merge them, observing that merging is
negligible compared to discovery.  That is the shape asserted here.
"""

from __future__ import annotations

from repro.evaluation.reporting import format_table

QUERY_IDS = ("F2", "F8", "F10", "F12", "F14", "F16", "F18", "F19")


def test_table6_mqg_discovery_and_merge_time(harness, benchmark):
    rows = benchmark(harness.table6_fig16_multituple_efficiency, QUERY_IDS, 10)
    print()
    print(
        format_table(
            rows,
            columns=["query", "mqg1_seconds", "mqg2_seconds", "merge_seconds"],
            title="Table VI — MQG discovery and merge time (seconds)",
            float_digits=4,
        )
    )
    assert rows
    total_discovery = sum(row["mqg1_seconds"] + row["mqg2_seconds"] for row in rows)
    total_merge = sum(row["merge_seconds"] for row in rows)
    # Merging is negligible compared to discovery (the paper's observation).
    assert total_merge <= total_discovery
