"""Micro-benchmarks of GQBE's pipeline stages (not tied to one paper figure).

These time the individual components — neighborhood extraction, MQG
discovery, lattice exploration, whole-query latency — so regressions in any
stage are visible independently of the end-to-end experiments.  They also
serve as the ablation harness for the design choices called out in
DESIGN.md (e.g. running MQG discovery with and without the unimportant-edge
reduction).
"""

from __future__ import annotations

import pytest

from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.discovery.mqg import discover_maximal_query_graph
from repro.graph.neighborhood import neighborhood_graph
from repro.storage.snapshot import GraphStore


@pytest.fixture(scope="module")
def system(harness):
    bundle = harness._bundle("freebase")
    return bundle.gqbe, bundle.workload


def test_bench_neighborhood_extraction(system, benchmark):
    gqbe, workload = system
    query = workload.query("F18")
    result = benchmark(neighborhood_graph, gqbe.graph, query.query_tuple, 2)
    assert result.num_edges > 0


@pytest.fixture(scope="module")
def mapped_graph(system, tmp_path_factory):
    """The benchmark graph reopened as a v3 mapped CSR view."""
    gqbe, _workload = system
    directory = tmp_path_factory.mktemp("bench_v3") / "freebase.snapdir3"
    GraphStore.build(gqbe.graph).save(directory, format="v3")
    return GraphStore.load(directory).graph


def test_bench_mapped_neighborhood_extraction(system, mapped_graph, benchmark):
    """Def. 1 extraction over the mapped CSR columns — the serve path.

    Pairs with ``test_bench_neighborhood_extraction`` (the owned
    dict-of-lists graph): the wide BFS depths here expand through the
    whole-frontier numpy gather, which this benchmark gates.
    """
    _gqbe, workload = system
    query = workload.query("F18")
    result = benchmark(neighborhood_graph, mapped_graph, query.query_tuple, 2)
    assert result.num_edges > 0


def test_bench_delta_overlay_neighborhood_extraction(
    system, mapped_graph, benchmark
):
    """Def. 1 extraction over a live (mapped base + delta) overlay.

    The overlay adds per-node Python-list appends on top of the base CSR
    slices; this gates the read-amplification live ingest introduces on
    the hottest pipeline stage.
    """
    from repro.graph.delta import DeltaKnowledgeGraph

    _gqbe, workload = system
    query = workload.query("F18")
    overlay = DeltaKnowledgeGraph(mapped_graph)
    anchor = query.query_tuple[0]
    for index in range(8):
        overlay.add_delta_edge(anchor, "bench_delta_edge", f"DeltaNode_{index}")
    result = benchmark(neighborhood_graph, overlay, query.query_tuple, 2)
    assert result.num_edges > 0


def test_bench_mqg_discovery_with_reduction(system, benchmark):
    gqbe, workload = system
    query = workload.query("F18")
    neighborhood = neighborhood_graph(gqbe.graph, query.query_tuple, d=2)
    mqg = benchmark(
        discover_maximal_query_graph, neighborhood, gqbe.statistics, 10, True
    )
    assert mqg.num_edges > 0


def test_bench_mqg_discovery_without_reduction(system, benchmark):
    """Ablation: skip the Sec. III-C reduction before Algorithm 1."""
    gqbe, workload = system
    query = workload.query("F18")
    neighborhood = neighborhood_graph(gqbe.graph, query.query_tuple, d=2)
    mqg = benchmark(
        discover_maximal_query_graph, neighborhood, gqbe.statistics, 10, False
    )
    assert mqg.num_edges > 0


def test_bench_end_to_end_query(system, benchmark):
    gqbe, workload = system
    query = workload.query("F18")
    result = benchmark(gqbe.query, query.query_tuple, 10)
    assert result.answers


def test_bench_multi_tuple_query(system, benchmark):
    gqbe, workload = system
    extended = workload.query("F18").with_extra_tuples(1)
    result = benchmark(gqbe.query_multi, list(extended.query_tuples), 10)
    assert result.answers


def test_bench_bulk_fanout_join(system, benchmark):
    """Vectorized bulk join: all same-hub pairs through the densest label.

    This is the workload the columnar engine's whole-array probe path
    exists for (10x over tuple rows at scale 0.5; small lattice joins take
    its scalar tail instead and stay at parity)."""
    from repro.graph.knowledge_graph import Edge
    from repro.storage.join import evaluate_query_edges

    gqbe, _ = system
    label = max(
        gqbe.graph.label_counts().items(), key=lambda item: item[1]
    )[0]
    edges = [Edge("p", label, "hub"), Edge("q", label, "hub")]
    relation = benchmark(evaluate_query_edges, gqbe.store, edges)
    assert relation.num_rows > 0


def test_bench_offline_precomputation(harness, benchmark):
    """Time to build statistics + vertical partition store for the data graph."""
    graph = harness.freebase_workload().dataset.graph
    system = benchmark(GQBE, graph, GQBEConfig(mqg_size=10))
    assert system.store.num_rows == graph.num_edges


def test_bench_cold_start_from_triples(harness, benchmark, tmp_path_factory):
    """The full cold start the snapshot replaces: parse triples, build the
    graph, the statistics and the store."""
    from repro.graph.triples import load_graph, write_triples

    graph = harness.freebase_workload().dataset.graph
    path = tmp_path_factory.mktemp("bench_cold") / "freebase.tsv"
    write_triples(sorted(graph.edges), path)
    system = benchmark(lambda: GQBE(load_graph(path), GQBEConfig(mqg_size=10)))
    assert system.store.num_rows == graph.num_edges


def test_bench_snapshot_warm_start(harness, benchmark, tmp_path_factory):
    """Time to warm-start a system from an index snapshot.

    The ratio of ``cold_start_from_triples`` (or ``offline_precomputation``
    for the in-memory-graph comparison) to this benchmark is the
    warm-start speedup the snapshot subsystem exists for (>=5x on the
    synthetic benchmark graph; see ROADMAP.md for measured medians).
    Sections deserialize lazily, so this measures envelope verification
    plus system wiring — the actual warm start a `gqbe query --snapshot`
    performs before query processing begins.
    """
    graph = harness.freebase_workload().dataset.graph
    path = tmp_path_factory.mktemp("bench_snapshot") / "freebase.snap"
    GraphStore.build(graph).save(path)
    system = benchmark(
        lambda: GQBE(config=GQBEConfig(), graph_store=GraphStore.load(path))
    )
    assert system.graph_store is not None


def test_bench_snapshot_load_materialized(harness, benchmark, tmp_path_factory):
    """Snapshot load with every section forced to deserialize eagerly —
    the upper bound a first query pays on top of the lazy warm start."""
    graph = harness.freebase_workload().dataset.graph
    path = tmp_path_factory.mktemp("bench_snapshot") / "freebase.snap"
    GraphStore.build(graph).save(path)
    loaded = benchmark(lambda: GraphStore.load(path).materialize())
    assert loaded.store.num_rows == graph.num_edges


def test_bench_snapshot_save(harness, benchmark, tmp_path_factory):
    """Time to serialize the offline state (the build-index write path)."""
    graph = harness.freebase_workload().dataset.graph
    graph_store = GraphStore.build(graph)
    path = tmp_path_factory.mktemp("bench_snapshot") / "freebase.snap"
    size = benchmark(graph_store.save, path)
    assert size > 0


def test_bench_streaming_build(harness, benchmark, tmp_path_factory):
    """The out-of-core v3 build, dump to committed snapshot.

    Pairs with ``test_bench_cold_start_from_triples`` +
    ``test_bench_snapshot_save``: the streaming path trades some wall
    clock (two passes over the dump, spill-run merges) for bounded peak
    memory; this gates that the trade stays a constant factor rather
    than drifting superlinear.  The tiny budget forces the external-sort
    machinery to actually engage at benchmark scale.
    """
    from repro.graph.triples import write_triples
    from repro.storage.build import build_streaming_snapshot

    graph = harness.freebase_workload().dataset.graph
    scratch = tmp_path_factory.mktemp("bench_streaming")
    dump = scratch / "freebase.tsv"
    write_triples(sorted(graph.edges), dump)
    counter = iter(range(1_000_000))

    def build():
        return build_streaming_snapshot(
            dump,
            scratch / f"out_{next(counter)}",
            snapshot_format="v3",
            memory_budget_mb=1,
        )

    report = benchmark(build)
    assert report["edges"] == graph.num_edges
