"""Micro-benchmarks of GQBE's pipeline stages (not tied to one paper figure).

These time the individual components — neighborhood extraction, MQG
discovery, lattice exploration, whole-query latency — so regressions in any
stage are visible independently of the end-to-end experiments.  They also
serve as the ablation harness for the design choices called out in
DESIGN.md (e.g. running MQG discovery with and without the unimportant-edge
reduction).
"""

from __future__ import annotations

import pytest

from repro.core.config import GQBEConfig
from repro.core.gqbe import GQBE
from repro.discovery.mqg import discover_maximal_query_graph
from repro.graph.neighborhood import neighborhood_graph


@pytest.fixture(scope="module")
def system(harness):
    bundle = harness._bundle("freebase")
    return bundle.gqbe, bundle.workload


def test_bench_neighborhood_extraction(system, benchmark):
    gqbe, workload = system
    query = workload.query("F18")
    result = benchmark(neighborhood_graph, gqbe.graph, query.query_tuple, 2)
    assert result.num_edges > 0


def test_bench_mqg_discovery_with_reduction(system, benchmark):
    gqbe, workload = system
    query = workload.query("F18")
    neighborhood = neighborhood_graph(gqbe.graph, query.query_tuple, d=2)
    mqg = benchmark(
        discover_maximal_query_graph, neighborhood, gqbe.statistics, 10, True
    )
    assert mqg.num_edges > 0


def test_bench_mqg_discovery_without_reduction(system, benchmark):
    """Ablation: skip the Sec. III-C reduction before Algorithm 1."""
    gqbe, workload = system
    query = workload.query("F18")
    neighborhood = neighborhood_graph(gqbe.graph, query.query_tuple, d=2)
    mqg = benchmark(
        discover_maximal_query_graph, neighborhood, gqbe.statistics, 10, False
    )
    assert mqg.num_edges > 0


def test_bench_end_to_end_query(system, benchmark):
    gqbe, workload = system
    query = workload.query("F18")
    result = benchmark(gqbe.query, query.query_tuple, 10)
    assert result.answers


def test_bench_multi_tuple_query(system, benchmark):
    gqbe, workload = system
    extended = workload.query("F18").with_extra_tuples(1)
    result = benchmark(gqbe.query_multi, list(extended.query_tuples), 10)
    assert result.answers


def test_bench_offline_precomputation(harness, benchmark):
    """Time to build statistics + vertical partition store for the data graph."""
    graph = harness.freebase_workload().dataset.graph
    system = benchmark(GQBE, graph, GQBEConfig(mqg_size=10))
    assert system.store.num_rows == graph.num_edges
