"""Table III — GQBE accuracy on the DBpedia-like queries at k = 10.

The paper reports high accuracy on all eight DBpedia queries, with perfect
precision in several cases.  The shape to check: P@10 is high on average
and at least one query reaches perfect precision.
"""

from __future__ import annotations

from repro.evaluation.reporting import format_table


def test_table3_dbpedia_accuracy(harness, benchmark):
    rows = benchmark(harness.table3_dbpedia_accuracy, 10)
    print()
    print(format_table(rows, title="Table III — GQBE accuracy on DBpedia-like queries, k=10"))
    assert len(rows) == 8
    average_precision_at_10 = sum(row["p_at_k"] for row in rows) / len(rows)
    assert average_precision_at_10 >= 0.5
    assert any(row["p_at_k"] >= 0.99 for row in rows)
