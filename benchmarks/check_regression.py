#!/usr/bin/env python
"""Compare pytest-benchmark medians against a committed baseline.

CI runs the micro-benchmark smoke pass with ``--benchmark-json`` and then
calls this script to gate the job::

    python benchmarks/check_regression.py bench-results.json \\
        benchmarks/baseline.json --tolerance 1.5

Exit status 1 (job fails) when any benchmark's median exceeds its
baseline median by more than the tolerance factor.  Benchmarks present in
the results but missing from the baseline are reported as NEW (not a
failure — commit a refreshed baseline to start gating them); baseline
entries with no matching result are reported as MISSING (not a failure,
but they stop being gated, so prune or refresh the baseline).

Refresh the baseline from a results file with::

    python benchmarks/check_regression.py bench-results.json \\
        benchmarks/baseline.json --update

The baseline format is ``{"meta": {...}, "medians": {name: seconds}}``;
``meta`` records how the numbers were produced so refreshes stay
comparable.

``--speedup-pair SLOW:FAST:RATIO`` (repeatable) additionally requires
the results to show ``min(SLOW) / min(FAST) >= RATIO`` — used to gate
the native-kernel speedup pairs from ``bench_kernels.py``.  Speedup
pairs compare minima rather than medians: scheduler noise on shared CI
runners only ever inflates a round, so each leg's best round is the
noise-robust estimate of its true cost, and a ratio of minima does not
flap when one leg's median happens to absorb more interference than the
other's.  A pair with either leg absent from the results (e.g. the
native leg was skipped because the extension is not built) is reported
and ignored, not failed, so the pure-fallback CI leg passes the same
invocation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def load_result_stats(path: Path) -> dict[str, dict]:
    """Extract ``{benchmark name: stats}`` from pytest-benchmark JSON."""
    data = json.loads(path.read_text())
    return {bench["name"]: bench["stats"] for bench in data["benchmarks"]}


def load_baseline(path: Path) -> dict[str, float]:
    """Load the committed baseline's medians mapping."""
    data = json.loads(path.read_text())
    return data["medians"]


def compare(
    results: dict[str, float],
    baseline: dict[str, float],
    tolerance: float,
) -> tuple[list[str], list[str]]:
    """Return (report lines, regression names)."""
    lines: list[str] = []
    regressions: list[str] = []
    width = max((len(name) for name in results | baseline), default=0)
    for name in sorted(results):
        median = results[name]
        base = baseline.get(name)
        if base is None:
            lines.append(f"NEW        {name:<{width}}  median {median * 1000:9.3f} ms")
            continue
        ratio = median / base if base > 0 else float("inf")
        status = "REGRESSION" if ratio > tolerance else "ok"
        lines.append(
            f"{status:<10} {name:<{width}}  median {median * 1000:9.3f} ms  "
            f"baseline {base * 1000:9.3f} ms  ratio {ratio:5.2f}x"
        )
        if ratio > tolerance:
            regressions.append(name)
    for name in sorted(set(baseline) - set(results)):
        lines.append(f"MISSING    {name:<{width}}  (in baseline, not in results)")
    return lines, regressions


def parse_speedup_pair(spec: str) -> tuple[str, str, float]:
    """Parse a ``SLOW:FAST:RATIO`` speedup-pair argument."""
    parts = spec.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"expected SLOW:FAST:RATIO, got {spec!r}"
        )
    slow, fast, ratio_text = parts
    try:
        ratio = float(ratio_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"speedup ratio must be a number, got {ratio_text!r}"
        ) from None
    if ratio <= 0:
        raise argparse.ArgumentTypeError(
            f"speedup ratio must be positive, got {ratio_text!r}"
        )
    return slow, fast, ratio


def check_speedup_pairs(
    stats: dict[str, dict],
    pairs: list[tuple[str, str, float]],
) -> tuple[list[str], list[str]]:
    """Return (report lines, failed pair names) for the speedup gates.

    Compares each leg's ``min`` (falling back to ``median`` when a
    results file carries no minima): interference only inflates rounds,
    so best-round ratios are stable where median ratios flap.
    """
    lines: list[str] = []
    failures: list[str] = []
    for slow, fast, required in pairs:
        name = f"{slow} / {fast}"
        slow_stats = stats.get(slow)
        fast_stats = stats.get(fast)
        if slow_stats is None or fast_stats is None:
            missing = slow if slow_stats is None else fast
            lines.append(f"SKIPPED    {name}  ({missing} not in results)")
            continue
        slow_best = slow_stats.get("min", slow_stats["median"])
        fast_best = fast_stats.get("min", fast_stats["median"])
        speedup = slow_best / fast_best if fast_best > 0 else float("inf")
        status = "ok" if speedup >= required else "TOO SLOW"
        lines.append(
            f"{status:<10} {name}  speedup {speedup:5.2f}x  "
            f"required {required:.2f}x"
        )
        if speedup < required:
            failures.append(name)
    return lines, failures


def update_baseline(results: dict[str, float], path: Path, meta: dict) -> None:
    path.write_text(
        json.dumps({"meta": meta, "medians": results}, indent=2, sort_keys=True)
        + "\n"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path, help="pytest-benchmark JSON output")
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        # The committed baseline records medians from one machine while CI
        # runners have different (and noisier) hardware, so the tolerance
        # must absorb cross-machine variance, not just run-to-run noise.
        # GQBE_BENCH_TOLERANCE overrides without a workflow edit — e.g. to
        # loosen the gate while migrating runner classes, then refresh the
        # baseline from a CI artifact of the new class.
        default=float(os.environ.get("GQBE_BENCH_TOLERANCE", "1.5")),
        help="fail when median > baseline * tolerance "
        "(default: $GQBE_BENCH_TOLERANCE or 1.5)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the results instead of comparing",
    )
    parser.add_argument(
        "--speedup-pair",
        action="append",
        default=[],
        type=parse_speedup_pair,
        metavar="SLOW:FAST:RATIO",
        help="require min(SLOW) / min(FAST) >= RATIO; pairs with "
        "either leg missing are skipped (repeatable)",
    )
    args = parser.parse_args(argv)

    stats = load_result_stats(args.results)
    results = {name: bench["median"] for name, bench in stats.items()}
    if args.update:
        update_baseline(
            results,
            args.baseline,
            meta={
                "source": "benchmarks/check_regression.py --update",
                "benchmark_count": len(results),
            },
        )
        print(f"wrote {len(results)} baseline medians to {args.baseline}")
        return 0

    baseline = load_baseline(args.baseline)
    lines, regressions = compare(results, baseline, args.tolerance)
    print(f"benchmark regression gate (tolerance {args.tolerance:.2f}x)")
    for line in lines:
        print(line)
    failed_pairs: list[str] = []
    if args.speedup_pair:
        pair_lines, failed_pairs = check_speedup_pairs(
            stats, args.speedup_pair
        )
        print("\nspeedup-pair gates")
        for line in pair_lines:
            print(line)
    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond {args.tolerance:.2f}x: "
            + ", ".join(regressions),
            file=sys.stderr,
        )
        return 1
    if failed_pairs:
        print(
            f"\n{len(failed_pairs)} speedup pair(s) below their required "
            "ratio: " + ", ".join(failed_pairs),
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(results)} benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
