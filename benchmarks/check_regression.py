#!/usr/bin/env python
"""Compare pytest-benchmark medians against a committed baseline.

CI runs the micro-benchmark smoke pass with ``--benchmark-json`` and then
calls this script to gate the job::

    python benchmarks/check_regression.py bench-results.json \\
        benchmarks/baseline.json --tolerance 1.5

Exit status 1 (job fails) when any benchmark's median exceeds its
baseline median by more than the tolerance factor.  Benchmarks present in
the results but missing from the baseline are reported as NEW (not a
failure — commit a refreshed baseline to start gating them); baseline
entries with no matching result are reported as MISSING (not a failure,
but they stop being gated, so prune or refresh the baseline).

Refresh the baseline from a results file with::

    python benchmarks/check_regression.py bench-results.json \\
        benchmarks/baseline.json --update

The baseline format is ``{"meta": {...}, "medians": {name: seconds}}``;
``meta`` records how the numbers were produced so refreshes stay
comparable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def load_result_medians(path: Path) -> dict[str, float]:
    """Extract ``{benchmark name: median seconds}`` from pytest-benchmark JSON."""
    data = json.loads(path.read_text())
    return {
        bench["name"]: bench["stats"]["median"] for bench in data["benchmarks"]
    }


def load_baseline(path: Path) -> dict[str, float]:
    """Load the committed baseline's medians mapping."""
    data = json.loads(path.read_text())
    return data["medians"]


def compare(
    results: dict[str, float],
    baseline: dict[str, float],
    tolerance: float,
) -> tuple[list[str], list[str]]:
    """Return (report lines, regression names)."""
    lines: list[str] = []
    regressions: list[str] = []
    width = max((len(name) for name in results | baseline), default=0)
    for name in sorted(results):
        median = results[name]
        base = baseline.get(name)
        if base is None:
            lines.append(f"NEW        {name:<{width}}  median {median * 1000:9.3f} ms")
            continue
        ratio = median / base if base > 0 else float("inf")
        status = "REGRESSION" if ratio > tolerance else "ok"
        lines.append(
            f"{status:<10} {name:<{width}}  median {median * 1000:9.3f} ms  "
            f"baseline {base * 1000:9.3f} ms  ratio {ratio:5.2f}x"
        )
        if ratio > tolerance:
            regressions.append(name)
    for name in sorted(set(baseline) - set(results)):
        lines.append(f"MISSING    {name:<{width}}  (in baseline, not in results)")
    return lines, regressions


def update_baseline(results: dict[str, float], path: Path, meta: dict) -> None:
    path.write_text(
        json.dumps({"meta": meta, "medians": results}, indent=2, sort_keys=True)
        + "\n"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path, help="pytest-benchmark JSON output")
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        # The committed baseline records medians from one machine while CI
        # runners have different (and noisier) hardware, so the tolerance
        # must absorb cross-machine variance, not just run-to-run noise.
        # GQBE_BENCH_TOLERANCE overrides without a workflow edit — e.g. to
        # loosen the gate while migrating runner classes, then refresh the
        # baseline from a CI artifact of the new class.
        default=float(os.environ.get("GQBE_BENCH_TOLERANCE", "1.5")),
        help="fail when median > baseline * tolerance "
        "(default: $GQBE_BENCH_TOLERANCE or 1.5)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the results instead of comparing",
    )
    args = parser.parse_args(argv)

    results = load_result_medians(args.results)
    if args.update:
        update_baseline(
            results,
            args.baseline,
            meta={
                "source": "benchmarks/check_regression.py --update",
                "benchmark_count": len(results),
            },
        )
        print(f"wrote {len(results)} baseline medians to {args.baseline}")
        return 0

    baseline = load_baseline(args.baseline)
    lines, regressions = compare(results, baseline, args.tolerance)
    print(f"benchmark regression gate (tolerance {args.tolerance:.2f}x)")
    for line in lines:
        print(line)
    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond {args.tolerance:.2f}x: "
            + ", ".join(regressions),
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(results)} benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
