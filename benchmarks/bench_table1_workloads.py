"""Table I — queries and ground-truth table sizes.

Prints the analogue of the paper's Table I: every query of the Freebase-like
and DBpedia-like workloads with its example tuple and ground-truth size.
"""

from __future__ import annotations

from repro.evaluation.reporting import format_table


def test_table1_workload_summary(harness, benchmark):
    rows = benchmark(harness.table1_workload_summary)
    print()
    print(format_table(rows, columns=["query", "dataset", "tuple", "table_size"],
                       title="Table I — queries and ground-truth table sizes"))
    assert len(rows) == 28
    assert all(row["table_size"] >= 1 for row in rows)
