"""Table V — accuracy of multi-tuple queries (merged MQGs), k = 25.

The paper takes the seven Freebase queries that did not reach perfect P@25
with a single example tuple, adds a second and third example tuple from the
ground truth, and shows that the merged MQGs usually beat the individual
tuples.  The shape to check: on average, Combined(1,2) accuracy is at least
as good as the average single-tuple accuracy.
"""

from __future__ import annotations

from repro.evaluation.reporting import format_table

QUERY_IDS = ("F2", "F4", "F6", "F8", "F9", "F17")


def test_table5_multi_tuple_accuracy(harness, benchmark):
    rows = benchmark(harness.table5_multi_tuple, QUERY_IDS, 25)
    print()
    print(format_table(rows, title="Table V — multi-tuple query accuracy, k=25"))
    assert rows
    single_avg = sum(
        (row["tuple1_p_at_k"] + row["tuple2_p_at_k"]) / 2 for row in rows
    ) / len(rows)
    combined_avg = sum(row["combined12_p_at_k"] for row in rows) / len(rows)
    # Merged MQGs should not hurt accuracy on average (the paper: they help
    # in most cases).  Allow a small tolerance for the tiny synthetic tables.
    assert combined_avg >= single_avg - 0.1
