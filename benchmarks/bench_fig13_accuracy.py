"""Figure 13 — accuracy of GQBE vs NESS on the Freebase-like workload.

The paper reports P@k, MAP and nDCG for k in {10, 15, 20, 25}, with GQBE
roughly twice as accurate as NESS on every measure.  The shape to check
here: GQBE beats NESS on every metric at every k.
"""

from __future__ import annotations

from repro.evaluation.reporting import format_table

K_VALUES = (10, 15, 20, 25)


def test_fig13_accuracy_gqbe_vs_ness(harness, benchmark):
    rows = benchmark(harness.figure13_accuracy, K_VALUES)
    print()
    print(
        format_table(
            rows,
            title="Figure 13 — GQBE vs NESS accuracy (averaged over F-queries)",
        )
    )
    for row in rows:
        assert row["gqbe_p_at_k"] >= row["ness_p_at_k"], row
        assert row["gqbe_map"] >= row["ness_map"], row
        assert row["gqbe_ndcg"] >= row["ness_ndcg"], row
    # GQBE's headline accuracy is high (the paper reports P@25 > 0.8).
    assert rows[0]["gqbe_p_at_k"] >= 0.6
