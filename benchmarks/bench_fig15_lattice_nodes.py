"""Figure 15 — number of lattice nodes evaluated: GQBE vs Baseline.

The paper shows GQBE evaluating considerably fewer lattice nodes than the
breadth-first Baseline (at least 2x fewer on 11 of 20 queries), thanks to
best-first ordering, upper-bound pruning and top-k early termination.  On
the laptop-scale synthetic graphs the lattices are much smaller, so the gap
is muted; the shape preserved and asserted here is that GQBE never
evaluates more nodes than the Baseline on any query.
"""

from __future__ import annotations

from repro.evaluation.reporting import format_table


def test_fig15_lattice_nodes_evaluated(harness, benchmark):
    rows = benchmark(harness.figure14_15_efficiency, 10)
    print()
    print(
        format_table(
            rows,
            columns=[
                "query",
                "mqg_edges",
                "gqbe_nodes_evaluated",
                "baseline_nodes_evaluated",
            ],
            title="Figure 15 — lattice nodes evaluated",
        )
    )
    assert len(rows) == 20
    for row in rows:
        assert row["gqbe_nodes_evaluated"] <= row["baseline_nodes_evaluated"], row
