"""Table IV — PCC between GQBE's ranking and (simulated) crowd workers.

The paper crowdsourced pairwise preferences on Amazon Mechanical Turk and
reports the Pearson correlation per Freebase query, finding strong or
medium positive correlation for most queries (and undefined values where
all answers tie).  The workers here are simulated (see
``repro.evaluation.user_study``); the shape to check is that most queries
show positive correlation.
"""

from __future__ import annotations

from repro.evaluation.metrics import correlation_strength
from repro.evaluation.reporting import format_table


def test_table4_simulated_user_study(harness, benchmark):
    rows = benchmark(harness.table4_user_study, 30)
    for row in rows:
        row["strength"] = correlation_strength(row["pcc"])
    print()
    print(format_table(rows, title="Table IV — PCC between GQBE and simulated workers, k=30"))
    assert len(rows) == 20
    defined = [row["pcc"] for row in rows if row["pcc"] is not None]
    positive = [pcc for pcc in defined if pcc > 0.1]
    # Most queries with a defined PCC should show at least a small positive
    # correlation (the paper: 17 of 18 defined values).
    assert len(positive) >= len(defined) // 2
